"""Built-in shader library used by the synthetic workloads.

Four programs cover the spectrum the benchmark games need:

* ``flat_color``      — untextured solid color (cheap 2D UI layers);
* ``textured``        — one texture fetch modulated by a tint;
* ``scrolling``       — textured with a uv offset taken from the
  constants, the mechanism behind camera panning in 2D games (the pan
  changes the constants, hence every covered tile's signature);
* ``lit_textured``    — texture plus a Lambert term against a light
  direction from the constants (the expensive 3D-game shader).

Instruction counts approximate real mobile shaders (transform,
addressing, filtering arithmetic, format conversions): a flat fill is
~16 ops, a textured modulate ~40, and the lit path ~80; vertex
shaders (transform + attribute setup) run ~48-96 ops.
"""

from __future__ import annotations

import numpy as np

from ..geometry import mat4
from .program import (
    ShaderProgram,
    mvp_from_constants,
    params_from_constants,
    tint_from_constants,
)


def _transform_vertex(positions, attributes, constants):
    """Common vertex body: MVP transform, pass uv through."""
    mvp = mvp_from_constants(constants)
    clip = mat4.transform(mvp, positions)
    varyings = {"uv": attributes["uv"].astype(np.float32)}
    return clip, varyings


def _vs_flat(positions, attributes, constants):
    mvp = mvp_from_constants(constants)
    clip = mat4.transform(mvp, positions)
    return clip, {}


def _fs_flat_counted(varyings, constants, fetch):
    # The fragment stage always injects the "_screen" pseudo-varying, so
    # shaders with no real varyings can still size their output batch.
    count = varyings["_screen"].shape[0]
    tint = tint_from_constants(constants)
    return np.broadcast_to(tint, (count, 4)).copy()


def _fs_textured(varyings, constants, fetch):
    tint = tint_from_constants(constants)
    texel = fetch(0, varyings["uv"])
    return texel * tint


def _fs_scrolling(varyings, constants, fetch):
    tint = tint_from_constants(constants)
    offset = params_from_constants(constants)[:2]
    texel = fetch(0, varyings["uv"] + offset)
    return texel * tint


def _vs_lit(positions, attributes, constants):
    mvp = mvp_from_constants(constants)
    clip = mat4.transform(mvp, positions)
    varyings = {
        "uv": attributes["uv"].astype(np.float32),
        "normal": attributes["normal"].astype(np.float32),
    }
    return clip, varyings


def _fs_lit(varyings, constants, fetch):
    tint = tint_from_constants(constants)
    light = params_from_constants(constants)[:3]
    norm = np.linalg.norm(light)
    light = light / norm if norm > 0 else np.array([0.0, 0.0, 1.0], np.float32)
    texel = fetch(0, varyings["uv"])
    normals = varyings["normal"][:, :3]
    lengths = np.linalg.norm(normals, axis=1, keepdims=True)
    normals = normals / np.where(lengths == 0, 1.0, lengths)
    lambert = np.clip(normals @ light, 0.2, 1.0)[:, None]  # 0.2 ambient floor
    color = texel * tint
    color[:, :3] *= lambert
    return color


FLAT_COLOR = ShaderProgram(
    name="flat_color", program_id=1,
    vertex_fn=_vs_flat, fragment_fn=_fs_flat_counted,
    vertex_instructions=48, fragment_instructions=16,
    texture_fetches=0,
)

TEXTURED = ShaderProgram(
    name="textured", program_id=2,
    vertex_fn=_transform_vertex, fragment_fn=_fs_textured,
    vertex_instructions=56, fragment_instructions=40,
    texture_fetches=1,
)

SCROLLING = ShaderProgram(
    name="scrolling", program_id=3,
    vertex_fn=_transform_vertex, fragment_fn=_fs_scrolling,
    vertex_instructions=56, fragment_instructions=44,
    texture_fetches=1,
)

LIT_TEXTURED = ShaderProgram(
    name="lit_textured", program_id=4,
    vertex_fn=_vs_lit, fragment_fn=_fs_lit,
    vertex_instructions=96, fragment_instructions=80,
    texture_fetches=1,
)

ALPHA_TEXTURED = ShaderProgram(
    name="alpha_textured", program_id=5,
    vertex_fn=_transform_vertex, fragment_fn=_fs_textured,
    vertex_instructions=56, fragment_instructions=44,
    texture_fetches=1, uses_alpha_blend=True,
)

#: All built-in programs by name.
PROGRAMS = {
    program.name: program
    for program in (FLAT_COLOR, TEXTURED, SCROLLING, LIT_TEXTURED, ALPHA_TEXTURED)
}
