"""Shader programs: application-defined vertex and fragment stages.

A :class:`ShaderProgram` bundles two vectorized Python callables with the
static costs the timing and power models charge per vertex / fragment.
Programs are identified by ``program_id``; uploading a new program via
the command stream is the infrequent API event that disables Rendering
Elimination for the current frame (Section III-E).

Constants layout convention used by all built-in shaders
(:data:`CONSTANTS_FLOATS` float32 values per drawcall):

* ``[0:16]``  — 4x4 model-view-projection matrix, row-major;
* ``[16:20]`` — RGBA tint color;
* ``[20:24]`` — free parameters (uv scroll offset, light direction, time).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..errors import ShaderError

#: Size of the per-drawcall constants block, in float32 values (96 bytes
#: = 12 eight-byte CRC subblocks).
CONSTANTS_FLOATS = 24


@dataclasses.dataclass(frozen=True)
class ShaderProgram:
    """One vertex + fragment program pair with static cost metadata."""

    name: str
    program_id: int
    vertex_fn: typing.Callable
    fragment_fn: typing.Callable
    vertex_instructions: int
    fragment_instructions: int
    texture_fetches: int = 0        # texture samples per fragment
    uses_alpha_blend: bool = False  # whether output alpha blends

    def run_vertex(self, positions: np.ndarray, attributes: dict,
                   constants: np.ndarray) -> tuple:
        """Shade ``(n, 4)`` homogeneous positions; returns
        ``(clip_positions, varyings)``."""
        clip, varyings = self.vertex_fn(positions, attributes, constants)
        if clip.shape != positions.shape:
            raise ShaderError(
                f"{self.name}: vertex shader must return (n, 4) positions"
            )
        return clip.astype(np.float32), varyings

    def run_fragment(self, varyings: dict, constants: np.ndarray,
                     fetch: typing.Callable) -> np.ndarray:
        """Shade a fragment batch; returns ``(m, 4)`` colors.

        ``fetch(unit, uv)`` samples the texture bound at ``unit`` and is
        provided by the fragment stage, which counts the fetch and its
        cache traffic.
        """
        colors = self.fragment_fn(varyings, constants, fetch)
        colors = np.asarray(colors, dtype=np.float32)
        if colors.ndim != 2 or colors.shape[1] != 4:
            raise ShaderError(
                f"{self.name}: fragment shader must return (m, 4) colors"
            )
        return colors


def validate_constants(constants: np.ndarray) -> np.ndarray:
    """Coerce a constants block to the standard layout."""
    constants = np.asarray(constants, dtype=np.float32).ravel()
    if constants.size != CONSTANTS_FLOATS:
        raise ShaderError(
            f"constants block must hold {CONSTANTS_FLOATS} floats, "
            f"got {constants.size}"
        )
    return constants


def pack_constants(mvp: np.ndarray, tint=(1.0, 1.0, 1.0, 1.0),
                   params=(0.0, 0.0, 0.0, 0.0)) -> np.ndarray:
    """Build a constants block from its three conventional pieces."""
    block = np.empty(CONSTANTS_FLOATS, dtype=np.float32)
    block[0:16] = np.asarray(mvp, dtype=np.float32).reshape(16)
    block[16:20] = np.asarray(tint, dtype=np.float32)
    block[20:24] = np.asarray(params, dtype=np.float32)
    return block


def mvp_from_constants(constants: np.ndarray) -> np.ndarray:
    return constants[0:16].reshape(4, 4)


def tint_from_constants(constants: np.ndarray) -> np.ndarray:
    return constants[16:20]


def params_from_constants(constants: np.ndarray) -> np.ndarray:
    return constants[20:24]
