"""Shader programs and the built-in shader library."""

from .builtin import (
    ALPHA_TEXTURED,
    FLAT_COLOR,
    LIT_TEXTURED,
    PROGRAMS,
    SCROLLING,
    TEXTURED,
)
from .program import (
    CONSTANTS_FLOATS,
    ShaderProgram,
    mvp_from_constants,
    pack_constants,
    params_from_constants,
    tint_from_constants,
    validate_constants,
)

__all__ = [
    "ALPHA_TEXTURED",
    "FLAT_COLOR",
    "LIT_TEXTURED",
    "PROGRAMS",
    "SCROLLING",
    "TEXTURED",
    "CONSTANTS_FLOATS",
    "ShaderProgram",
    "mvp_from_constants",
    "pack_constants",
    "params_from_constants",
    "tint_from_constants",
    "validate_constants",
]
