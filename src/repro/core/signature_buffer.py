"""The Signature Buffer: on-chip storage for tile signatures.

Holds one 32-bit CRC per tile for each frame still "live" in the
display pipeline.  With double buffering (Section IV-C) the GPU renders
into the Back buffer, whose previous contents are from two frames ago,
so a tile's new signature must be compared against the signature from
``compare_distance = 2`` frames back.  A single-buffered configuration
(``compare_distance = 1``) is supported for analysis.

The buffer therefore keeps ``compare_distance + 1`` banks of
``num_tiles`` signatures in a ring: the bank being written for the
current frame plus the history needed for comparison.  Storage cost is
reported for the paper's area accounting (two frames' worth at 4 bytes
per tile: ~28.8 KB for 3600 tiles).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ReproError

#: Signature value used for tiles that have received no input blocks.
EMPTY_SIGNATURE = 0


@dataclasses.dataclass
class SignatureBufferStats:
    reads: int = 0
    writes: int = 0
    compares: int = 0


class SignatureBuffer:
    """Ring of per-tile signature banks spanning the live frames."""

    def __init__(self, num_tiles: int, compare_distance: int = 2) -> None:
        if compare_distance < 1:
            raise ReproError("compare_distance must be >= 1")
        self.num_tiles = num_tiles
        self.compare_distance = compare_distance
        self._banks = np.zeros(
            (compare_distance + 1, num_tiles), dtype=np.uint32
        )
        self._valid = np.zeros(compare_distance + 1, dtype=bool)
        self._current = 0
        self.stats = SignatureBufferStats()

    # Frame lifecycle ----------------------------------------------------
    def begin_frame(self) -> None:
        """Rotate to a fresh bank for the incoming frame's signatures."""
        self._current = (self._current + 1) % len(self._banks)
        self._banks[self._current].fill(EMPTY_SIGNATURE)
        self._valid[self._current] = False

    def commit_frame(self) -> None:
        """Mark the current bank complete (geometry phase finished)."""
        self._valid[self._current] = True

    # Current-frame accumulation ------------------------------------------
    def read(self, tile_id: int) -> int:
        self.stats.reads += 1
        return int(self._banks[self._current][tile_id])

    def write(self, tile_id: int, signature: int) -> None:
        self.stats.writes += 1
        self._banks[self._current][tile_id] = signature

    def read_many(self, tile_ids: np.ndarray) -> np.ndarray:
        self.stats.reads += len(tile_ids)
        return self._banks[self._current][tile_ids]

    def write_many(self, tile_ids: np.ndarray, signatures: np.ndarray) -> None:
        self.stats.writes += len(tile_ids)
        self._banks[self._current][tile_ids] = signatures

    @property
    def current(self) -> np.ndarray:
        """The (read-only) current-frame signature bank."""
        view = self._banks[self._current].view()
        view.flags.writeable = False
        return view

    # Comparison ----------------------------------------------------------
    def reference_bank_valid(self) -> bool:
        """Whether a complete bank exists ``compare_distance`` frames back."""
        ref = (self._current - self.compare_distance) % len(self._banks)
        return bool(self._valid[ref])

    def matches_reference(self, tile_id: int) -> bool:
        """Compare a tile's current signature with the reference frame's.

        Never matches when the reference bank is incomplete (warm-up or
        a frame where RE was disabled), so RE conservatively renders.
        """
        self.stats.compares += 1
        if not self.reference_bank_valid():
            return False
        ref = (self._current - self.compare_distance) % len(self._banks)
        return bool(
            self._banks[ref][tile_id] == self._banks[self._current][tile_id]
        )

    def invalidate_all(self) -> None:
        """Forget all history (e.g. after an RE-disabled frame where
        signatures were not maintained)."""
        self._valid[:] = False

    def state_dict(self) -> dict:
        return {
            "banks": self._banks.copy(),
            "valid": self._valid.copy(),
            "current": self._current,
            "stats": dataclasses.asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        self._banks[:] = state["banks"]
        self._valid[:] = state["valid"]
        self._current = int(state["current"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, int(value))

    @property
    def storage_bytes(self) -> int:
        """On-chip SRAM the paper's area model charges: two frames of
        4-byte signatures (the ring's extra bank is an artifact of the
        software model, not extra hardware — hardware overwrites the
        oldest bank in place)."""
        return 2 * self.num_tiles * 4
