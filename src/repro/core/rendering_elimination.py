"""Rendering Elimination: the paper's technique as a pipeline plug-in.

Geometry side: the Signature Unit incrementally signs every tile's
inputs while the Polygon List Builder bins primitives.  Raster side:
before any work is spent on a tile, its current-frame signature is
compared with the signature of the frame the Back buffer still holds
(two frames back under double buffering); a match bypasses the entire
Raster Pipeline and the Frame Buffer keeps its colors.

Driver-level disable conditions (Section III-E) are honoured:

* frames containing shader/texture *uploads* (the signature does not
  cover global data, so comparisons spanning an upload are unsafe — all
  signature history is invalidated);
* an optional periodic refresh (``re_refresh_period_frames``) that
  forces full rendering to guarantee Frame Buffer refreshes;
* an explicit ``multiple_render_targets`` flag that disables RE wholesale.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from ..techniques.base import RASTER_STAGES, Technique
from .signature_buffer import SignatureBuffer
from .signature_unit import SignatureUnit

#: Raster-side cycles to read a Signature Buffer entry and compare
#: (Section V: "a few cycles").
COMPARE_CYCLES = 2


@dataclasses.dataclass
class ReFrameRecord:
    """Per-frame RE bookkeeping kept for analysis."""

    frame_index: int
    disabled: bool
    tiles_skipped: int
    tiles_compared: int
    signatures: np.ndarray


class RenderingElimination(Technique):
    """The Rendering Elimination technique of Section III."""

    name = "re"

    def __init__(self, config: GpuConfig, exact: bool = False,
                 compare_distance: int = 2,
                 multiple_render_targets: bool = False) -> None:
        super().__init__()
        self.config = config
        self.signature_unit = SignatureUnit(config, exact=exact)
        self.signature_buffer = SignatureBuffer(
            config.num_tiles, compare_distance=compare_distance
        )
        self.multiple_render_targets = multiple_render_targets
        self.refresh_period = config.re_refresh_period_frames
        self.disabled_this_frame = False
        self.frame_records: list = []
        self._frame_index = 0
        self._tiles_skipped = 0
        self._tiles_compared = 0
        self._stall_baseline = 0

    # Lifecycle ----------------------------------------------------------
    def begin_frame(self, frame_index: int, has_uploads: bool) -> None:
        self._frame_index = frame_index
        self._tiles_skipped = 0
        self._tiles_compared = 0
        # Signature Unit counters are cumulative across the run (the
        # harness diffs them per frame); stalls are reported per frame
        # via a baseline.
        self._stall_baseline = self.signature_unit.stats.stall_cycles

        refresh_due = (
            self.refresh_period > 0
            and frame_index > 0
            and frame_index % self.refresh_period == 0
        )
        self.disabled_this_frame = (
            has_uploads or refresh_due or self.multiple_render_targets
        )
        if has_uploads or self.multiple_render_targets:
            # Global data changed under the signatures' feet: nothing in
            # the history can be trusted for comparison any more.
            self.signature_buffer.invalidate_all()

        self.signature_buffer.begin_frame()
        self.signature_unit.begin_frame(self.signature_buffer)

    def on_geometry_complete(self) -> None:
        if not self.disabled_this_frame:
            self.signature_buffer.commit_frame()

    def end_frame(self) -> None:
        self.frame_records.append(
            ReFrameRecord(
                frame_index=self._frame_index,
                disabled=self.disabled_this_frame,
                tiles_skipped=self._tiles_skipped,
                tiles_compared=self._tiles_compared,
                signatures=self.signature_buffer.current.copy(),
            )
        )

    # Geometry taps -------------------------------------------------------
    def on_draw_state(self, state) -> None:
        self.signature_unit.on_draw_state(state)

    def on_primitive(self, prim, tile_ids) -> None:
        self.signature_unit.on_primitive(prim, tile_ids)

    # Raster decision -------------------------------------------------------
    def should_skip_tile(self, tile_id: int) -> bool:
        if self.disabled_this_frame:
            return False
        self._tiles_compared += 1
        tracer = self.gpu.tracer if self.gpu is not None else None
        if self.signature_buffer.matches_reference(tile_id):
            self._tiles_skipped += 1
            if tracer:
                tracer.instant("signature_hit", tile=tile_id)
            return True
        if tracer:
            tracer.instant("signature_miss", tile=tile_id)
        return False

    # Overheads -----------------------------------------------------------
    def geometry_stall_cycles(self) -> int:
        return self.signature_unit.stats.stall_cycles - self._stall_baseline

    def raster_overhead_cycles(self) -> int:
        return self._tiles_compared * COMPARE_CYCLES

    # Checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Signature history plus the unit's cumulative counters (the
        per-frame stall/overhead figures are diffs against those
        counters, so they must survive a restore)."""
        return {
            "signature_buffer": self.signature_buffer.state_dict(),
            "signature_unit": self.signature_unit.state_dict(),
            "disabled_this_frame": self.disabled_this_frame,
            "frame_records": [
                {
                    "frame_index": record.frame_index,
                    "disabled": record.disabled,
                    "tiles_skipped": record.tiles_skipped,
                    "tiles_compared": record.tiles_compared,
                    "signatures": record.signatures,
                }
                for record in self.frame_records
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.signature_buffer.load_state_dict(state["signature_buffer"])
        self.signature_unit.load_state_dict(state["signature_unit"])
        self.disabled_this_frame = bool(state["disabled_this_frame"])
        self.frame_records = [
            ReFrameRecord(
                frame_index=int(record["frame_index"]),
                disabled=bool(record["disabled"]),
                tiles_skipped=int(record["tiles_skipped"]),
                tiles_compared=int(record["tiles_compared"]),
                signatures=np.asarray(
                    record["signatures"], dtype=np.uint32
                ),
            )
            for record in state["frame_records"]
        ]

    # Introspection ----------------------------------------------------------
    def current_signatures(self) -> np.ndarray:
        """Copy of the per-tile signatures of the frame just signed."""
        return self.signature_buffer.current.copy()

    @property
    def storage_bytes(self) -> int:
        """On-chip storage added by RE: Signature Buffer + CRC LUTs +
        OT queue + constants bitmap."""
        ot_queue = self.config.ot_queue_entries * 2  # ~2 B per tile id
        bitmap = (self.config.num_tiles + 7) // 8
        return (
            self.signature_buffer.storage_bytes
            + self.signature_unit.lut_storage_bytes
            + ot_queue
            + bitmap
        )

    @classmethod
    def stages_bypassed(cls) -> tuple:
        return RASTER_STAGES  # the whole Raster Pipeline (Fig. 3)
