"""The Signature Unit (Fig. 7): incremental tile-signature computation.

Receives the same events the paper's hardware taps — constants uploads
from the Command Processor, (primitive, overlapped-tiles) pairs from the
Polygon List Builder — and maintains the current frame's per-tile CRCs
in the Signature Buffer:

* the **Compute CRC unit** signs each variable-length block (constants
  or primitive attributes) in 64-bit subblocks (Algorithm 2), recording
  the block's length in subblocks ("Shift Amount");
* per overlapped tile, the **Accumulate CRC unit** left-shifts the
  tile's stored CRC by that length (Algorithm 3) and XORs in the block's
  CRC (Algorithm 1);
* a per-drawcall **bitmap** ensures the constants CRC is folded into
  each tile at most once per constants upload (Section III-F).

Two execution modes produce *bit-identical* signatures and activity
counts (property-tested):

* ``exact=True``  — every LUT read goes through the hardware unit models
  of :mod:`repro.hashing.parallel`; slow, used by tests and small runs.
* ``exact=False`` — block CRCs are memoized by block bytes and tile
  updates use the vectorized GF(2) combine; activity counters are
  computed from the same formulas the hardware models count one by one.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from ..config import GpuConfig
from ..hashing.crc32 import crc32_table
from ..hashing.incremental import combine_many
from ..hashing.parallel import AccumulateCrcUnit, ComputeCrcUnit
from .signature_buffer import SignatureBuffer

#: Cycles charged per tile update beyond the accumulate shifts: Signature
#: Buffer read, XOR, Signature Buffer write-back (pipelined to ~2).
TILE_UPDATE_OVERHEAD_CYCLES = 2

#: Bound on the block-CRC memo cache (distinct blocks seen).
_BLOCK_CACHE_LIMIT = 1 << 20


@dataclasses.dataclass
class SignatureUnitStats:
    """Aggregate activity of the Signature Unit for one frame."""

    constants_signed: int = 0
    primitives_signed: int = 0
    tile_updates: int = 0
    constants_folds: int = 0
    bitmap_clears: int = 0
    bitmap_reads: int = 0
    compute_cycles: int = 0       # Compute CRC unit busy cycles
    accumulate_cycles: int = 0    # Accumulate CRC unit busy cycles
    lut_reads: int = 0
    ot_queue_overflows: int = 0
    stall_cycles: int = 0         # geometry stalls from OT-queue overflow

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class SignatureUnit:
    """Signs tile inputs on the fly during tiling."""

    def __init__(self, config: GpuConfig, exact: bool = False) -> None:
        self.config = config
        self.exact = exact
        self.block_bytes = config.crc_block_bytes
        self.ot_queue_entries = config.ot_queue_entries
        self.num_tiles = config.num_tiles
        self.stats = SignatureUnitStats()

        self.compute_unit = ComputeCrcUnit(self.block_bytes)
        self.accumulate_unit = AccumulateCrcUnit(self.block_bytes)

        self._bitmap = np.zeros(self.num_tiles, dtype=bool)
        self._buffer: SignatureBuffer = None
        # Constants CRC / Shift Amount C registers (Fig. 7).
        self._constants_crc = 0
        self._constants_shift = 0
        self._last_constants_version = None
        # Block-CRC memo with bounded LRU eviction: evicting one LRU
        # entry at the limit keeps the working set warm, where clearing
        # the whole dict would re-sign every live block on large scenes.
        self._block_cache: collections.OrderedDict = collections.OrderedDict()

    # ------------------------------------------------------------------
    def begin_frame(self, buffer: SignatureBuffer) -> None:
        """Point the unit at the Signature Buffer bank for a new frame."""
        self._buffer = buffer
        self._bitmap[:] = False
        self._constants_crc = 0
        self._constants_shift = 0
        self._last_constants_version = None

    # Block signing -----------------------------------------------------
    def _sign_block(self, block: bytes) -> tuple:
        """CRC + shift amount (subblocks) of one block."""
        if self.exact:
            crc, shift = self.compute_unit.compute(block)
            self.stats.compute_cycles += shift
            self.stats.lut_reads += shift * self.block_bytes + max(0, shift - 1) * 4
            return crc, shift
        cached = self._block_cache.get(block)
        if cached is None:
            padded = self.compute_unit.pad(block)
            crc = crc32_table(padded)
            shift = len(padded) // self.block_bytes
            if len(self._block_cache) >= _BLOCK_CACHE_LIMIT:
                self._block_cache.popitem(last=False)
            self._block_cache[block] = (crc, shift)
            cached = (crc, shift)
        else:
            self._block_cache.move_to_end(block)
        crc, shift = cached
        # Analytic counters mirroring the exact-mode hardware units.
        self.stats.compute_cycles += shift
        self.stats.lut_reads += shift * self.block_bytes + max(0, shift - 1) * 4
        return crc, shift

    # Event taps (PolygonListBuilder listener protocol) -------------------
    def on_draw_state(self, state) -> None:
        """Sign the constants block when a new upload is first drawn."""
        if state.constants_version == self._last_constants_version:
            return
        self._last_constants_version = state.constants_version
        block = state.constants_bytes()
        self._constants_crc, self._constants_shift = self._sign_block(block)
        self._bitmap[:] = False
        self.stats.constants_signed += 1
        self.stats.bitmap_clears += 1

    def on_primitive(self, prim, tile_ids) -> None:
        """Fold one primitive (and, where needed, the pending constants)
        into every overlapped tile's signature."""
        if self._buffer is None:
            raise RuntimeError("SignatureUnit.begin_frame was not called")
        if len(tile_ids) == 0:
            # A clipped/culled primitive overlapping no tiles never
            # reaches the Signature Unit in the paper's model: no
            # signing, no bitmap read, no counter activity.
            return
        prim_crc, prim_shift = self._sign_block(prim.attribute_bytes())
        self.stats.primitives_signed += 1
        self.stats.bitmap_reads += len(tile_ids)

        tile_ids = np.asarray(tile_ids, dtype=np.int64)
        fresh = ~self._bitmap[tile_ids]
        per_tile_cycles = self._update_tiles(
            tile_ids, fresh, prim_crc, prim_shift
        )
        self._bitmap[tile_ids] = True

        # OT-queue overflow model: the queue absorbs up to its depth in
        # tile ids while the PLB keeps producing; beyond that the
        # Geometry Pipeline stalls for the drain time of the excess.
        overflow = len(tile_ids) - self.ot_queue_entries
        if overflow > 0:
            self.stats.ot_queue_overflows += 1
            avg_cycles = per_tile_cycles / len(tile_ids)
            # Round half-up: truncation toward zero would systematically
            # under-count stalls when the per-tile cost is small.
            self.stats.stall_cycles += int(overflow * avg_cycles + 0.5)

    # Tile updates ---------------------------------------------------------
    def _update_tiles(self, tile_ids: np.ndarray, fresh: np.ndarray,
                      prim_crc: int, prim_shift: int) -> int:
        """Apply constants (where fresh) then the primitive CRC to the
        tiles' stored signatures; returns Accumulate-unit busy cycles."""
        shift_bits_prim = prim_shift * self.block_bytes * 8
        shift_bits_const = self._constants_shift * self.block_bytes * 8
        n_fresh = int(fresh.sum())
        busy = 0

        if self.exact:
            for tile_id, is_fresh in zip(tile_ids, fresh):
                crc = self._buffer.read(int(tile_id))
                if is_fresh and self._constants_shift:
                    crc = self._constants_crc ^ self.accumulate_unit.accumulate(
                        crc, self._constants_shift
                    )
                    busy += self._constants_shift + TILE_UPDATE_OVERHEAD_CYCLES
                crc = prim_crc ^ self.accumulate_unit.accumulate(crc, prim_shift)
                busy += prim_shift + TILE_UPDATE_OVERHEAD_CYCLES
                self._buffer.write(int(tile_id), crc)
        else:
            crcs = self._buffer.read_many(tile_ids).astype(np.uint32)
            if n_fresh and self._constants_shift:
                crcs_fresh = combine_many(
                    crcs[fresh], self._constants_crc, shift_bits_const
                )
                crcs = crcs.copy()
                crcs[fresh] = crcs_fresh
                busy += n_fresh * (
                    self._constants_shift + TILE_UPDATE_OVERHEAD_CYCLES
                )
                self.stats.lut_reads += n_fresh * self._constants_shift * 4
            crcs = combine_many(crcs, prim_crc, shift_bits_prim)
            self._buffer.write_many(tile_ids, crcs)
            busy += len(tile_ids) * (prim_shift + TILE_UPDATE_OVERHEAD_CYCLES)
            self.stats.lut_reads += len(tile_ids) * prim_shift * 4

        if self.exact:
            # The exact path's accumulate-unit LUT reads are 4 per shift
            # step; mirror them into the aggregate counter.
            self.stats.lut_reads += (
                len(tile_ids) * prim_shift + n_fresh * self._constants_shift
            ) * 4

        self.stats.tile_updates += len(tile_ids)
        self.stats.constants_folds += n_fresh
        self.stats.accumulate_cycles += busy
        return busy

    def state_dict(self) -> dict:
        """Cumulative activity counters only.  Everything else is either
        rebuilt by :meth:`begin_frame` (bitmap, constants registers) or a
        pure content-keyed memo (the block-CRC cache), so it cannot
        influence post-restore results."""
        return {"stats": dataclasses.asdict(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        for name, value in state["stats"].items():
            setattr(self.stats, name, int(value))

    @property
    def lut_storage_bytes(self) -> int:
        """CRC LUT ROM cost (Sign + Shift subunits)."""
        return (self.block_bytes + 4) * 1024
