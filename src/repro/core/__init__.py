"""The paper's contribution: Rendering Elimination (Section III)."""

from .rendering_elimination import (
    COMPARE_CYCLES,
    ReFrameRecord,
    RenderingElimination,
)
from .signature import constants_block, padded_length, primitive_block
from .signature_buffer import EMPTY_SIGNATURE, SignatureBuffer
from .signature_unit import (
    TILE_UPDATE_OVERHEAD_CYCLES,
    SignatureUnit,
    SignatureUnitStats,
)

__all__ = [
    "COMPARE_CYCLES",
    "ReFrameRecord",
    "RenderingElimination",
    "constants_block",
    "padded_length",
    "primitive_block",
    "EMPTY_SIGNATURE",
    "SignatureBuffer",
    "TILE_UPDATE_OVERHEAD_CYCLES",
    "SignatureUnit",
    "SignatureUnitStats",
]
