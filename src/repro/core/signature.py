"""Tile-input bitstream framing (Section III-E).

A tile's input message is a sequence of blocks, one per drawcall whose
primitives overlap it: first the drawcall's constants subblock (included
once per tile per constants upload), then one subblock per overlapping
primitive's attributes.  This module defines how those blocks are
serialized to bytes before the CRC units sign them.

Every block is zero-padded to a whole number of CRC subblocks (the
hardware's 64-bit datapath).  Padding cannot alias two different inputs:
blocks of the two kinds have fixed, different layouts (constants are a
fixed 96-byte array; attributes are 48-byte units), and the padded block
length itself enters the CRC through the shift amount.

Global state (shader programs, texture contents) is deliberately *not*
part of the message — the paper excludes it because it changes via rare
API calls, and RE is disabled for frames containing such calls.
"""

from __future__ import annotations

from ..geometry.primitives import DrawState, Primitive


def constants_block(state: DrawState) -> bytes:
    """The bytes signed for a drawcall's scene constants."""
    return state.constants_bytes()


def primitive_block(prim: Primitive) -> bytes:
    """The bytes signed for one primitive: its post-transform vertex
    attributes (clip positions + varyings, 48 bytes each)."""
    return prim.attribute_bytes()


def padded_length(nbytes: int, block_bytes: int) -> int:
    """Length of a block after zero-padding to CRC subblocks."""
    if nbytes % block_bytes == 0:
        return nbytes
    return nbytes + block_bytes - nbytes % block_bytes
