"""Per-event energy model (McPAT/DRAMSim2 substitute)."""

from .energy import (
    EnergyBreakdown,
    EnergyConstants,
    EnergyModel,
    technique_event_counts,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyConstants",
    "EnergyModel",
    "technique_event_counts",
]
