"""Per-event energy model (the McPAT + DRAMSim2 substitute).

Every activity counter the functional simulation produces maps to a
per-event dynamic energy, and elapsed cycles (from the timing model) map
to static leakage.  Constants are representative of a 32-nm, 400-MHz
mobile GPU and an LPDDR3 memory system; the paper's results are
*normalized*, so what matters is the relative cost structure — shading
and DRAM traffic dominate, the RE structures are tiny — which these
constants preserve.

The output is split the way Fig. 14b reports it: energy spent by the
GPU itself versus energy spent in the main-memory system.
"""

from __future__ import annotations

import dataclasses

from ..config import GpuConfig
from ..pipeline.gpu import FrameStats
from ..timing.model import CycleBreakdown


@dataclasses.dataclass(frozen=True)
class EnergyConstants:
    """Per-event energies in nanojoules (and static power in nJ/cycle)."""

    # Programmable cores
    shader_instruction_nj: float = 0.045
    # On-chip SRAM accesses, scaled roughly with structure size
    vertex_cache_access_nj: float = 0.030
    texture_cache_access_nj: float = 0.040
    tile_cache_access_nj: float = 0.110
    l2_cache_access_nj: float = 0.160
    color_depth_buffer_access_nj: float = 0.012
    # Fixed-function work
    rasterized_fragment_nj: float = 0.010
    depth_test_nj: float = 0.008
    blend_nj: float = 0.010
    binned_primitive_nj: float = 0.020
    # Main memory system (controller + channel + DRAM core)
    dram_byte_nj: float = 0.150
    dram_transaction_nj: float = 3.0
    # Rendering Elimination structures
    crc_lut_read_nj: float = 0.004
    signature_buffer_access_nj: float = 0.010
    bitmap_access_nj: float = 0.001
    # Transaction Elimination hashing
    te_hash_byte_nj: float = 0.004
    # Fragment memoization LUT
    memo_lut_access_nj: float = 0.012
    # Static power, charged per elapsed cycle
    gpu_static_nj_per_cycle: float = 0.125   # ~50 mW at 400 MHz
    dram_static_nj_per_cycle: float = 0.050  # ~20 mW background


@dataclasses.dataclass
class EnergyBreakdown:
    """Per-frame (or per-run) energy, split like Fig. 14b."""

    gpu_dynamic_nj: float = 0.0
    gpu_static_nj: float = 0.0
    dram_dynamic_nj: float = 0.0
    dram_static_nj: float = 0.0
    technique_nj: float = 0.0     # already included in gpu_dynamic
    parts: dict = dataclasses.field(default_factory=dict)

    @property
    def gpu_nj(self) -> float:
        return self.gpu_dynamic_nj + self.gpu_static_nj

    @property
    def dram_nj(self) -> float:
        return self.dram_dynamic_nj + self.dram_static_nj

    @property
    def total_nj(self) -> float:
        return self.gpu_nj + self.dram_nj

    def add(self, other: "EnergyBreakdown") -> None:
        self.gpu_dynamic_nj += other.gpu_dynamic_nj
        self.gpu_static_nj += other.gpu_static_nj
        self.dram_dynamic_nj += other.dram_dynamic_nj
        self.dram_static_nj += other.dram_static_nj
        self.technique_nj += other.technique_nj
        for key, value in other.parts.items():
            self.parts[key] = self.parts.get(key, 0.0) + value


class EnergyModel:
    """Convert activity counts + cycles into joule estimates."""

    def __init__(self, config: GpuConfig,
                 constants: EnergyConstants = None) -> None:
        self.config = config
        self.constants = constants if constants is not None else EnergyConstants()

    def frame_energy(self, stats: FrameStats,
                     cycles: CycleBreakdown,
                     technique_events: dict = None) -> EnergyBreakdown:
        """Energy of one frame.

        ``technique_events`` carries the per-frame counters of the
        installed technique (signature-unit activity, TE bytes hashed,
        memo LUT lookups); see :func:`technique_event_counts`.
        """
        c = self.constants
        metric = stats.metric
        parts = {}

        parts["shading"] = c.shader_instruction_nj * (
            metric("vertex.shader_instructions")
            + metric("fragment.shader_instructions")
        )
        parts["caches"] = (
            c.vertex_cache_access_nj * metric("cache.vertex.accesses")
            + c.texture_cache_access_nj * metric("cache.texture.accesses")
            + c.tile_cache_access_nj * metric("cache.tile.accesses")
            + c.l2_cache_access_nj * metric("cache.l2.accesses")
        )
        parts["fixed_function"] = (
            c.rasterized_fragment_nj * metric("raster.fragments_rasterized")
            + c.depth_test_nj * metric("depth.fragments_tested")
            + c.blend_nj * metric("blend.fragments_blended")
            + c.binned_primitive_nj * metric("tiling.tile_entries")
        )
        parts["color_depth_buffers"] = c.color_depth_buffer_access_nj * (
            metric("depth.fragments_tested")
            + metric("blend.fragments_blended")
        )

        technique_nj = 0.0
        events = technique_events or {}
        technique_nj += c.crc_lut_read_nj * events.get("lut_reads", 0)
        technique_nj += c.signature_buffer_access_nj * (
            events.get("signature_buffer_accesses", 0)
        )
        technique_nj += c.bitmap_access_nj * events.get("bitmap_accesses", 0)
        technique_nj += c.te_hash_byte_nj * events.get("te_bytes_hashed", 0)
        technique_nj += c.memo_lut_access_nj * events.get("memo_lut_accesses", 0)
        parts["technique"] = technique_nj

        gpu_dynamic = sum(parts.values())
        gpu_static = c.gpu_static_nj_per_cycle * cycles.total_cycles

        total_traffic = sum(stats.traffic.values())
        dram_transactions = total_traffic / 64.0  # line-sized transfers
        dram_dynamic = (
            c.dram_byte_nj * total_traffic
            + c.dram_transaction_nj * dram_transactions
        )
        dram_static = c.dram_static_nj_per_cycle * cycles.total_cycles
        parts["dram_dynamic"] = dram_dynamic

        return EnergyBreakdown(
            gpu_dynamic_nj=gpu_dynamic,
            gpu_static_nj=gpu_static,
            dram_dynamic_nj=dram_dynamic,
            dram_static_nj=dram_static,
            technique_nj=technique_nj,
            parts=parts,
        )


def technique_event_counts(technique) -> dict:
    """Extract per-frame energy-relevant event counts from a technique.

    Works for the baseline (empty), RenderingElimination, TE and
    FragmentMemoization without importing their classes (duck-typed on
    the stats objects they expose).
    """
    events = {}
    # Composite techniques (RE+TE) expose their parts as .re / .te.
    if hasattr(technique, "re") and hasattr(technique, "te"):
        events = technique_event_counts(technique.re)
        for key, value in technique_event_counts(technique.te).items():
            events[key] = events.get(key, 0) + value
        return events
    unit = getattr(technique, "signature_unit", None)
    if unit is not None:
        buffer = technique.signature_buffer
        events["lut_reads"] = unit.stats.lut_reads
        events["signature_buffer_accesses"] = (
            buffer.stats.reads + buffer.stats.writes + buffer.stats.compares
        )
        events["bitmap_accesses"] = (
            unit.stats.bitmap_reads + unit.stats.bitmap_clears
        )
    te_stats = getattr(technique, "stats", None)
    if te_stats is not None and hasattr(te_stats, "bytes_hashed"):
        events["te_bytes_hashed"] = te_stats.bytes_hashed
        buffer = technique.signature_buffer
        events["signature_buffer_accesses"] = (
            buffer.stats.reads + buffer.stats.writes + buffer.stats.compares
        )
    if te_stats is not None and hasattr(te_stats, "lut_lookups"):
        events["memo_lut_accesses"] = (
            te_stats.lut_lookups + te_stats.lut_insertions
        )
    return events
