"""Texture objects and procedural texture constructors.

Workloads build their art from deterministic procedural textures (flat
colors, checkerboards, gradients, seeded noise) so runs are exactly
reproducible without asset files.  Each texture owns a ``texture_id``
that places it in a disjoint region of the simulated address space,
letting the texture caches distinguish fetches from different textures.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError

#: Address-space stride between textures: texel byte addresses are
#: ``texture_id * TEXTURE_ADDRESS_STRIDE + offset``.
TEXTURE_ADDRESS_STRIDE = 1 << 28

#: Bytes per texel (RGBA8 in memory; the simulator computes in float).
TEXEL_BYTES = 4


class Texture:
    """A 2D RGBA texture with float32 components in [0, 1]."""

    def __init__(self, data, texture_id: int) -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 3 or data.shape[2] != 4:
            raise PipelineError(
                f"texture data must be (h, w, 4), got {data.shape}"
            )
        if texture_id < 0:
            raise PipelineError("texture_id must be non-negative")
        self.data = data
        self.texture_id = texture_id
        self._content_token = None

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def base_address(self) -> int:
        return self.texture_id * TEXTURE_ADDRESS_STRIDE

    def texel_addresses(self, tx: np.ndarray, ty: np.ndarray) -> np.ndarray:
        """Byte addresses of the texels at integer coords (tx, ty)."""
        offsets = (ty.astype(np.int64) * self.width + tx.astype(np.int64))
        return self.base_address + offsets * TEXEL_BYTES

    @property
    def nbytes(self) -> int:
        return self.width * self.height * TEXEL_BYTES

    @property
    def content_token(self) -> tuple:
        """Content-stable identity: equal tokens mean equal sampling
        behaviour (same texel addresses and colors).  Computed once —
        texture data is immutable after construction."""
        if self._content_token is None:
            import hashlib

            digest = hashlib.sha1(
                np.ascontiguousarray(self.data).tobytes()
            ).digest()
            self._content_token = (
                self.texture_id, self.width, self.height, digest
            )
        return self._content_token


def flat_texture(color, texture_id: int, size: int = 8) -> Texture:
    """A single flat color — the cheapest texture, and the one that makes
    camera pans invisible (the Fig. 15a equal-colors-different-inputs
    tiles)."""
    data = np.broadcast_to(
        np.asarray(color, dtype=np.float32), (size, size, 4)
    ).copy()
    return Texture(data, texture_id)


def checker_texture(color_a, color_b, texture_id: int, size: int = 64,
                    cells: int = 8) -> Texture:
    """Checkerboard of two colors."""
    ys, xs = np.mgrid[0:size, 0:size]
    mask = ((xs * cells // size) + (ys * cells // size)) % 2 == 0
    data = np.where(
        mask[..., None],
        np.asarray(color_a, dtype=np.float32),
        np.asarray(color_b, dtype=np.float32),
    )
    return Texture(data.astype(np.float32), texture_id)


def gradient_texture(color_top, color_bottom, texture_id: int,
                     size: int = 64) -> Texture:
    """Vertical gradient between two colors."""
    t = np.linspace(0.0, 1.0, size, dtype=np.float32)[:, None, None]
    top = np.asarray(color_top, dtype=np.float32)
    bottom = np.asarray(color_bottom, dtype=np.float32)
    data = top * (1.0 - t) + bottom * t
    return Texture(np.broadcast_to(data, (size, size, 4)).copy(), texture_id)


def noise_texture(texture_id: int, size: int = 64, seed: int = 0,
                  base_color=(0.5, 0.5, 0.5, 1.0), amplitude: float = 0.5) -> Texture:
    """Seeded random noise around a base color (deterministic)."""
    rng = np.random.default_rng(seed)
    noise = rng.random((size, size, 1), dtype=np.float32) * amplitude
    base = np.asarray(base_color, dtype=np.float32)
    data = np.clip(base + noise - amplitude / 2.0, 0.0, 1.0)
    data[..., 3] = base[3]
    return Texture(data.astype(np.float32), texture_id)
