"""Textures and samplers."""

from .sampler import SAMPLERS, SampleResult, sample_bilinear, sample_nearest
from .texture import (
    TEXEL_BYTES,
    TEXTURE_ADDRESS_STRIDE,
    Texture,
    checker_texture,
    flat_texture,
    gradient_texture,
    noise_texture,
)

__all__ = [
    "SAMPLERS",
    "SampleResult",
    "sample_bilinear",
    "sample_nearest",
    "TEXEL_BYTES",
    "TEXTURE_ADDRESS_STRIDE",
    "Texture",
    "checker_texture",
    "flat_texture",
    "gradient_texture",
    "noise_texture",
]
