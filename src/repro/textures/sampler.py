"""Texture sampling: nearest and bilinear filters.

Samplers return both the sampled colors and the texel byte addresses the
fetch touched; the fragment stage forwards the addresses to the texture
cache model so texel traffic (Fig. 15b) reflects real access locality.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import PipelineError
from .texture import Texture


@dataclasses.dataclass
class SampleResult:
    """Colors plus the byte addresses fetched to produce them."""

    colors: np.ndarray        # (m, 4) float32
    addresses: np.ndarray     # (a,) int64 texel byte addresses


def _wrap(coords: np.ndarray, extent: int) -> np.ndarray:
    """GL_REPEAT wrapping of integer texel coordinates."""
    return np.mod(coords, extent)


def sample_nearest(texture: Texture, uv: np.ndarray) -> SampleResult:
    """Nearest-texel sampling with repeat wrapping."""
    uv = np.asarray(uv, dtype=np.float32)
    if uv.ndim != 2 or uv.shape[1] != 2:
        raise PipelineError(f"uv must be (m, 2), got {uv.shape}")
    tx = _wrap(np.floor(uv[:, 0] * texture.width).astype(np.int64), texture.width)
    ty = _wrap(np.floor(uv[:, 1] * texture.height).astype(np.int64), texture.height)
    colors = texture.data[ty, tx]
    addresses = texture.texel_addresses(tx, ty)
    return SampleResult(colors.astype(np.float32), addresses)


def sample_bilinear(texture: Texture, uv: np.ndarray) -> SampleResult:
    """Bilinear filtering: four texel fetches per sample."""
    uv = np.asarray(uv, dtype=np.float32)
    if uv.ndim != 2 or uv.shape[1] != 2:
        raise PipelineError(f"uv must be (m, 2), got {uv.shape}")
    fx = uv[:, 0] * texture.width - 0.5
    fy = uv[:, 1] * texture.height - 0.5
    x0 = np.floor(fx).astype(np.int64)
    y0 = np.floor(fy).astype(np.int64)
    wx = (fx - x0).astype(np.float32)[:, None]
    wy = (fy - y0).astype(np.float32)[:, None]

    corners = []
    addresses = []
    for dy in (0, 1):
        for dx in (0, 1):
            tx = _wrap(x0 + dx, texture.width)
            ty = _wrap(y0 + dy, texture.height)
            corners.append(texture.data[ty, tx].astype(np.float32))
            addresses.append(texture.texel_addresses(tx, ty))
    c00, c10, c01, c11 = corners
    top = c00 * (1.0 - wx) + c10 * wx
    bottom = c01 * (1.0 - wx) + c11 * wx
    colors = top * (1.0 - wy) + bottom * wy
    return SampleResult(colors.astype(np.float32), np.concatenate(addresses))


SAMPLERS = {
    "nearest": sample_nearest,
    "bilinear": sample_bilinear,
}
