"""Warm-engine benchmark: what keeping engines resident actually buys.

Serves ``requests`` identical jobs through one
:class:`~repro.service.pool.WarmEnginePool` and splits the latency into
the cold first request (engine construction + render) and the warm
remainder (reset + render).  The payload lands in
``BENCH_service.json`` and is guarded like every other bench profile
(:mod:`repro.perf.guard` + ``repro trend --check``):

* **counters** compare exactly — pool behaviour (one engine built,
  every later request a warm hit) is deterministic, and so is the
  benchmark's headline claim ``warm_latency_below_cold`` (a warm
  request must beat the cold one; construction dominates at bench
  scale, so this is a property of the design, not of the host);
* **stage seconds** (``cold_request`` vs ``warm_requests``) compare as
  shares within a tolerance, like the pipeline profile's stages.

Run it the way CI does::

    python -m repro.service.bench --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import statistics
import time

from ..perf import write_bench
from .jobs import JobSpec
from .pool import WarmEnginePool, execute_job

__all__ = ["service_bench", "main"]


def service_bench(alias: str = "cde", technique: str = "re",
                  num_frames: int = 4, requests: int = 5,
                  scale: str = "small") -> dict:
    """Measure cold-vs-warm request latency; returns the bench payload."""
    if requests < 2:
        raise ValueError("requests must be >= 2 (one cold, some warm)")
    spec = JobSpec(
        alias, technique=technique, num_frames=num_frames, scale=scale,
    ).validated()
    pool = WarmEnginePool(max_engines=1)
    latencies = []
    for _ in range(requests):
        start = time.perf_counter()
        execute_job(spec, pool=pool)
        latencies.append(time.perf_counter() - start)
    cold = latencies[0]
    warm = latencies[1:]
    warm_median = statistics.median(warm)
    stats = pool.stats
    return {
        "command": "service-bench",
        "game": alias,
        "games": [alias],
        "technique": technique,
        "frames": num_frames,
        "scale": scale,
        "requests": requests,
        "profile": {
            "wall_seconds": sum(latencies),
            "stage_seconds": {
                "cold_request": cold,
                "warm_requests": sum(warm),
            },
            "stage_calls": {
                "cold_request": 1,
                "warm_requests": len(warm),
            },
            "counters": {
                "requests": stats.requests,
                "engines_built": stats.engines_built,
                "warm_hits": stats.warm_hits,
                "engines_evicted": stats.engines_evicted,
                "warm_latency_below_cold": int(warm_median < cold),
            },
            "rates": {
                "warm_speedup": round(cold / warm_median, 1),
            },
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.bench",
        description="measure warm-vs-cold service request latency and "
                    "write a guarded bench profile",
    )
    parser.add_argument("--out", default="BENCH_service.json",
                        help="where to write the payload "
                             "(default BENCH_service.json)")
    parser.add_argument("--game", default="cde")
    parser.add_argument("--technique", default="re")
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--requests", type=int, default=5)
    parser.add_argument("--scale", default="small",
                        choices=("small", "benchmark", "mali450"))
    args = parser.parse_args(argv)
    payload = service_bench(
        args.game, technique=args.technique, num_frames=args.frames,
        requests=args.requests, scale=args.scale,
    )
    write_bench(args.out, payload)
    profile = payload["profile"]
    print(f"service bench: {args.requests} requests of "
          f"{args.game}/{args.technique} x {args.frames} frames")
    print(f"  cold request:  {profile['stage_seconds']['cold_request']:8.3f} s")
    print(f"  warm requests: {profile['stage_seconds']['warm_requests']:8.3f} s "
          f"({profile['stage_calls']['warm_requests']} requests, "
          f"speedup {profile['rates']['warm_speedup']:.1f}x)")
    print(f"  wrote profile to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
