"""Job specifications: what a service request asks the engine pool for.

A :class:`JobSpec` is the wire-level unit of work — a plain, hashable,
JSON-able description of one render: which game, which technique, how
many frames, which config preset plus overrides, and which *tenant* the
result is recorded under.  Everything the daemon does (admission,
batching by config digest, warm-pool keying, per-tenant registry
namespacing) keys off fields of the spec, so validation happens once,
up front, in :meth:`JobSpec.validated` — a malformed request is
rejected at the socket, never half-way through a worker.

Sweep and experiment requests arrive as one payload and *expand* into
their render jobs here (:func:`expand_payload`), reusing the same grids
the CLI's ``sweep`` and ``experiment`` subcommands fan out — so a
service sweep renders exactly the cells a CLI sweep would.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from ..config import GpuConfig
from ..engine.factory import TECHNIQUES
from ..errors import ConfigError, ServiceError
from ..harness.experiments import EXPERIMENT_TECHNIQUES
from ..harness.parallel import Cell
from ..obs.store import validate_tenant
from ..workloads.games import BENCHMARKS, FIGURE_ORDER, PSEUDO_WORKLOADS

__all__ = [
    "DEFAULT_TENANT",
    "JOB_KINDS",
    "KNOWN_ALIASES",
    "SCALES",
    "JobSpec",
    "expand_payload",
    "known_aliases",
]

#: Tenant a spec that does not name one records under.
DEFAULT_TENANT = "default"

#: Payload kinds :func:`expand_payload` understands.
JOB_KINDS = ("render", "sweep", "experiment")

#: Config presets a spec may name (mirrors the CLI's ``--scale``).
SCALES = ("small", "benchmark", "mali450")

#: The hard-coded workload aliases (games + pseudo-workloads).  Kept as
#: a constant for compatibility; admission control validates against
#: :func:`known_aliases`, which also sees DSL-registered workloads.
KNOWN_ALIASES = tuple(info.alias for info in BENCHMARKS) + PSEUDO_WORKLOADS


def known_aliases() -> tuple:
    """Every renderable alias right now: builtins plus DSL workloads.

    Computed per call because DSL workloads are file-registered — a
    scene dropped into ``$REPRO_WORKLOAD_PATH`` while the daemon runs
    is admissible without a restart.
    """
    from ..workloads.games import all_workload_aliases

    return all_workload_aliases()


def _preset(scale: str) -> GpuConfig:
    return {
        "small": GpuConfig.small,
        "benchmark": GpuConfig.benchmark,
        "mali450": GpuConfig.mali450,
    }[scale]()


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One render request, normalized and hashable.

    ``overrides`` is a sorted tuple of ``(GpuConfig field, value)``
    pairs rather than a dict so specs hash (the pool and the batcher
    key on them) and serialize canonically.  Use :meth:`from_dict` to
    build one from wire JSON — it normalizes a dict of overrides.
    """

    alias: str
    technique: str = "re"
    num_frames: int = 12
    exact_signatures: bool = False
    scale: str = "small"
    overrides: tuple = ()
    tenant: str = DEFAULT_TENANT
    #: Distributed-tracing context as sorted ``(key, value)`` pairs
    #: (kept a tuple so specs stay hashable).  Pure telemetry: it is
    #: excluded from :meth:`digest` and pool keying, so traced and
    #: untraced jobs batch and share warm engines identically.
    trace: tuple = ()

    @property
    def label(self) -> str:
        return f"{self.alias}/{self.technique}"

    def validated(self) -> "JobSpec":
        """Full up-front validation; returns ``self`` or raises.

        Tenant problems raise :class:`~repro.errors.TenantError` (an
        admission error — the id is attacker-controlled wire input);
        everything else raises :class:`~repro.errors.ServiceError`.
        """
        if self.alias not in known_aliases():
            from ..workloads.games import unknown_workload_message

            raise ServiceError(unknown_workload_message(self.alias))
        if self.technique not in TECHNIQUES:
            raise ServiceError(
                f"unknown technique {self.technique!r} "
                f"(choose from {', '.join(TECHNIQUES)})"
            )
        if self.scale not in SCALES:
            raise ServiceError(
                f"unknown scale {self.scale!r} "
                f"(choose from {', '.join(SCALES)})"
            )
        if not isinstance(self.num_frames, int) or self.num_frames < 1:
            raise ServiceError(
                f"num_frames must be a positive integer, "
                f"got {self.num_frames!r}"
            )
        validate_tenant(self.tenant)
        self.config()            # raises on bad override names/values
        return self

    def config(self) -> GpuConfig:
        """The spec's :class:`GpuConfig`: preset plus overrides."""
        config = _preset(self.scale)
        if not self.overrides:
            return config
        try:
            return dataclasses.replace(config, **dict(self.overrides))
        except (TypeError, ConfigError) as exc:
            raise ServiceError(
                f"bad config overrides {dict(self.overrides)!r}: {exc}"
            ) from None

    def digest(self) -> str:
        """The config digest batching and pool keying group by."""
        return self.config().digest()

    def cell(self) -> Cell:
        """This spec as a harness cell (seed derivation, fault specs)."""
        return Cell(
            self.alias, self.technique, self.num_frames,
            exact_signatures=self.exact_signatures,
        )

    # Distributed tracing ------------------------------------------------
    def trace_context(self):
        """The carried :class:`~repro.obs.distributed.TraceContext`,
        or ``None`` when the submitter did not trace this request."""
        from ..obs.distributed import TraceContext

        return TraceContext.from_mapping(dict(self.trace))

    def with_trace(self, context) -> "JobSpec":
        """A copy carrying ``context`` (a TraceContext or mapping)."""
        mapping = (context.to_dict()
                   if hasattr(context, "to_dict") else dict(context or {}))
        return dataclasses.replace(
            self, trace=tuple(sorted(mapping.items())),
        )

    # Wire format --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "alias": self.alias,
            "technique": self.technique,
            "num_frames": self.num_frames,
            "exact_signatures": self.exact_signatures,
            "scale": self.scale,
            "overrides": dict(self.overrides),
            "tenant": self.tenant,
            "trace": dict(self.trace),
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "JobSpec":
        """Build a spec from wire JSON (tolerates missing optionals)."""
        if not isinstance(data, typing.Mapping):
            raise ServiceError(
                f"job spec must be an object, got {type(data).__name__}"
            )
        if "alias" not in data and "game" not in data:
            raise ServiceError("job spec is missing 'game'")
        overrides = data.get("overrides") or {}
        if not isinstance(overrides, typing.Mapping):
            try:
                overrides = dict(overrides)
            except (TypeError, ValueError):
                raise ServiceError(
                    f"bad overrides {overrides!r}: expected an object of "
                    "GpuConfig field -> value"
                ) from None
        trace = data.get("trace") or {}
        if not isinstance(trace, typing.Mapping):
            trace = {}          # telemetry only — never refuse the job
        return cls(
            alias=data.get("alias", data.get("game")),
            technique=data.get("technique", "re"),
            num_frames=int(data.get("num_frames", 12)),
            exact_signatures=bool(data.get("exact_signatures", False)),
            scale=data.get("scale", "small"),
            overrides=tuple(sorted(overrides.items())),
            tenant=data.get("tenant", DEFAULT_TENANT),
            trace=tuple(sorted(
                (str(key), value) for key, value in trace.items()
            )),
        )


def _expand_sweep(base: JobSpec, parameters: typing.Mapping) -> list:
    """The sweep grid as render jobs — the CLI sweep's cartesian
    product, one spec per parameter assignment."""
    if not parameters:
        raise ServiceError("sweep payload needs non-empty 'parameters'")
    names = list(parameters)
    grids = []
    for name in names:
        values = parameters[name]
        if not isinstance(values, (list, tuple)) or not values:
            raise ServiceError(
                f"sweep parameter {name!r} needs a non-empty value list"
            )
        grids.append(values)
    specs = []
    for assignment in itertools.product(*grids):
        merged = dict(base.overrides)
        merged.update(zip(names, assignment))
        specs.append(dataclasses.replace(
            base, overrides=tuple(sorted(merged.items())),
        ))
    return specs


def _expand_experiment(base: JobSpec, experiment_id: str,
                       aliases: typing.Sequence = None) -> list:
    """An experiment's prefetch matrix as render jobs — the same
    (game, technique) cells ``repro experiment --jobs`` would warm."""
    if experiment_id not in EXPERIMENT_TECHNIQUES:
        raise ServiceError(
            f"unknown experiment {experiment_id!r} "
            f"(choose from {', '.join(sorted(EXPERIMENT_TECHNIQUES))})"
        )
    aliases = tuple(aliases) if aliases else FIGURE_ORDER
    return [
        dataclasses.replace(base, alias=alias, technique=technique)
        for alias in aliases
        for technique in EXPERIMENT_TECHNIQUES[experiment_id]
    ]


def expand_payload(payload: typing.Mapping) -> list:
    """Expand one submit payload into its validated render jobs.

    ``payload["kind"]`` selects the expansion (default ``render``):

    * ``render``     — the payload is one :class:`JobSpec`;
    * ``sweep``      — ``parameters: {field: [values...]}`` expands to
      the cartesian grid, each point a render job whose overrides carry
      its assignment;
    * ``experiment`` — ``id: fig14a`` expands to that experiment's
      (game, technique) prefetch matrix.

    Every expanded spec is validated; the list is rejected atomically
    (one bad point means nothing was accepted).
    """
    kind = payload.get("kind", "render")
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r} (choose from {', '.join(JOB_KINDS)})"
        )
    if kind == "experiment" and "alias" not in payload \
            and "game" not in payload:
        payload = dict(payload)
        payload["alias"] = FIGURE_ORDER[0]      # placeholder; replaced
    base = JobSpec.from_dict(payload)
    if kind == "render":
        specs = [base]
    elif kind == "sweep":
        specs = _expand_sweep(base, payload.get("parameters") or {})
    else:
        specs = _expand_experiment(
            base, payload.get("id"), payload.get("games"),
        )
    return [spec.validated() for spec in specs]
