"""Render-as-a-service: a persistent engine daemon with warm caches.

Standing up a :class:`~repro.engine.session.RenderSession` is the
expensive part of a short render request — scene construction, the
stage graph, signature buffers and the shared raster/shade memos all
get rebuilt per process.  This package keeps those resident:

* :mod:`.jobs`   — :class:`JobSpec`, the JSON-able description of one
  render request (plus sweep/experiment expansion);
* :mod:`.pool`   — :class:`WarmEnginePool`, an LRU of constructed
  engines keyed by ``(game, technique, exact, config digest)``, and
  :func:`execute_job`, the one code path both the daemon's workers and
  the CLI's in-process mode run;
* :mod:`.daemon` — :class:`EngineDaemon`, admission control, request
  batching and persistent fault-isolated worker processes;
* :mod:`.server` — the asyncio socket front-end (``repro serve``);
* :mod:`.client` — the synchronous client (``repro submit/status``)
  and :func:`run_job_inprocess` for CLI runs without a daemon;
* :mod:`.bench`  — the warm-vs-cold latency benchmark behind
  ``BENCH_service.json``.

The load-bearing invariant is the engine-reuse contract
(:meth:`RenderSession.reset`, pinned by
``tests/engine/test_session_reuse.py``): a run on a reused engine is
bit-identical to a run on a fresh one, so warm service answers equal
cold CLI answers down to per-tile CRCs.
"""

from .client import ServiceClient, run_job_inprocess
from .daemon import EngineDaemon, ServiceConfig
from .jobs import DEFAULT_TENANT, JobSpec, expand_payload
from .pool import WarmEnginePool, execute_job
from .server import ServiceServer
from .telemetry import (
    NULL_TELEMETRY,
    LogHistogram,
    ServiceTelemetry,
    TelemetryRecorder,
    merge_histograms,
)

__all__ = [
    "DEFAULT_TENANT",
    "EngineDaemon",
    "JobSpec",
    "LogHistogram",
    "NULL_TELEMETRY",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "ServiceTelemetry",
    "TelemetryRecorder",
    "WarmEnginePool",
    "execute_job",
    "expand_payload",
    "merge_histograms",
    "run_job_inprocess",
]
