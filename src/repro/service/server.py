"""Asyncio socket front-end over an :class:`EngineDaemon`.

``repro serve`` binds a Unix-domain socket and speaks a newline-framed
JSON protocol: one request object per line, one response object per
line.  Requests are ``{"op": ..., ...}``; responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": msg, "kind": k}``
where ``kind`` names the typed refusal (``backpressure`` / ``tenant`` /
``admission`` / ``service`` / ``protocol``) so clients can rebuild the
exception without parsing prose.

Ops:

* ``ping``     — liveness; returns the daemon pid.
* ``submit``   — ``{"op": "submit", "job": {payload}}`` admits one
  payload (render / sweep / experiment expansion happens daemon-side);
  returns the admitted jobs' public projections.
* ``status``   — the daemon's status snapshot.
* ``stats``    — the telemetry snapshot (queue depth, latency
  histograms with p50/p95/p99, warm-hit rates, per-tenant counters);
  ``repro stats`` renders it.
* ``wait``     — ``{"op": "wait", "job_id": j, "timeout": s}`` blocks
  (in an executor — the event loop stays responsive) until terminal.
* ``watch``    — the one *streaming* op: after an acknowledgement line
  the server keeps writing ``{"ok": true, "kind": "event", ...}`` job
  lifecycle events (admitted / started / retried / done — sweep points
  as they finish) and periodic ``{"ok": true, "kind": "stats", ...}``
  frames until the client disconnects (``repro top``).
* ``shutdown`` — stop serving; ``repro serve`` then closes the daemon.

The event loop only ever does bookkeeping — rendering happens in the
daemon's worker processes — so one slow job never blocks another
client's submit.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading

from ..errors import (
    AdmissionError,
    BackpressureError,
    ServiceError,
    TenantError,
)
from .daemon import EngineDaemon

__all__ = ["ServiceServer", "error_kind"]


def error_kind(exc: ServiceError) -> str:
    """The wire ``kind`` a typed service refusal travels as."""
    if isinstance(exc, BackpressureError):
        return "backpressure"
    if isinstance(exc, TenantError):
        return "tenant"
    if isinstance(exc, AdmissionError):
        return "admission"
    return "service"


class ServiceServer:
    """Newline-JSON Unix-socket server for one daemon.

    ``serve_forever`` blocks the calling thread (the CLI's mode);
    ``start_in_thread`` runs the loop on a background thread and
    returns once the socket is accepting (the tests' mode).
    """

    def __init__(self, daemon: EngineDaemon, socket_path) -> None:
        self.daemon = daemon
        self.socket_path = os.fspath(socket_path)
        self._loop = None
        self._stop_event = None
        self._thread = None

    # Protocol -----------------------------------------------------------
    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pid": os.getpid()}
            if op == "status":
                return {"ok": True, "status": self.daemon.status()}
            if op == "stats":
                return {"ok": True, "stats": self.daemon.stats_snapshot()}
            if op == "submit":
                payload = request.get("job")
                if not isinstance(payload, dict):
                    raise ServiceError(
                        "submit needs a 'job' object payload"
                    )
                jobs = await asyncio.get_running_loop().run_in_executor(
                    None, self.daemon.submit_payload, payload,
                )
                return {"ok": True, "jobs": [job.public() for job in jobs]}
            if op == "wait":
                job_id = request.get("job_id")
                timeout = request.get("timeout")
                job = await asyncio.get_running_loop().run_in_executor(
                    None, self.daemon.wait, job_id, timeout,
                )
                return {"ok": True, "job": job.public()}
            if op == "shutdown":
                self._stop_event.set()
                return {"ok": True, "stopping": True}
            return {
                "ok": False, "kind": "protocol",
                "error": f"unknown op {op!r} "
                         "(ping/submit/status/stats/wait/watch/shutdown)",
            }
        except ServiceError as exc:
            return {"ok": False, "kind": error_kind(exc),
                    "error": str(exc)}

    async def _stream_watch(self, request: dict, writer) -> None:
        """Stream lifecycle events + periodic stats frames.

        ``interval`` (seconds, default 1) paces the stats frames;
        ``since`` replays buffered events newer than that sequence
        number (default: only events from now on); ``stats: false``
        streams events only.  Ends when the client disconnects or the
        server stops.
        """
        try:
            interval = float(request.get("interval") or 1.0)
        except (TypeError, ValueError):
            interval = 1.0
        interval = max(0.05, interval)
        send_stats = request.get("stats", True)
        since = request.get("since")
        try:
            seq = int(since) if since is not None \
                else self.daemon.telemetry_seq()
        except (TypeError, ValueError):
            seq = self.daemon.telemetry_seq()
        writer.write(json.dumps(
            {"ok": True, "watching": True, "since": seq}
        ).encode() + b"\n")
        await writer.drain()
        loop = asyncio.get_running_loop()
        next_stats = loop.time()       # first stats frame immediately
        while not self._stop_event.is_set():
            for event in self.daemon.telemetry_events(seq):
                seq = max(seq, int(event.get("seq", seq)))
                writer.write(json.dumps(
                    {"ok": True, "kind": "event", "event": event}
                ).encode() + b"\n")
            if send_stats and loop.time() >= next_stats:
                next_stats = loop.time() + interval
                writer.write(json.dumps(
                    {"ok": True, "kind": "stats",
                     "stats": self.daemon.stats_snapshot()}
                ).encode() + b"\n")
            await writer.drain()
            await asyncio.sleep(min(interval, 0.2))

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    response = {"ok": False, "kind": "protocol",
                                "error": f"bad request line: {exc}"}
                else:
                    if request.get("op") == "watch":
                        # Streaming op: takes over the connection and
                        # writes lines until the client goes away.
                        await self._stream_watch(request, writer)
                        return
                    response = await self._dispatch(request)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            return      # loop shutdown cancelled us mid-readline; quiet
        finally:
            writer.close()

    # Lifecycle ----------------------------------------------------------
    async def _main(self, ready: threading.Event = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)     # stale socket from a kill
        server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path,
        )
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def serve_forever(self, ready: threading.Event = None) -> None:
        """Run the server on this thread until ``shutdown`` arrives."""
        asyncio.run(self._main(ready))

    def start_in_thread(self) -> "ServiceServer":
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self.serve_forever, kwargs={"ready": ready},
            name="repro-service-server", daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise ServiceError(
                f"service socket {self.socket_path} did not come up"
            )
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass        # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
