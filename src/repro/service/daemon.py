"""The engine-pool daemon: admission, batching, persistent workers.

:class:`EngineDaemon` is the long-lived heart of the render service.
It accepts validated :class:`~repro.service.jobs.JobSpec` jobs, applies
**admission control** before anything is queued (a bounded queue and a
per-tenant pending cap — overload answers with a typed refusal,
:class:`~repro.errors.BackpressureError` /
:class:`~repro.errors.TenantError`, instead of growing without bound),
**batches compatible jobs** — same :meth:`GpuConfig.digest`, so they
can share a worker's warm engines and memo state — onto one worker
dispatch, and records every completed run into the submitting tenant's
registry namespace (:meth:`~repro.obs.store.RunRegistry.for_tenant`).

Worker substrate: the supervisor's process-per-attempt isolation,
adapted for warmth.  Each worker is a *persistent* forked process
owning its own :class:`~repro.service.pool.WarmEnginePool`; jobs travel
over a duplex pipe.  A crashed job therefore kills one worker — never
the daemon — and is detected exactly the way the supervisor detects
crashed attempts: EOF on the worker's pipe.  The daemon respawns the
worker (cold pool, warmth is the only loss) and requeues its in-flight
jobs until ``max_retries`` is exhausted.  The supervisor's
deterministic fault injection carries over verbatim: workers honour
``REPRO_FAULT_SPEC`` (``alias/technique:frame:kind[:times]``, ``*``
wildcards) at frame boundaries, so the recovery path is testable.

Telemetry: the daemon owns at most one
:class:`~repro.obs.live.LiveAggregator` — the single writer of its
``live.json`` heartbeat — and routes every worker's per-frame telemetry
(tagged tuples on the same pipe as results) through it.  Readers
(``repro status``) use :func:`~repro.obs.live.read_heartbeat`, never a
second aggregator.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import multiprocessing.connection
import os
import threading
import time
import typing

from ..errors import (
    BackpressureError,
    ReproError,
    ServiceError,
    TenantError,
)
from ..harness.supervisor import (
    CRASH_EXITCODE,
    FAULT_ENV_VAR,
    FaultSpec,
    InjectedFault,
    _mp_context,
)
from ..obs.distributed import ShardTracer, TraceShard
from ..obs.live import TELEMETRY_TAG, ChannelLiveSink, LiveAggregator
from .jobs import JobSpec, expand_payload
from .pool import WarmEnginePool, execute_job
from .telemetry import NULL_TELEMETRY, TelemetryRecorder

__all__ = [
    "EngineDaemon",
    "Job",
    "ServiceConfig",
    "ServiceStats",
]


def _job_tid(job_id: str) -> int:
    """A job's trace track: its number (``j0042`` -> 42)."""
    try:
        return int(job_id.lstrip("j"))
    except ValueError:
        return 0


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Operating knobs of one daemon."""

    #: Persistent worker processes (each with its own warm pool).
    workers: int = 1
    #: Bounded queue: jobs *waiting* beyond this are refused
    #: (:class:`BackpressureError`), never buffered without bound.
    max_queue: int = 16
    #: Per-tenant cap on queued+running jobs (:class:`TenantError`).
    tenant_max_pending: int = 8
    #: Most compatible jobs dispatched to a worker as one batch.
    batch_max: int = 4
    #: Warm engines each worker's pool keeps resident.
    max_engines: int = 4
    #: Re-dispatches after a job's worker crashed (total attempts =
    #: retries + 1); the supervisor's retry policy, service-shaped.
    max_retries: int = 1
    #: Wall-clock limit per dispatched batch; a worker that exceeds it
    #: is terminated like a crash (``None`` = unlimited).
    job_timeout_s: float = None
    #: Scheduler poll granularity; bounds crash/timeout detection lag.
    poll_interval_s: float = 0.05
    #: Heartbeat file the daemon-owned aggregator writes (``None`` =
    #: no live telemetry).
    live_path: str = None
    #: No-telemetry threshold before a running job is flagged stalled.
    stall_after_s: float = 10.0
    #: Service telemetry (histograms / tenant counters / events for the
    #: ``stats`` and ``watch`` verbs).  ``False`` makes the recorder a
    #: falsy no-op — one truthiness check per lifecycle transition.
    telemetry: bool = True
    #: Directory for distributed trace shards (daemon + worker
    #: processes each write ``shard-<role>-<pid>.jsonl`` here;
    #: ``None`` = no request tracing).
    trace_dir: str = None
    #: JSONL file periodic telemetry snapshots append to (``None`` =
    #: snapshots only reachable over the socket / registry).
    telemetry_log: str = None
    #: Seconds between periodic snapshot flushes.
    telemetry_interval_s: float = 30.0


@dataclasses.dataclass
class ServiceStats:
    """Daemon-lifetime counters (all deterministic given a schedule)."""

    submitted: int = 0
    rejected_backpressure: int = 0
    rejected_tenant: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    batches_dispatched: int = 0
    jobs_batched: int = 0       # jobs that shared a multi-job dispatch
    warm_jobs: int = 0
    cold_jobs: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Job:
    """One admitted job and its lifecycle state."""

    job_id: str
    spec: JobSpec
    digest: str
    state: str = "queued"           # queued | running | done | failed
    attempts: int = 0
    worker: int = None
    warm: bool = None
    error: str = None
    summary: dict = None
    result: object = None           # RunResult (in-process callers)
    run_id: str = None              # tenant-registry id, when recorded
    submitted_at: float = dataclasses.field(default_factory=time.time)
    started_at: float = None
    finished_at: float = None

    def public(self) -> dict:
        """The JSON-able projection socket clients see."""
        return {
            "job_id": self.job_id,
            "tenant": self.spec.tenant,
            "game": self.spec.alias,
            "technique": self.spec.technique,
            "num_frames": self.spec.num_frames,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "warm": self.warm,
            "error": self.error,
            "summary": self.summary,
            "run_id": self.run_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


def _summarize(result) -> dict:
    """Headline numbers of a finished run, JSON-able."""
    return {
        "total_cycles": result.total_cycles,
        "total_energy_nj": result.total_energy_nj,
        "total_traffic_bytes": result.total_traffic_bytes,
        "fragments_shaded": result.fragments_shaded,
        "tiles_skipped": result.tiles_skipped,
        "skipped_fraction": result.skipped_fraction(),
        "final_frame_crc": result.final_frame_crc,
    }


# ----------------------------------------------------------------------
# Worker side (child process)
# ----------------------------------------------------------------------

def _fire_fault(fault: FaultSpec) -> None:
    """The supervisor's fault semantics, verbatim."""
    if fault.kind == "crash":
        os._exit(CRASH_EXITCODE)
    if fault.kind == "hang":
        while True:
            time.sleep(3600)
    raise InjectedFault(f"injected fault at frame boundary ({fault})")


def _worker_main(conn, worker_id: int, max_engines: int,
                 trace_dir=None) -> None:
    """Persistent worker body: serve jobs until ``stop`` or EOF.

    Messages in: ``("job", job_id, spec_dict, attempt)`` or
    ``("stop",)``.  Messages out: per-frame ``("telemetry", {...})``
    (via :class:`ChannelLiveSink` on the same pipe), then exactly one of
    ``("done", job_id, RunResult, info)`` or ``("fail", job_id,
    description)`` per job.  An injected ``crash`` sends nothing — the
    daemon reads the EOF, like the supervisor does.

    With ``trace_dir`` the worker writes a distributed-trace shard:
    each job gets an ``engine`` span (frame/stage spans nested inside,
    via the :class:`ShardTracer` handed to :func:`execute_job`) on the
    job's own track, stamped with the request's trace context.
    """
    fault = None
    fault_env = os.environ.get(FAULT_ENV_VAR)
    if fault_env:
        fault = FaultSpec.parse(fault_env)
    pool = WarmEnginePool(max_engines=max_engines)
    shard = (TraceShard(trace_dir, f"worker{worker_id}")
             if trace_dir else None)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        _, job_id, spec_dict, attempt = message
        tracer = None
        try:
            spec = JobSpec.from_dict(spec_dict)
            hook = None
            if fault is not None and fault.matches(spec.cell()):
                def hook(frames_rendered, _fault=fault, _attempt=attempt):
                    if _fault.should_fire(_attempt, frames_rendered):
                        _fire_fault(_fault)
            live = ChannelLiveSink(
                conn, f"{spec.tenant}:{spec.label}", attempt=attempt,
            )
            if shard is not None:
                context = spec.trace_context()
                tracer = ShardTracer(
                    shard, tid=_job_tid(job_id),
                    trace_id=context.trace_id if context else None,
                    parent_span_id=context.span_id if context else None,
                    label=f"engine {job_id}",
                )
                tracer.begin("engine", job_id=job_id, attempt=attempt,
                             cell=spec.label, worker=worker_id)
            result, info = execute_job(
                spec, pool=pool, live=live, frame_hook=hook,
                tracer=tracer,
            )
        except Exception as exc:
            if tracer is not None:
                tracer.close_open_spans()
            try:
                conn.send(("fail", job_id,
                           f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):
                break
            continue
        if tracer is not None:
            tracer.end("engine")
        info = dict(info)
        info["pool"] = pool.stats.as_dict()
        try:
            conn.send(("done", job_id, result, info))
        except (OSError, ValueError):
            break
    if shard is not None:
        shard.close()


class _Worker:
    """Daemon-side record of one persistent worker process."""

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.inflight: collections.deque = collections.deque()
        self.dispatched_at: float = None

    @property
    def idle(self) -> bool:
        return not self.inflight


# ----------------------------------------------------------------------
# Daemon (parent process)
# ----------------------------------------------------------------------

class EngineDaemon:
    """Warm render service over persistent fault-isolated workers.

    Thread-safe: :meth:`submit` / :meth:`wait` / :meth:`status` may be
    called from any thread (the socket server calls them from its event
    loop and executor).  One internal scheduler thread owns dispatch,
    worker pipes and registry writes.

    ``registry`` is the *root* :class:`~repro.obs.store.RunRegistry`;
    each finished job is recorded under its tenant's namespace.  Pass
    ``None`` to disable recording.
    """

    def __init__(self, config: ServiceConfig = None, registry=None,
                 live: LiveAggregator = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry
        if live is None and self.config.live_path:
            live = LiveAggregator(
                path=self.config.live_path, stream=None,
                stall_after_s=self.config.stall_after_s,
                owner=f"repro-serve:{os.getpid()}",
            )
        self.live = live
        self.telemetry = (TelemetryRecorder() if self.config.telemetry
                          else NULL_TELEMETRY)
        self.trace = (TraceShard(self.config.trace_dir, "daemon")
                      if self.config.trace_dir else None)
        self.stats = ServiceStats()
        self.jobs: dict = {}
        self._queue: collections.deque = collections.deque()
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._workers: dict = {}
        self._worker_ids = itertools.count(1)
        self._ctx = _mp_context()
        self._scheduler: threading.Thread = None
        self._running = False
        self.started_at = None

    # Lifecycle ----------------------------------------------------------
    def start(self) -> "EngineDaemon":
        with self._lock:
            if self._running:
                return self
            self._running = True
            self.started_at = time.time()
            for _ in range(max(1, self.config.workers)):
                self._spawn_worker()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-service-scheduler",
            daemon=True,
        )
        self._scheduler.start()
        return self

    def close(self) -> None:
        """Stop the scheduler and tear the workers down.  Queued jobs
        that never ran stay ``queued`` — the daemon refuses new work
        once closed, it does not pretend pending work finished."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._done.notify_all()
        if self._scheduler is not None:
            self._scheduler.join(timeout=10.0)
        for worker in list(self._workers.values()):
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in list(self._workers.values()):
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            worker.conn.close()
        self._workers.clear()
        # The final sampling window must survive a short-lived daemon:
        # flush one last snapshot before anything else is torn down
        # (the `shutdown` verb and SIGTERM both route through here).
        if self.telemetry:
            self.telemetry.flush(
                path=self.config.telemetry_log,
                registry=self.registry,
                reason="shutdown",
            )
        if self.trace is not None:
            self.trace.close()
        if self.live is not None:
            self.live.close()

    def __enter__(self) -> "EngineDaemon":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # Admission ----------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one job or raise a typed refusal.

        Validation first (malformed specs and bad tenant ids never
        reach the queue), then the bounded queue, then the tenant cap.
        A refused job leaves no state behind; retrying later is safe.
        """
        spec = spec.validated()
        digest = spec.digest()
        with self._lock:
            if not self._running:
                raise ServiceError("service daemon is not running")
            if len(self._queue) >= self.config.max_queue:
                self.stats.rejected_backpressure += 1
                if self.telemetry:
                    self.telemetry.job_refused(spec.tenant, "backpressure")
                raise BackpressureError(
                    f"job queue is full ({self.config.max_queue} "
                    "queued); the service applies backpressure instead "
                    "of buffering without bound — resubmit later"
                )
            pending = sum(
                1 for job in self.jobs.values()
                if job.spec.tenant == spec.tenant
                and job.state in ("queued", "running")
            )
            if pending >= self.config.tenant_max_pending:
                self.stats.rejected_tenant += 1
                if self.telemetry:
                    self.telemetry.job_refused(spec.tenant, "tenant")
                raise TenantError(
                    f"tenant {spec.tenant!r} already has {pending} "
                    f"pending job(s) (cap "
                    f"{self.config.tenant_max_pending}); wait for them "
                    "to finish"
                )
            job = Job(f"j{next(self._ids):04d}", spec, digest)
            self.jobs[job.job_id] = job
            self._queue.append(job.job_id)
            self.stats.submitted += 1
            if self.telemetry:
                self.telemetry.job_admitted(job)
            if self.trace is not None:
                tid = _job_tid(job.job_id)
                context = spec.trace_context()
                args = {"job_id": job.job_id, "tenant": spec.tenant,
                        "cell": spec.label}
                if context is not None:
                    args["trace_id"] = context.trace_id
                    args["parent_span_id"] = context.span_id
                self.trace.name_thread(tid, f"job {job.job_id}")
                self.trace.begin("job", tid=tid, **args)
                self.trace.begin("queue", tid=tid)
            return job

    def submit_payload(self, payload: typing.Mapping) -> list:
        """Expand and admit one wire payload (render/sweep/experiment).

        Expansion is atomic — if any expanded spec fails validation or
        admission, previously admitted siblings are withdrawn so a
        refused payload leaves nothing queued."""
        specs = expand_payload(payload)
        admitted = []
        try:
            for spec in specs:
                admitted.append(self.submit(spec))
        except ServiceError:
            with self._lock:
                for job in admitted:
                    if job.state == "queued":
                        self._queue.remove(job.job_id)
                        del self.jobs[job.job_id]
                        self.stats.submitted -= 1
                        if self.telemetry:
                            self.telemetry.job_withdrawn(job)
                        if self.trace is not None:
                            tid = _job_tid(job.job_id)
                            self.trace.instant("withdrawn", tid=tid)
                            self.trace.close_track(tid)
            raise
        return admitted

    # Introspection ------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            return job

    def wait(self, job_id: str, timeout: float = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done:
            while True:
                job = self.job(job_id)
                if job.state in ("done", "failed"):
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            f"timed out waiting for job {job_id} "
                            f"(state {job.state!r})"
                        )
                self._done.wait(
                    remaining if remaining is not None else 1.0
                )

    def status(self) -> dict:
        """A JSON-able snapshot (``repro status`` renders this)."""
        with self._lock:
            recent = list(self.jobs.values())[-50:]
            return {
                "running": self._running,
                "pid": os.getpid(),
                "started_at": self.started_at,
                "queue_depth": len(self._queue),
                "workers": {
                    worker.worker_id: {
                        "pid": worker.process.pid,
                        "inflight": list(worker.inflight),
                    }
                    for worker in self._workers.values()
                },
                "stats": self.stats.as_dict(),
                "jobs": [job.public() for job in recent],
                "live_path": self.live.path if self.live else None,
            }

    def stats_snapshot(self) -> dict:
        """The ``stats`` verb's payload: daemon state + telemetry.

        Unlike :meth:`status` this carries the quantitative view —
        latency histograms with percentiles, warm-hit rates (daemon-
        and pool-level), per-tenant counters — and omits the per-job
        listing.  ``telemetry`` is ``None`` when disabled.
        """
        with self._lock:
            snapshot = {
                "running": self._running,
                "pid": os.getpid(),
                "started_at": self.started_at,
                "uptime_s": (time.time() - self.started_at
                             if self.started_at else 0.0),
                "queue_depth": len(self._queue),
                "workers": len(self._workers),
                "stats": self.stats.as_dict(),
            }
        snapshot["telemetry"] = (self.telemetry.snapshot()
                                 if self.telemetry else None)
        return snapshot

    def telemetry_seq(self) -> int:
        """The newest lifecycle-event sequence number (``watch``)."""
        return self.telemetry.last_seq() if self.telemetry else 0

    def telemetry_events(self, since: int) -> list:
        """Lifecycle events newer than ``since`` (``watch`` streaming)."""
        return (self.telemetry.events_since(since)
                if self.telemetry else [])

    # Scheduler ----------------------------------------------------------
    def _spawn_worker(self) -> "_Worker":
        worker_id = next(self._worker_ids)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self.config.max_engines,
                  self.config.trace_dir),
            name=f"repro-service-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(worker_id, process, parent_conn)
        self._workers[worker_id] = worker
        return worker

    def _scheduler_loop(self) -> None:
        while True:
            with self._lock:
                if not self._running:
                    return
                self._dispatch_locked()
                conns = {
                    worker.conn: worker
                    for worker in self._workers.values()
                }
            ready = multiprocessing.connection.wait(
                list(conns), timeout=self.config.poll_interval_s,
            ) if conns else []
            if not conns:
                time.sleep(self.config.poll_interval_s)
            for conn in ready:
                self._drain_worker(conns[conn])
            self._check_timeouts()
            if self.live is not None:
                self.live.tick()
            if self.telemetry:
                self.telemetry.maybe_flush(
                    path=self.config.telemetry_log,
                    registry=self.registry,
                    interval_s=self.config.telemetry_interval_s,
                )

    def _dispatch_locked(self) -> None:
        """Send batches of digest-compatible queued jobs to idle
        workers.  Compatible jobs share a worker so the second one hits
        the engine (or at least the memo state) the first one warmed."""
        idle = [w for w in self._workers.values() if w.idle]
        while idle and self._queue:
            head_id = self._queue[0]
            head = self.jobs[head_id]
            batch = [head_id]
            for job_id in list(self._queue)[1:]:
                if len(batch) >= self.config.batch_max:
                    break
                if self.jobs[job_id].digest == head.digest:
                    batch.append(job_id)
            worker = idle.pop(0)
            self.stats.batches_dispatched += 1
            if len(batch) > 1:
                self.stats.jobs_batched += len(batch)
            for job_id in batch:
                self._queue.remove(job_id)
                job = self.jobs[job_id]
                job.state = "running"
                job.attempts += 1
                job.worker = worker.worker_id
                job.started_at = time.time()
                if self.telemetry:
                    self.telemetry.job_dispatched(
                        job, len(batch),
                        job.started_at - job.submitted_at,
                    )
                if self.trace is not None:
                    tid = _job_tid(job_id)
                    self.trace.end("queue", tid=tid)
                    self.trace.begin(
                        "execute", tid=tid, worker=worker.worker_id,
                        batch=len(batch), attempt=job.attempts,
                    )
                worker.conn.send(
                    ("job", job_id, job.spec.to_dict(), job.attempts)
                )
                worker.inflight.append(job_id)
            worker.dispatched_at = time.monotonic()

    def _drain_worker(self, worker: "_Worker") -> None:
        try:
            while worker.conn.poll(0):
                self._handle_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            self._worker_died(worker, "worker crashed (pipe EOF)")

    def _handle_message(self, worker: "_Worker", message) -> None:
        if message[0] == TELEMETRY_TAG:
            if self.live is not None:
                self.live.update(message)
            return
        kind, job_id = message[0], message[1]
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return
            if job_id in worker.inflight:
                worker.inflight.remove(job_id)
            worker.dispatched_at = (
                time.monotonic() if worker.inflight else None
            )
            if kind == "fail":
                self._job_failed_locked(job, message[2])
                return
        # Record *before* the job turns terminal: a waiter woken by the
        # state flip must already see the tenant-registry run_id.
        result, info = message[2], message[3]
        job.warm = bool(info.get("warm"))
        job.summary = _summarize(result)
        job.result = result
        self._record_job(job, result)
        with self._lock:
            job.state = "done"
            job.finished_at = time.time()
            self.stats.completed += 1
            if job.warm:
                self.stats.warm_jobs += 1
            else:
                self.stats.cold_jobs += 1
            if self.telemetry:
                if "pool" in info:
                    self.telemetry.worker_pool(
                        worker.worker_id, info["pool"],
                    )
                self.telemetry.job_finished(job, job.warm)
            if self.trace is not None:
                tid = _job_tid(job.job_id)
                self.trace.end("execute", tid=tid)
                self.trace.end("job", tid=tid, warm=job.warm)
            self._done.notify_all()

    def _job_failed_locked(self, job: Job, error: str) -> None:
        """Retry (requeue at the front — it already waited) or fail."""
        if self.trace is not None:
            self.trace.end("execute", tid=_job_tid(job.job_id))
        if job.attempts <= self.config.max_retries:
            self.stats.retried += 1
            job.state = "queued"
            job.error = None
            self._queue.appendleft(job.job_id)
            if self.telemetry:
                self.telemetry.job_retried(job)
            if self.trace is not None:
                tid = _job_tid(job.job_id)
                self.trace.instant("retry", tid=tid, error=error,
                                   attempt=job.attempts)
                self.trace.begin("queue", tid=tid)
            return
        job.state = "failed"
        job.error = error
        job.finished_at = time.time()
        self.stats.failed += 1
        if self.telemetry:
            self.telemetry.job_failed(job)
        if self.trace is not None:
            tid = _job_tid(job.job_id)
            self.trace.instant("failed", tid=tid, error=error)
            self.trace.end("job", tid=tid)
        self._done.notify_all()

    def _worker_died(self, worker: "_Worker", reason: str) -> None:
        with self._lock:
            if worker.worker_id not in self._workers:
                return
            del self._workers[worker.worker_id]
            self.stats.worker_crashes += 1
            for job_id in list(worker.inflight):
                job = self.jobs[job_id]
                self._job_failed_locked(job, reason)
            worker.inflight.clear()
            respawn = self._running
            if respawn:
                self._spawn_worker()
                self.stats.worker_restarts += 1
        worker.conn.close()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)

    def _check_timeouts(self) -> None:
        if self.config.job_timeout_s is None:
            return
        with self._lock:
            overdue = [
                worker for worker in self._workers.values()
                if worker.dispatched_at is not None
                and time.monotonic() - worker.dispatched_at
                > self.config.job_timeout_s
            ]
        for worker in overdue:
            # Terminate like a crash: the EOF path requeues its jobs.
            worker.process.terminate()
            self._worker_died(
                worker,
                f"job exceeded timeout "
                f"({self.config.job_timeout_s:.1f}s); worker terminated",
            )

    # Registry -----------------------------------------------------------
    def _record_job(self, job: Job, result) -> None:
        """Record into the tenant's namespace; never fails the job."""
        if self.registry is None:
            return
        try:
            tenant_registry = self.registry.for_tenant(job.spec.tenant)
            job.run_id = tenant_registry.record_run(
                result, kind="service-job",
                extra={
                    "job_id": job.job_id,
                    "tenant": job.spec.tenant,
                    "warm": job.warm,
                    "attempts": job.attempts,
                },
            )
        except (OSError, ReproError) as exc:
            self.registry.note_write_error(exc)
