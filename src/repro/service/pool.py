"""Warm engine pool: constructed render engines, kept for reuse.

Constructing a :class:`~repro.engine.session.RenderSession` pays for
scene generation, the GPU stage graph, signature buffers and (via the
shared content-keyed raster/shade/tile memos) shader warm-up.  For a
service answering many short requests that cost dominates, so the pool
keeps finished engines resident, keyed by everything that determines
their behaviour — ``(alias, technique, exact_signatures, config
digest)`` — and hands them back out after a
:meth:`~repro.engine.session.RenderSession.reset`.

Soundness rests on the engine-reuse contract
(``tests/engine/test_session_reuse.py``): a reset engine renders
bit-identically to a fresh one, so a warm hit changes latency and
nothing else.  An engine is returned to the pool only after its job
*succeeded* — a job that raised leaves its engine behind (state
unknown, never reused).

:func:`execute_job` is the one code path every service execution takes:
the daemon's persistent workers, the CLI's transient in-process mode
(:func:`~repro.service.client.run_job_inprocess`) and the warm-latency
benchmark all call it, which is what makes "service answers equal
direct-run answers" a single invariant instead of three.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from ..engine.session import RenderSession
from ..harness.parallel import cell_seed
from ..harness.runner import result_from_session
from .jobs import JobSpec

__all__ = ["PoolStats", "WarmEnginePool", "execute_job"]


@dataclasses.dataclass
class PoolStats:
    """Lifetime counters of one pool (deterministic; bench-guarded)."""

    requests: int = 0
    warm_hits: int = 0
    engines_built: int = 0
    engines_evicted: int = 0
    engines_discarded: int = 0      # failed jobs' engines, never reused

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class WarmEnginePool:
    """LRU pool of constructed engines, bounded by ``max_engines``.

    Not thread-safe by design: each daemon worker process owns exactly
    one pool (engines hold the process's shared memos and cannot cross
    process boundaries anyway).
    """

    def __init__(self, max_engines: int = 4) -> None:
        if max_engines < 1:
            raise ValueError("max_engines must be >= 1")
        self.max_engines = max_engines
        self.stats = PoolStats()
        self._engines: collections.OrderedDict = collections.OrderedDict()

    @staticmethod
    def key(spec: JobSpec) -> tuple:
        """Everything that determines an engine's behaviour."""
        return (spec.alias, spec.technique, spec.exact_signatures,
                spec.digest())

    def __len__(self) -> int:
        return len(self._engines)

    def acquire(self, spec: JobSpec):
        """``(session, warm)`` for the spec: a reset resident engine on
        a hit, a freshly constructed one on a miss.  The engine is
        checked *out* — a crash mid-job cannot poison the pool."""
        self.stats.requests += 1
        key = self.key(spec)
        session = self._engines.pop(key, None)
        if session is not None:
            self.stats.warm_hits += 1
            session.reset(num_frames=spec.num_frames)
            return session, True
        self.stats.engines_built += 1
        session = RenderSession(
            spec.alias, technique=spec.technique, config=spec.config(),
            num_frames=spec.num_frames,
            exact_signatures=spec.exact_signatures,
        )
        return session, False

    def release(self, spec: JobSpec, session: RenderSession) -> None:
        """Return a *successfully used* engine; evicts LRU past bound."""
        key = self.key(spec)
        self._engines[key] = session
        self._engines.move_to_end(key)
        while len(self._engines) > self.max_engines:
            self._engines.popitem(last=False)
            self.stats.engines_evicted += 1

    def discard(self, spec: JobSpec = None) -> None:
        """Account an engine that will not be returned (job failed)."""
        self.stats.engines_discarded += 1

    def clear(self) -> None:
        self._engines.clear()


def execute_job(spec: JobSpec, pool: WarmEnginePool = None,
                trace_path=None, metrics_path=None, live=None,
                frame_hook=None, tracer=None):
    """Run one job spec; returns ``(RunResult, info)``.

    ``info`` is a small dict — currently ``{"warm": bool}`` — describing
    how the job was served.  With a ``pool`` the engine comes from (and,
    on success, returns to) it; without one the engine is built and
    dropped, which is exactly the pre-service direct path.

    Seeding mirrors the harness worker discipline
    (:func:`repro.harness.parallel._run_cell`): NumPy's global generator
    is reseeded from the cell identity so a job's result is a pure
    function of its spec, independent of what the worker ran before.

    ``frame_hook(frames_rendered)`` — when given — is invoked at every
    frame boundary (the daemon's workers use it for deterministic fault
    injection); rendering is bit-identical either way.

    ``tracer`` attaches a caller-provided tracer (the daemon's workers
    pass a :class:`~repro.obs.distributed.ShardTracer` so engine frame
    spans land in the job's distributed trace); spans the caller opened
    on it stay open on success, and every open span is closed if the
    job dies mid-frame.  Without one, ``trace_path`` builds a local
    :class:`~repro.obs.tracer.TraceRecorder` as before.
    """
    np.random.seed(cell_seed(spec.cell()))
    metrics = None
    if trace_path is not None and tracer is None:
        from ..obs import TraceRecorder

        tracer = TraceRecorder()
    if metrics_path is not None:
        from ..obs import MetricsLog

        metrics = MetricsLog(metrics_path)

    if pool is not None:
        session, warm = pool.acquire(spec)
    else:
        session = RenderSession(
            spec.alias, technique=spec.technique, config=spec.config(),
            num_frames=spec.num_frames,
            exact_signatures=spec.exact_signatures,
        )
        warm = False
    session.attach_observability(tracer=tracer, metrics=metrics, live=live)

    done = False
    try:
        if frame_hook is not None:
            session.run_checkpointed(1, None, frame_hook)
        else:
            session.run()
        done = True
    finally:
        if tracer is not None and not done:
            tracer.close_open_spans()
        if tracer is not None and trace_path is not None:
            tracer.write(trace_path)
        if metrics is not None:
            metrics.close()
        if live:
            live.finish(ok=session.frames_rendered >= session.num_frames)
        if pool is not None and not done:
            pool.discard(spec)

    result = result_from_session(session)
    if pool is not None:
        pool.release(spec, session)
    return result, {"warm": warm}
