"""Service metrics: mergeable histograms, per-tenant counters, events.

The daemon's quantitative self-description.  A
:class:`TelemetryRecorder` observes every job lifecycle transition the
:class:`~repro.service.daemon.EngineDaemon` makes — admission, refusal,
dispatch, retry, terminal — and keeps:

* **latency histograms** (queue wait, execution wall, end-to-end, batch
  size) with fixed log-spaced buckets, so snapshots taken on different
  daemons or at different times *merge* by adding bucket counts —
  quantiles (p50/p95/p99) come from the merged buckets, which a
  mean-of-means could never give;
* **warm/cold accounting**, both the daemon's own view and the
  aggregated :class:`~repro.service.pool.PoolStats` of every worker
  (retired workers keep contributing — totals are lifetime-exact);
* **per-tenant counters** (submitted / completed / refused / retried /
  crashed) that reconcile exactly with the jobs submitted;
* a bounded **event ring** (admitted / started / retried / done /
  failed / refused) with monotone sequence numbers, which the server's
  ``watch`` verb streams incrementally.

The disabled implementation is the falsy base class — the same
contract as :class:`~repro.obs.tracer.Tracer` and
:class:`~repro.obs.live.LiveSink`: hot paths guard with
``if telemetry:`` and pay one truthiness check when it is off, which is
what keeps the daemon inside the ``BENCH_service.json`` guard.

Snapshots flush periodically (and finally, on shutdown) as JSONL and
into the content-addressed run registry under kind
``service-telemetry``.
"""

from __future__ import annotations

import collections
import json
import threading
import time

from ..errors import ReproError

__all__ = [
    "NULL_TELEMETRY",
    "LogHistogram",
    "ServiceTelemetry",
    "TelemetryRecorder",
    "fleet_execute_histogram",
    "merge_histograms",
]

#: Snapshot schema version stamped on every flush.
TELEMETRY_SCHEMA = "repro-service-telemetry-v1"

#: Tenant counter keys, in render order.
TENANT_COUNTERS = ("submitted", "completed", "refused", "retried",
                   "crashed")

#: Most lifecycle events the ring buffer retains for ``watch``.
EVENT_RING = 512


class LogHistogram:
    """Fixed log-spaced-bucket histogram with mergeable counts.

    Bucket upper edges are ``lo * factor**i`` up to (at least) ``hi``,
    plus an overflow bucket; a value lands in the first bucket whose
    edge is >= the value.  Because the bucket scheme is fixed at
    construction, two histograms with the same scheme merge by adding
    counts — the basis for cross-daemon / cross-window aggregation.
    Quantiles are bucket upper edges clamped to the observed min/max,
    so they are deterministic and never invent values outside the data.
    """

    def __init__(self, lo: float, hi: float, factor: float = 2.0) -> None:
        if not (lo > 0 and hi > lo and factor > 1):
            raise ReproError(
                f"bad histogram scheme lo={lo} hi={hi} factor={factor}"
            )
        self.lo, self.hi, self.factor = float(lo), float(hi), float(factor)
        edges = []
        edge = self.lo
        while edge < self.hi:
            edges.append(edge)
            edge *= self.factor
        edges.append(edge)             # first edge >= hi
        self.edges = edges             # counts[i] <= edges[i]; +overflow
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def scheme(self) -> tuple:
        return (self.lo, self.hi, self.factor)

    def observe(self, value: float) -> None:
        value = float(value)
        for index, edge in enumerate(self.edges):
            if value <= edge:
                break
        else:
            index = len(self.edges)    # overflow
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (bucket upper edge, clamped)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        value = self.edges[-1]
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank and bucket:
                value = (self.edges[index] if index < len(self.edges)
                         else self.max)
                break
        return max(self.min, min(value, self.max))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        if self.scheme() != other.scheme():
            raise ReproError(
                f"cannot merge histograms with schemes {self.scheme()} "
                f"and {other.scheme()}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            mine, theirs = getattr(self, bound), getattr(other, bound)
            if theirs is not None:
                picker = min if bound == "min" else max
                setattr(self, bound,
                        theirs if mine is None else picker(mine, theirs))
        return self

    def to_dict(self) -> dict:
        return {
            "scheme": {"lo": self.lo, "hi": self.hi,
                       "factor": self.factor},
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "counts": list(self.counts),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        scheme = data.get("scheme") or {}
        hist = cls(scheme.get("lo", 1e-4), scheme.get("hi", 60.0),
                   scheme.get("factor", 2.0))
        counts = data.get("counts") or []
        if len(counts) != len(hist.counts):
            raise ReproError(
                f"histogram counts length {len(counts)} does not match "
                f"scheme (expected {len(hist.counts)})"
            )
        hist.counts = [int(c) for c in counts]
        hist.count = int(data.get("count", sum(hist.counts)))
        hist.total = float(data.get("sum", 0.0))
        hist.min = data.get("min")
        hist.max = data.get("max")
        return hist


#: Bucket scheme every fleet worker uses for its per-point execute-wall
#: histogram.  Fixing the scheme here is what lets the coordinator (and
#: ``repro trend --fleet``) merge shards from any mix of workers/hosts.
FLEET_EXECUTE_SCHEME = (1e-3, 600.0, 2.0)


def fleet_execute_histogram() -> LogHistogram:
    """A fresh histogram on the shared fleet execute-wall scheme."""
    return LogHistogram(*FLEET_EXECUTE_SCHEME)


def merge_histograms(dicts) -> dict:
    """Merge serialized histograms (same scheme); returns ``to_dict``."""
    merged = None
    for data in dicts:
        hist = LogHistogram.from_dict(data)
        merged = hist if merged is None else merged.merge(hist)
    if merged is None:
        raise ReproError("no histograms to merge")
    return merged.to_dict()


class ServiceTelemetry:
    """No-op telemetry: the API surface, and the disabled default.

    Falsy, so the daemon guards with ``if self.telemetry:`` — disabled
    telemetry costs one truthiness check per lifecycle transition.
    """

    enabled = False

    def __bool__(self) -> bool:
        return self.enabled

    # Lifecycle observations ---------------------------------------------
    def job_admitted(self, job) -> None:
        """A job passed admission and entered the queue."""

    def job_withdrawn(self, job) -> None:
        """An admitted job was rolled back (atomic payload refusal)."""

    def job_refused(self, tenant: str, kind: str) -> None:
        """Admission refused a spec (``backpressure`` / ``tenant``)."""

    def job_dispatched(self, job, batch_size: int,
                       queue_wait_s: float) -> None:
        """A job left the queue for a worker."""

    def job_retried(self, job) -> None:
        """A failed attempt was requeued."""

    def job_finished(self, job, warm: bool) -> None:
        """A job reached ``done``."""

    def job_failed(self, job) -> None:
        """A job reached ``failed`` (retries exhausted)."""

    def worker_pool(self, worker_id: int, stats: dict) -> None:
        """A worker reported its lifetime :class:`PoolStats`."""

    # Reading ------------------------------------------------------------
    def last_seq(self) -> int:
        return 0

    def events_since(self, seq: int) -> list:
        return []

    def snapshot(self) -> dict:
        return {}

    # Flushing -----------------------------------------------------------
    def flush(self, path=None, registry=None,
              reason: str = "interval") -> None:
        """Write one snapshot record (JSONL + registry, best-effort)."""

    def maybe_flush(self, path=None, registry=None,
                    interval_s: float = 30.0) -> None:
        """Flush if at least ``interval_s`` passed since the last one."""


#: Shared ready-made disabled telemetry for non-None defaults.
NULL_TELEMETRY = ServiceTelemetry()


class TelemetryRecorder(ServiceTelemetry):
    """Recording telemetry: histograms, tenant counters, event ring."""

    enabled = True

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.histograms = {
            "queue_wait_s": LogHistogram(1e-4, 60.0),
            "execute_s": LogHistogram(1e-3, 600.0),
            "e2e_s": LogHistogram(1e-3, 600.0),
            "batch_size": LogHistogram(1.0, 64.0),
        }
        self.warm_jobs = 0
        self.cold_jobs = 0
        self.tenants: dict = {}
        self._pools: dict = {}         # worker_id -> last PoolStats dict
        self._events: collections.deque = collections.deque(
            maxlen=EVENT_RING,
        )
        self._seq = 0
        # Gate periodic flushing from creation time, so the first
        # interval snapshot lands one interval after startup instead
        # of an empty one landing immediately.
        self._last_flush = time.monotonic()

    # Internals ----------------------------------------------------------
    def _tenant(self, tenant: str) -> dict:
        counters = self.tenants.get(tenant)
        if counters is None:
            counters = {key: 0 for key in TENANT_COUNTERS}
            self.tenants[tenant] = counters
        return counters

    def _push_event(self, event: str, job=None, **extra) -> None:
        self._seq += 1
        record = {"seq": self._seq, "ts": self._clock(), "event": event}
        if job is not None:
            record.update(
                job_id=job.job_id, tenant=job.spec.tenant,
                cell=job.spec.label,
            )
        record.update(extra)
        self._events.append(record)

    # Lifecycle observations ---------------------------------------------
    def job_admitted(self, job) -> None:
        with self._lock:
            self._tenant(job.spec.tenant)["submitted"] += 1
            self._push_event("admitted", job)

    def job_withdrawn(self, job) -> None:
        with self._lock:
            self._tenant(job.spec.tenant)["submitted"] -= 1
            self._push_event("withdrawn", job)

    def job_refused(self, tenant: str, kind: str) -> None:
        with self._lock:
            self._tenant(tenant)["refused"] += 1
            self._push_event("refused", tenant=tenant, kind=kind)

    def job_dispatched(self, job, batch_size: int,
                       queue_wait_s: float) -> None:
        with self._lock:
            self.histograms["queue_wait_s"].observe(max(queue_wait_s, 0.0))
            self.histograms["batch_size"].observe(batch_size)
            self._push_event("started", job, worker=job.worker,
                             batch=batch_size, attempt=job.attempts)

    def job_retried(self, job) -> None:
        with self._lock:
            self._tenant(job.spec.tenant)["retried"] += 1
            self._push_event("retried", job, attempt=job.attempts)

    def job_finished(self, job, warm: bool) -> None:
        with self._lock:
            if warm:
                self.warm_jobs += 1
            else:
                self.cold_jobs += 1
            if job.started_at and job.finished_at:
                self.histograms["execute_s"].observe(
                    max(job.finished_at - job.started_at, 0.0)
                )
            if job.finished_at:
                self.histograms["e2e_s"].observe(
                    max(job.finished_at - job.submitted_at, 0.0)
                )
            self._tenant(job.spec.tenant)["completed"] += 1
            self._push_event("done", job, warm=bool(warm),
                             run_id=job.run_id)

    def job_failed(self, job) -> None:
        with self._lock:
            self._tenant(job.spec.tenant)["crashed"] += 1
            self._push_event("failed", job, error=job.error)

    def worker_pool(self, worker_id: int, stats: dict) -> None:
        with self._lock:
            self._pools[int(worker_id)] = dict(stats)

    # Reading ------------------------------------------------------------
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def events_since(self, seq: int) -> list:
        with self._lock:
            return [dict(event) for event in self._events
                    if event["seq"] > seq]

    def pool_totals(self) -> dict:
        """Summed lifetime pool counters across every worker ever."""
        totals = {"requests": 0, "warm_hits": 0, "engines_built": 0,
                  "engines_evicted": 0, "engines_discarded": 0}
        for stats in self._pools.values():
            for key in totals:
                totals[key] += int(stats.get(key, 0))
        return totals

    def snapshot(self) -> dict:
        with self._lock:
            warm = self.warm_jobs
            cold = self.cold_jobs
            served = warm + cold
            totals = self.pool_totals()
            requests = totals["requests"]
            return {
                "schema": TELEMETRY_SCHEMA,
                "started_at": self.started_at,
                "uptime_s": self._clock() - self.started_at,
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self.histograms.items()
                },
                "warm": {
                    "warm_jobs": warm,
                    "cold_jobs": cold,
                    "rate": warm / served if served else 0.0,
                },
                "pool": {
                    "totals": totals,
                    "warm_hit_rate": (totals["warm_hits"] / requests
                                      if requests else 0.0),
                    "workers": {
                        str(worker_id): dict(stats)
                        for worker_id, stats in sorted(self._pools.items())
                    },
                },
                "tenants": {
                    tenant: dict(counters)
                    for tenant, counters in sorted(self.tenants.items())
                },
                "last_seq": self._seq,
            }

    # Flushing -----------------------------------------------------------
    def flush(self, path=None, registry=None,
              reason: str = "interval") -> None:
        self._last_flush = time.monotonic()
        snapshot = self.snapshot()
        record = {
            "kind": "service-telemetry",
            "ts": self._clock(),
            "reason": reason,
            "snapshot": snapshot,
        }
        if path is not None:
            try:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            except OSError:
                pass           # telemetry never takes the daemon down
        if registry is not None:
            try:
                registry.record({
                    "kind": "service-telemetry",
                    "schema": TELEMETRY_SCHEMA,
                    "reason": reason,
                    "created_at": record["ts"],
                    "snapshot": snapshot,
                })
            except (OSError, ReproError) as exc:
                note = getattr(registry, "note_write_error", None)
                if note is not None:
                    note(exc)

    def maybe_flush(self, path=None, registry=None,
                    interval_s: float = 30.0) -> None:
        if path is None and registry is None:
            return
        if time.monotonic() - self._last_flush < interval_s:
            return
        self.flush(path=path, registry=registry, reason="interval")
