"""Client side of the render service.

:class:`ServiceClient` is the synchronous socket client behind
``repro submit`` / ``repro status``: it speaks the newline-JSON
protocol of :mod:`repro.service.server` and rebuilds typed refusals
(``kind`` → :class:`~repro.errors.BackpressureError` /
:class:`~repro.errors.TenantError` / ...) so callers handle a remote
"queue full" exactly like a local one.

:func:`run_job_inprocess` is the no-daemon mode: the CLI's plain
``repro run`` routes through it, executing the same
:func:`~repro.service.pool.execute_job` path the daemon's workers run —
one code path, so direct runs and service runs cannot drift apart.
"""

from __future__ import annotations

import json
import socket

from ..errors import (
    AdmissionError,
    BackpressureError,
    ServiceError,
    TenantError,
)
from .jobs import JobSpec
from .pool import WarmEnginePool, execute_job

__all__ = ["ServiceClient", "run_job_inprocess"]

#: Wire ``kind`` back to the exception the daemon raised.
_ERROR_KINDS = {
    "backpressure": BackpressureError,
    "tenant": TenantError,
    "admission": AdmissionError,
}


class ServiceClient:
    """One synchronous connection to a ``repro serve`` daemon."""

    def __init__(self, socket_path, timeout: float = 60.0) -> None:
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(str(socket_path))
        except OSError as exc:
            self._sock.close()
            raise ServiceError(
                f"cannot reach service socket {socket_path}: {exc} "
                "(is `repro serve` running?)"
            ) from None
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, **fields) -> dict:
        """One request/response round trip; raises typed refusals."""
        payload = {"op": op}
        payload.update(fields)
        try:
            self._file.write(json.dumps(payload).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServiceError(
                f"service connection lost during {op!r}: {exc}"
            ) from None
        if not line:
            raise ServiceError(
                f"service closed the connection during {op!r}"
            )
        response = json.loads(line)
        if not response.get("ok"):
            error_cls = _ERROR_KINDS.get(
                response.get("kind"), ServiceError
            )
            raise error_cls(response.get("error", "service error"))
        return response

    # Ops ----------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, payload: dict, trace_dir=None) -> list:
        """Submit one payload; returns the admitted jobs' projections.

        With ``trace_dir`` the request is *traced*: a fresh
        :class:`~repro.obs.distributed.TraceContext` is minted, embedded
        in the payload's ``trace`` field (the daemon and its workers
        nest their spans under it), and the round trip itself is
        recorded as a ``submit`` span in a client-side shard —
        :func:`~repro.obs.distributed.merge_shards` later assembles the
        client / daemon / worker shards into one Chrome trace.
        """
        if trace_dir is None:
            return self.request("submit", job=payload)["jobs"]
        from ..obs.distributed import TraceShard, mint_trace

        context = mint_trace()
        payload = dict(payload)
        payload["trace"] = context.to_dict()
        shard = TraceShard(trace_dir, "client")
        shard.name_thread(0, "submit")
        shard.begin(
            "submit", tid=0, span_id=context.span_id,
            trace_id=context.trace_id,
            tenant=payload.get("tenant"),
            kind=payload.get("kind", "render"),
        )
        try:
            jobs = self.request("submit", job=payload)["jobs"]
            shard.end("submit", jobs=len(jobs))
            return jobs
        except ServiceError as exc:
            shard.instant("refused", tid=0, error=str(exc),
                          trace_id=context.trace_id)
            shard.end("submit", jobs=0)
            raise
        finally:
            shard.close()

    def wait(self, job_id: str, timeout: float = None) -> dict:
        return self.request("wait", job_id=job_id, timeout=timeout)["job"]

    def status(self) -> dict:
        return self.request("status")["status"]

    def stats(self) -> dict:
        """The daemon's telemetry snapshot (``repro stats`` renders
        it): queue depth, latency percentiles, warm-hit rates and
        per-tenant counters."""
        return self.request("stats")["stats"]

    def watch(self, interval: float = 1.0, since: int = None,
              stats: bool = True):
        """Stream the daemon live: yields ``{"kind": "event", ...}``
        job lifecycle events and ``{"kind": "stats", ...}`` frames.

        A generator over one long-lived connection (the socket's
        read timeout still applies between lines).  ``since`` replays
        buffered events newer than that sequence number; ``stats=False``
        yields events only.  The stream ends when the server stops;
        closing the client (or abandoning the generator) ends it
        client-side.
        """
        request = {"op": "watch", "interval": interval, "stats": stats}
        if since is not None:
            request["since"] = since
        try:
            self._file.write(json.dumps(request).encode() + b"\n")
            self._file.flush()
            ack = self._file.readline()
        except OSError as exc:
            raise ServiceError(
                f"service connection lost during 'watch': {exc}"
            ) from None
        if not ack:
            raise ServiceError("service closed the connection on watch")
        first = json.loads(ack)
        if not first.get("ok"):
            error_cls = _ERROR_KINDS.get(first.get("kind"), ServiceError)
            raise error_cls(first.get("error", "service error"))
        while True:
            try:
                line = self._file.readline()
            except OSError:
                return
            if not line:
                return
            response = json.loads(line)
            if not response.get("ok"):
                return
            yield response

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # Lifecycle ----------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def run_job_inprocess(spec: JobSpec, pool: WarmEnginePool = None,
                      trace_path=None, metrics_path=None, live=None):
    """Run one job through a transient in-process service.

    The CLI's default ``repro run`` path: validates the spec, executes
    it via the exact worker code path (:func:`execute_job` — including
    the per-cell reseed), and returns the :class:`RunResult`.  With a
    ``pool`` the engine stays warm for the caller's next job (the warm
    benchmark and batched CLI futures use this); without one the
    behaviour — and the output, bit for bit — matches the pre-service
    direct :func:`~repro.harness.runner.run_workload` call.
    """
    result, _info = execute_job(
        spec.validated(), pool=pool,
        trace_path=trace_path, metrics_path=metrics_path, live=live,
    )
    return result
