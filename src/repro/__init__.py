"""Rendering Elimination: early discard of redundant tiles in a
tile-based-rendering GPU — a full reproduction of Anglada et al.,
HPCA 2019 (arXiv:1807.09449).

Layer map
---------

* :mod:`repro.hashing`    — CRC32 substrate: bit-serial/table reference
  implementations, the incremental combination identity (Algorithm 1),
  and cycle-counted models of the Compute/Accumulate CRC units.
* :mod:`repro.pipeline`   — the baseline TBR GPU of Section II: command
  processing, vertex shading, primitive assembly, tiling, per-tile
  rasterization, early-Z, fragment shading, blending, double-buffered
  frame buffer, with cache and DRAM simulation throughout.
* :mod:`repro.core`       — the paper's contribution: the Signature
  Unit, the Signature Buffer, and the RenderingElimination technique.
* :mod:`repro.techniques` — prior art for comparison: Transaction
  Elimination and PFR-aided Fragment Memoization, plus the technique
  plug-in interface.
* :mod:`repro.workloads`  — the ten Table II benchmarks as synthetic,
  deterministic scene generators, plus trace record/replay.
* :mod:`repro.timing` / :mod:`repro.power` — activity-based cycle and
  energy models (the Teapot/McPAT/DRAMSim2 substitutes).
* :mod:`repro.harness`    — experiment runners and one regeneration
  function per paper table and figure.

Quick start
-----------

>>> from repro import GpuConfig, Gpu, RenderingElimination
>>> config = GpuConfig.small()
>>> gpu = Gpu(config, RenderingElimination(config))
>>> # feed CommandStreams to gpu.render_frame(...) — see examples/.
"""

from .config import CacheConfig, GpuConfig, QueueConfig
from .core import RenderingElimination, SignatureBuffer, SignatureUnit
from .errors import (
    ConfigError,
    HashingError,
    PipelineError,
    ReproError,
    ShaderError,
    TraceError,
)
from .pipeline import CommandStream, FrameStats, Gpu
from .power import EnergyConstants, EnergyModel
from .techniques import (
    CombinedElimination,
    FragmentMemoization,
    Technique,
    TransactionElimination,
)
from .timing import TimingModel

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "GpuConfig",
    "QueueConfig",
    "RenderingElimination",
    "SignatureBuffer",
    "SignatureUnit",
    "ConfigError",
    "HashingError",
    "PipelineError",
    "ReproError",
    "ShaderError",
    "TraceError",
    "CommandStream",
    "FrameStats",
    "Gpu",
    "EnergyConstants",
    "EnergyModel",
    "CombinedElimination",
    "FragmentMemoization",
    "Technique",
    "TransactionElimination",
    "TimingModel",
    "__version__",
]
