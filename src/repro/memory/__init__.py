"""Memory hierarchy substrate: caches, DRAM model, traffic accounting."""

from .cache import Cache, CacheStats, line_addresses
from .dram import Dram, DramStats, LATENCY_OVERLAP, latency_overlap
from .traffic import ALL_STREAMS, RASTER_STREAMS, TrafficCounters

__all__ = [
    "Cache",
    "CacheStats",
    "line_addresses",
    "Dram",
    "DramStats",
    "LATENCY_OVERLAP",
    "latency_overlap",
    "ALL_STREAMS",
    "RASTER_STREAMS",
    "TrafficCounters",
]
