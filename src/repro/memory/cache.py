"""Set-associative cache simulation.

Models the on-chip caches of Table I (vertex, texture, tile, L2) with LRU
replacement and write-back/write-allocate behaviour.  The functional
pipeline reduces its per-batch address streams to line granularity (see
:func:`line_addresses`) and drives them through these caches; misses feed
the DRAM model and the traffic counters.
"""

from __future__ import annotations

import collections
import dataclasses

import numpy as np

from ..config import CacheConfig


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0


class Cache:
    """One set-associative, LRU, write-back cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Hot-path constants, resolved once.
        self.line_bytes = config.line_bytes
        self.num_sets = config.num_sets
        self._ways_limit = config.ways
        # set index -> OrderedDict mapping tag -> dirty flag; ordering is
        # recency (last = most recently used).
        self._sets = collections.defaultdict(collections.OrderedDict)

    def _locate(self, line_address: int) -> tuple:
        set_index = line_address % self.num_sets
        tag = line_address // self.num_sets
        return set_index, tag

    def access(self, line_address: int, write: bool = False) -> bool:
        """Touch one cache line; returns True on hit.

        A miss allocates the line, evicting the LRU way; evicting a dirty
        line counts a writeback (which the caller should forward to DRAM).
        """
        num_sets = self.num_sets
        ways = self._sets[line_address % num_sets]
        tag = line_address // num_sets
        stats = self.stats
        stats.accesses += 1
        if tag in ways:
            stats.hits += 1
            ways.move_to_end(tag)
            if write and not ways[tag]:
                ways[tag] = True
            return True
        stats.misses += 1
        if len(ways) >= self._ways_limit:
            _, evicted_dirty = ways.popitem(last=False)
            if evicted_dirty:
                stats.writebacks += 1
        ways[tag] = write
        return False

    def access_many(self, line_addrs, write: bool = False) -> int:
        """Access a sequence of line addresses; returns the miss count."""
        misses = 0
        for addr in line_addrs:
            if not self.access(int(addr), write):
                misses += 1
        return misses

    def access_run(self, line_addrs, write: bool = False) -> list:
        """Access a sequence of line addresses in order; returns the list
        of addresses that missed, in access order.

        Behaviourally identical to calling :meth:`access` per address
        (same LRU state transitions, same stats), but with the per-call
        overhead amortized — this is the form the batched raster path
        drives cache line streams through.
        """
        sets = self._sets
        num_sets = self.num_sets
        ways_limit = self._ways_limit
        accesses = hits = writebacks = 0
        missing = []
        for addr in line_addrs:
            addr = int(addr)
            ways = sets[addr % num_sets]
            tag = addr // num_sets
            accesses += 1
            if tag in ways:
                hits += 1
                ways.move_to_end(tag)
                if write and not ways[tag]:
                    ways[tag] = True
                continue
            missing.append(addr)
            if len(ways) >= ways_limit:
                _, evicted_dirty = ways.popitem(last=False)
                if evicted_dirty:
                    writebacks += 1
            ways[tag] = write
        stats = self.stats
        stats.accesses += accesses
        stats.hits += hits
        stats.misses += accesses - hits
        stats.writebacks += writebacks
        return missing

    def flush(self) -> int:
        """Drop all contents, counting dirty lines as writebacks."""
        writebacks = 0
        for ways in self._sets.values():
            writebacks += sum(1 for dirty in ways.values() if dirty)
        self._sets.clear()
        self.stats.writebacks += writebacks
        return writebacks

    def contents_size(self) -> int:
        return sum(len(ways) for ways in self._sets.values())

    def state_dict(self) -> dict:
        """Cumulative stats only.  Contents are deliberately dropped:
        every cache is flushed at the next frame boundary, so a restored
        run re-derives identical per-frame hit/miss behaviour from an
        empty cache (only the flush's writeback count would differ, and
        writebacks start from the checkpointed total here)."""
        return {"stats": dataclasses.asdict(self.stats)}

    def load_state_dict(self, state: dict) -> None:
        self._sets.clear()
        for name, value in state["stats"].items():
            setattr(self.stats, name, int(value))


def line_addresses(byte_addresses: np.ndarray, line_bytes: int) -> np.ndarray:
    """Reduce a byte-address stream to its ordered unique line addresses.

    Consecutive accesses to the same line are collapsed (they would hit
    trivially); the caller keeps the full access count for energy
    accounting and feeds only this reduced stream through the cache
    model.  ``np.unique`` also sorts, which loses temporal order, so this
    uses a dedup that preserves first-occurrence order.
    """
    lines = np.asarray(byte_addresses, dtype=np.int64) // line_bytes
    if lines.size == 0:
        return lines
    # dict.fromkeys deduplicates at C speed while preserving
    # first-occurrence order, which is exactly the temporal order the
    # cache model needs.
    unique = dict.fromkeys(lines.tolist())
    return np.fromiter(unique, dtype=np.int64, count=len(unique))


def line_address_list(byte_addresses: np.ndarray, line_bytes: int) -> list:
    """:func:`line_addresses` returning a plain list — same ordered
    dedup, no ndarray round-trip, for callers that feed
    :meth:`Cache.access_run` directly."""
    lines = np.asarray(byte_addresses, dtype=np.int64) // line_bytes
    return list(dict.fromkeys(lines.tolist()))
