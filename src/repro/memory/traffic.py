"""Main-memory traffic accounting, split by stream.

Figure 15b of the paper decomposes the Raster Pipeline's DRAM traffic
into Parameter-Buffer primitive reads, texel fetches and Color-Buffer
flushes; the geometry side adds vertex fetches and Parameter-Buffer
writes.  :class:`TrafficCounters` tracks bytes per named stream so the
harness can regenerate that breakdown exactly.
"""

from __future__ import annotations

import collections

#: Streams reported by Fig. 15b (raster side).
RASTER_STREAMS = ("primitives", "texels", "colors")

#: All streams the simulator distinguishes.
ALL_STREAMS = RASTER_STREAMS + ("vertices", "parameter_write", "other")


class TrafficCounters:
    """Byte counters per DRAM traffic stream."""

    def __init__(self) -> None:
        self._bytes = collections.Counter()

    def add(self, stream: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("traffic bytes must be non-negative")
        self._bytes[stream] += nbytes

    def bytes(self, stream: str) -> int:
        return self._bytes[stream]

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    @property
    def raster_bytes(self) -> int:
        return sum(self._bytes[s] for s in RASTER_STREAMS)

    def as_dict(self) -> dict:
        return {stream: self._bytes[stream] for stream in ALL_STREAMS}

    def merge(self, other: "TrafficCounters") -> None:
        self._bytes.update(other._bytes)

    def reset(self) -> None:
        self._bytes.clear()

    def state_dict(self) -> dict:
        return dict(self._bytes)

    def load_state_dict(self, state: dict) -> None:
        self._bytes = collections.Counter(
            {stream: int(nbytes) for stream, nbytes in state.items()}
        )
