"""Main-memory model: dual-channel LPDDR3-like bandwidth and latency.

Substitutes for DRAMSim2 in the paper's toolchain.  Each transaction pays
a fixed access latency (drawn deterministically between the Table I
bounds according to recent channel pressure) plus a transfer time at the
configured bytes/cycle.  The model reports *stall* cycles assuming the
pipeline overlaps a fraction of the latency with independent work, which
is what the activity-based timing model needs.
"""

from __future__ import annotations

import dataclasses

from ..config import GpuConfig
from .traffic import TrafficCounters


def latency_overlap(config: GpuConfig) -> float:
    """Fraction of DRAM access latency hidden by pipelining.

    Latency hiding comes from the in-flight work the inter-stage queues
    hold (Table I): a deeper Fragment Queue keeps more independent
    fragments available while a miss is outstanding.  The model maps
    the 64-entry baseline to 90% hiding and scales smoothly: a 16-entry
    queue hides 75%, a 4-entry queue only 60%.
    """
    entries = config.fragment_queue.entries
    return 1.0 - 8.0 / (entries + 16.0)


#: Overlap of the Table I baseline (64-entry fragment queue).
LATENCY_OVERLAP = 0.9


@dataclasses.dataclass
class DramStats:
    transactions: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    transfer_cycles: int = 0
    stall_cycles: int = 0

    def reset(self) -> None:
        self.transactions = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.transfer_cycles = 0
        self.stall_cycles = 0


class Dram:
    """Byte-stream main memory with a simple contention-aware latency."""

    def __init__(self, config: GpuConfig, traffic: TrafficCounters = None) -> None:
        self.config = config
        self.traffic = traffic if traffic is not None else TrafficCounters()
        self.stats = DramStats()
        self.latency_overlap = latency_overlap(config)
        self._pressure = 0.0  # exponentially-decayed recent transaction load

    def _latency(self) -> float:
        """Deterministic latency between the configured min and max,
        rising with recent pressure (a stand-in for bank conflicts and
        queueing in DRAMSim2)."""
        low = self.config.dram_latency_min_cycles
        high = self.config.dram_latency_max_cycles
        load = min(1.0, self._pressure / 32.0)
        return low + (high - low) * load

    def _transact(self, nbytes: int, stream: str, is_write: bool) -> int:
        if nbytes < 0:
            raise ValueError("transaction size must be non-negative")
        if nbytes == 0:
            return 0
        latency = self._latency()
        transfer = -(-nbytes // self.config.dram_bytes_per_cycle)  # ceil
        self._pressure = self._pressure * 0.95 + 1.0
        self.stats.transactions += 1
        self.stats.transfer_cycles += transfer
        stall = int(latency * (1.0 - self.latency_overlap)) + transfer
        self.stats.stall_cycles += stall
        if is_write:
            self.stats.write_bytes += nbytes
        else:
            self.stats.read_bytes += nbytes
        self.traffic.add(stream, nbytes)
        return stall

    def _transact_run(self, count: int, nbytes: int, stream: str,
                      is_write: bool) -> int:
        """``count`` back-to-back transactions of ``nbytes`` each.

        Bit-identical to ``count`` sequential :meth:`_transact` calls —
        the pressure recurrence is iterated, not closed-form, so the
        float sequence (and every derived latency) matches exactly.
        """
        if nbytes < 0:
            raise ValueError("transaction size must be non-negative")
        if count <= 0 or nbytes == 0:
            return 0
        low = self.config.dram_latency_min_cycles
        high = self.config.dram_latency_max_cycles
        span = high - low
        hidden = 1.0 - self.latency_overlap
        transfer = -(-nbytes // self.config.dram_bytes_per_cycle)  # ceil
        pressure = self._pressure
        total_stall = 0
        for _ in range(count):
            load = pressure / 32.0
            if load > 1.0:
                load = 1.0
            total_stall += int((low + span * load) * hidden) + transfer
            pressure = pressure * 0.95 + 1.0
        self._pressure = pressure
        stats = self.stats
        stats.transactions += count
        stats.transfer_cycles += transfer * count
        stats.stall_cycles += total_stall
        if is_write:
            stats.write_bytes += nbytes * count
        else:
            stats.read_bytes += nbytes * count
        self.traffic.add(stream, nbytes * count)
        return total_stall

    def read_run(self, count: int, nbytes: int, stream: str) -> int:
        """``count`` reads of ``nbytes`` each; returns total stall cycles."""
        return self._transact_run(count, nbytes, stream, is_write=False)

    def write_run(self, count: int, nbytes: int, stream: str) -> int:
        """``count`` writes of ``nbytes`` each; returns total stall cycles."""
        return self._transact_run(count, nbytes, stream, is_write=True)

    def read(self, nbytes: int, stream: str) -> int:
        """Read ``nbytes``; returns the pipeline stall cycles charged."""
        return self._transact(nbytes, stream, is_write=False)

    def write(self, nbytes: int, stream: str) -> int:
        """Write ``nbytes``; returns the pipeline stall cycles charged."""
        return self._transact(nbytes, stream, is_write=True)

    @property
    def total_bytes(self) -> int:
        return self.stats.read_bytes + self.stats.write_bytes

    def state_dict(self) -> dict:
        """The pressure recurrence crosses frame boundaries (it decays,
        never resets), so a restore must carry it; the cumulative stats
        come along so totals survive a checkpoint round trip."""
        return {
            "pressure": self._pressure,
            "stats": dataclasses.asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        self._pressure = float(state["pressure"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
