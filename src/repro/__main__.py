"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``experiment <id>`` — regenerate one paper figure/table and print its
  text rendering (ids: fig01, fig02, fig14a, fig14b, fig15a, fig15b,
  fig16, fig17a, fig17b, re_overheads, hash_quality, table1).
* ``run <game>``     — run one benchmark under one technique, printing
  per-frame skip/cycle/energy summaries.
* ``sweep <game>``   — run one benchmark across a grid of GpuConfig
  values (``--set tile_size=8,16,32``) and tabulate a metric.
* ``report``         — regenerate every figure into a markdown report,
  or, given a metrics log (``report run.metrics.jsonl``), print the
  per-stage cycle shares, skip-rate curve and hottest tiles of that run.
* ``runs``           — list the run registry (every recorded run/sweep
  point/bench profile, newest last; filter with ``--kind``/``--game``).
* ``diff <A> <B>``   — compare two registered runs: per-stage cycle
  deltas, skip-rate and traffic deltas, counter diffs and per-tile CRC
  divergence.  A/B are run ids (or unique prefixes) from ``runs``.
* ``trend``          — render the performance trajectory over the
  registry's bench profiles; ``--check`` exits non-zero on regression
  (``--append BENCH.json`` records a profile first).
* ``list``           — list the available games and experiments.
* ``serve``          — run the warm engine-pool daemon behind a Unix
  socket: persistent workers keep constructed engines resident, batch
  config-compatible jobs, refuse overload with typed backpressure and
  record each job under its tenant's registry namespace.
  ``--trace-dir`` shards every job's lifecycle spans for distributed
  tracing; ``--stats-log`` snapshots the telemetry periodically.
* ``submit``         — send a render/sweep/experiment job to a running
  daemon (``--wait`` blocks for the summaries); ``--trace-dir`` mints
  a trace context carried through daemon and workers.
* ``status``         — a daemon's queue/worker/job table over the
  socket, or — daemon gone — its last ``live.json`` heartbeat.
* ``stats``          — one-shot service telemetry: queue depth, latency
  percentiles (queue wait / execute / end-to-end), warm-hit rates and
  per-tenant counters (``--json`` for the raw snapshot).
* ``top``            — the same table, live: streams the daemon's
  ``watch`` feed and redraws every ``--interval`` seconds
  (``--events`` prints job lifecycle events instead).
* ``trace``          — merge a ``--trace-dir``'s per-process shards
  into one Perfetto-loadable Chrome trace and validate it.
* ``workloads``      — the declarative workload DSL: ``list`` the
  discovered scene files, ``validate`` documents (line-precise typed
  errors), ``add`` a file to ``./workloads``, ``show`` a canonical
  defaults-filled document.  ``run``'s ``--workload-file`` runs a scene
  file directly; ``--native`` applies its native defaults.
* ``goldens``        — ``record``/``check`` the registry-pinned golden
  conformance baselines (per-tile CRC matrices + RE skip counts) under
  ``results/goldens``; ``check`` exits non-zero on any output drift.
* ``fleet``          — distributed sweeps over a shared registry
  directory: ``launch`` expands a grid into a fleet spec and spawns N
  worker processes that idempotently claim points (atomic lease
  records, heartbeats, crash-safe requeue); ``work`` runs one worker
  (how another host joins); ``status``/``watch`` merge heartbeats and
  claims into a live claim map with stall detection.  ``trend
  --fleet`` and ``diff --fleet`` read the recorded fleets back.

Plain ``run`` executes through a *transient in-process service* (the
same code path the daemon's workers run; ``--direct`` bypasses it) —
outputs are bit-identical either way, down to per-tile CRCs.

Cross-run registry: ``run`` and ``sweep`` record a manifest of every
completed run (what ran, git revision, headline numbers, artifact
paths) into a content-addressed registry — ``results/registry/`` by
default, overridable with ``--registry DIR`` or ``REPRO_REGISTRY``;
``--no-registry`` opts out.  ``runs``/``diff``/``trend`` read it back.

Observability flags (``run`` and ``sweep``; see :mod:`repro.obs`):
``--trace out.json`` records a Chrome trace-event timeline (load it in
Perfetto or ``chrome://tracing``), ``--metrics out.jsonl`` samples every
counter at each frame boundary into a per-frame metrics log that
``report`` analyses offline.

Global flags: ``--jobs N`` fans independent (workload, technique) cells
across N worker processes (see :mod:`repro.harness.parallel`);
``--profile`` records per-stage simulator wall-clock and event rates and
writes them to ``BENCH_pipeline.json``.

Supervision flags (any of them routes the run through the
fault-tolerant orchestrator in :mod:`repro.harness.supervisor`):
``--timeout`` / ``--retries`` / ``--checkpoint-stride`` set the policy,
``--journal`` appends every attempt/retry/timeout/recovery to a JSONL
run journal, and ``--inject-fault alias/technique:frame:kind[:times]``
(or the ``REPRO_FAULT_SPEC`` environment variable) deterministically
injects a crash/error/hang so the recovery paths can be exercised.
"""

from __future__ import annotations

import argparse
import os
import sys

from .config import GpuConfig
from .errors import ServiceError
from .harness.experiments import (
    EXPERIMENT_TECHNIQUES,
    EXPERIMENTS,
    RunCache,
    hash_quality,
    table1_parameters,
)
from .harness.runner import TECHNIQUES, run_workload
from .workloads.games import (
    BENCHMARKS,
    PSEUDO_WORKLOADS,
    all_workload_aliases,
    unknown_workload_message,
)


def _config_from(args) -> GpuConfig:
    presets = {
        "small": GpuConfig.small,
        "benchmark": GpuConfig.benchmark,
        "mali450": GpuConfig.mali450,
    }
    config = presets[args.scale]()
    overrides = dict(getattr(args, "native_overrides", None) or {})
    if getattr(args, "occlusion_culling", False):
        overrides["occlusion_culling"] = True
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    return config


def _supervision_requested(args) -> bool:
    return bool(
        args.timeout or args.retries is not None or args.journal
        or args.inject_fault or args.checkpoint_stride
    )


def _policy_from(args):
    from .harness.supervisor import SupervisorPolicy

    return SupervisorPolicy(
        timeout_s=args.timeout,
        max_retries=args.retries if args.retries is not None else 2,
        checkpoint_stride=args.checkpoint_stride or 0,
    )


def _registry_root(args) -> str:
    from .obs.store import REGISTRY_ENV_VAR

    return (args.registry or os.environ.get(REGISTRY_ENV_VAR)
            or os.path.join("results", "registry"))


def _registry_from(args):
    """The registry this invocation records into, or ``None`` (opt-out).

    With ``--tenant`` the run lands in that tenant's namespace
    (``<root>/<tenant>/``), the same layout the service daemon records
    under — so CLI runs and service jobs of one tenant share a history.
    """
    if args.no_registry:
        return None
    from .obs.store import RunRegistry

    registry = RunRegistry(_registry_root(args))
    tenant = getattr(args, "tenant", None)
    if tenant:
        registry = registry.for_tenant(tenant)
    return registry


def _reader_registry(args):
    """The registry a read-only subcommand (runs/diff/trend) queries."""
    from .obs.store import RunRegistry

    return RunRegistry(_registry_root(args))


def _live_from(args):
    """A :class:`LiveAggregator` when ``--live`` was given, else ``None``."""
    if not getattr(args, "live", None):
        return None
    from .obs.live import LiveAggregator

    # Flag stalls well inside the supervisor's timeout, so a wedged
    # worker is visible in the status table before the kill fires.
    stall_after_s = 5.0
    if args.timeout:
        stall_after_s = min(stall_after_s, args.timeout / 2.0)
    return LiveAggregator(path=args.live, stream=sys.stderr,
                          stall_after_s=stall_after_s)


def _run_artifacts(args) -> dict:
    return {
        "trace": args.trace,
        "metrics": args.metrics,
        "manifest": getattr(args, "manifest", None),
        "journal": args.journal,
        "live": getattr(args, "live", None),
    }


def _record_run(registry, result, kind: str, args, extra: dict = None):
    """Best-effort registry append; a broken registry never fails a run."""
    if registry is None:
        return None
    from .errors import ReproError

    try:
        return registry.record_run(
            result, kind=kind, artifacts=_run_artifacts(args), extra=extra,
        )
    except (OSError, ReproError) as exc:
        if isinstance(exc, ReproError):
            # OSError is already routed through note_write_error inside
            # RunRegistry.record; manifest-shape failures land here.
            registry.note_write_error(exc)
        print(f"  (registry append failed: {exc})", file=sys.stderr)
        return None


def _cmd_list(_args) -> int:
    print("games (Table II):")
    for info in BENCHMARKS:
        print(f"  {info.alias:4s} {info.name} ({info.genre}, {info.type})")
    print("pseudo-workloads:", ", ".join(PSEUDO_WORKLOADS))
    from .workloads.dsl import registry as dsl_registry

    dsl = dsl_registry.discover()
    if dsl:
        print("DSL workloads (see `python -m repro workloads list`):",
              ", ".join(sorted(dsl)))
    print("experiments:", ", ".join(sorted(EXPERIMENTS)),
          "+ hash_quality, table1")
    print("techniques:", ", ".join(TECHNIQUES))
    return 0


def _cmd_experiment(args) -> int:
    if args.id == "table1":
        print(table1_parameters().table())
        return 0
    if args.id == "hash_quality":
        result = hash_quality(
            _config_from(args), num_frames=min(args.frames, 12),
            aliases=("ccs", "ctr", "mst", "tib"),
        )
        print(result.title + "\n" + result.table())
        return 0
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; see `python -m repro list`",
              file=sys.stderr)
        return 2
    cache = RunCache(_config_from(args), num_frames=args.frames)
    if args.jobs > 1 or _supervision_requested(args):
        from .errors import SupervisionError

        supervised = _supervision_requested(args)
        try:
            cache.prefetch(
                EXPERIMENT_TECHNIQUES.get(args.id, ("baseline", "re")),
                processes=args.jobs,
                policy=_policy_from(args) if supervised else None,
                journal_path=args.journal,
                fault_spec=args.inject_fault,
            )
        except SupervisionError as exc:
            print(f"supervised prefetch failed: {exc.args[0]}",
                  file=sys.stderr)
            return 1
    result = EXPERIMENTS[args.id](cache)
    print(result.title + "\n" + result.table())
    if result.notes:
        print("\n" + result.notes)
    return 0


def _print_run_summary(run) -> None:
    print(f"{run.alias} under {run.technique}: {run.num_frames} frames at "
          f"{run.config.screen_width}x{run.config.screen_height}")
    print(f"  cycles:          {run.total_cycles / 1e6:10.2f} M "
          f"(geometry {run.geometry_cycles / 1e6:.2f} M / "
          f"raster {run.raster_cycles / 1e6:.2f} M)")
    print(f"  energy:          {run.total_energy_nj / 1e6:10.2f} mJ "
          f"(GPU {run.gpu_energy_nj / 1e6:.2f} / "
          f"memory {run.dram_energy_nj / 1e6:.2f})")
    print(f"  fragments shaded:{run.fragments_shaded:11d}")
    print(f"  tiles skipped:   {run.tiles_skipped:11d} "
          f"({100 * run.skipped_fraction():.1f}% after warm-up)")
    print(f"  DRAM traffic:    {run.total_traffic_bytes / 1024:10.1f} KB "
          f"(colors {run.traffic_bytes('colors') / 1024:.0f} / "
          f"texels {run.traffic_bytes('texels') / 1024:.0f} / "
          f"primitives {run.traffic_bytes('primitives') / 1024:.0f})")


def _cmd_run_supervised(args) -> int:
    """`run` routed through the fault-tolerant supervisor: one cell,
    retried / resumed per the policy built from the supervision flags."""
    from .harness.parallel import Cell
    from .harness.supervisor import supervise_cells

    cell = Cell(args.game, args.technique, args.frames)
    supervised = supervise_cells(
        [cell], config=_config_from(args), policy=_policy_from(args),
        journal_path=args.journal, fault_spec=args.inject_fault,
        trace_path=args.trace, metrics_path=args.metrics,
        live=_live_from(args),
    )
    outcome = supervised.outcomes[cell]
    if not outcome.succeeded:
        print(f"run failed after {outcome.attempts} attempt(s): "
              f"{outcome.failure}", file=sys.stderr)
        if args.journal:
            print(f"journal written to {args.journal}", file=sys.stderr)
        return 1
    if outcome.attempts > 1:
        print(f"recovered after {outcome.attempts} attempts "
              f"(resumed from frame {outcome.resumed_from_frame})")
    _print_run_summary(outcome.result)
    _print_observability_paths(args)
    run_id = _record_run(_registry_from(args), outcome.result, "run", args)
    if run_id:
        print(f"  registered as {run_id} (compare with "
              f"`python -m repro diff`)")
    return 0


def _print_observability_paths(args) -> None:
    if args.trace:
        print(f"  wrote trace to {args.trace} "
              f"(load in Perfetto / chrome://tracing)")
    if args.metrics:
        print(f"  wrote per-frame metrics to {args.metrics} "
              f"(analyse with `python -m repro report {args.metrics}`)")


def _service_spec_from(args):
    """The :class:`~repro.service.jobs.JobSpec` a ``run`` maps to."""
    from .service import JobSpec

    overrides = dict(getattr(args, "native_overrides", None) or {})
    if getattr(args, "occlusion_culling", False):
        overrides["occlusion_culling"] = True
    return JobSpec(
        args.game, technique=args.technique, num_frames=args.frames,
        scale=args.scale, overrides=tuple(sorted(overrides.items())),
        tenant=getattr(args, "tenant", None) or "default",
    )


def _run_needs_direct_path(args) -> bool:
    """Features the in-process service path does not carry: checkpoint
    plumbing, run manifests and the per-stage profiler stay on the
    original :func:`run_workload` call."""
    return bool(
        args.direct or args.resume or args.checkpoint_at
        or args.checkpoint_out or args.manifest or args.profile
    )


def _resolve_run_workload(args) -> int:
    """Resolve ``--workload-file``/``--native`` and validate the alias.

    Runs before any rendering path (direct, service, supervised), so a
    typo'd alias fails at parse time with a did-you-mean instead of
    deep inside a worker.  Returns 0, or the exit code to fail with.
    """
    from .errors import WorkloadError

    if getattr(args, "workload_file", None):
        from .workloads.dsl import load_path
        from .workloads.dsl import registry as dsl_registry

        try:
            document = load_path(args.workload_file)
            stem = os.path.splitext(
                os.path.basename(args.workload_file))[0]
            if stem != document.name:
                print(
                    f"run failed: workload file {args.workload_file!r} "
                    f"declares name {document.name!r}; rename the file "
                    f"to {document.name}{os.path.splitext(args.workload_file)[1]} "
                    f"so discovery and the document agree",
                    file=sys.stderr,
                )
                return 2
            dsl_registry.register_search_dir(
                os.path.dirname(os.path.abspath(args.workload_file)))
        except WorkloadError as exc:
            print(f"run failed: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.game and args.game != document.name:
            print(
                f"run failed: both a game alias ({args.game!r}) and "
                f"--workload-file (name {document.name!r}) were given "
                "and they disagree; drop one",
                file=sys.stderr,
            )
            return 2
        args.game = document.name
    if not args.game:
        print("run failed: give a game alias or --workload-file SCENE",
              file=sys.stderr)
        return 2
    if args.game not in all_workload_aliases():
        print(f"run failed: {unknown_workload_message(args.game)}",
              file=sys.stderr)
        return 2
    if getattr(args, "native", False):
        from .workloads.dsl import registry as dsl_registry

        if not dsl_registry.is_dsl_alias(args.game):
            print(
                f"run failed: --native reads a DSL document's defaults; "
                f"{args.game!r} is a builtin workload without one",
                file=sys.stderr,
            )
            return 2
        defaults = dsl_registry.load_dsl_workload(args.game).defaults
        overrides = {}
        if "screen" in defaults:
            overrides["screen_width"] = defaults["screen"][0]
            overrides["screen_height"] = defaults["screen"][1]
        if "tile_size" in defaults:
            overrides["tile_size"] = defaults["tile_size"]
        args.native_overrides = overrides
        if defaults.get("frames"):
            args.frames = defaults["frames"]
    return 0


def _cmd_run(args) -> int:
    failed = _resolve_run_workload(args)
    if failed:
        return failed
    if _supervision_requested(args):
        return _cmd_run_supervised(args)
    perf = None
    if args.profile:
        from .perf import PerfRecorder

        perf = PerfRecorder()
    live = _live_from(args)
    live_sink = None
    if live is not None:
        from .obs.live import ChannelLiveSink

        live_sink = ChannelLiveSink(live, f"{args.game}/{args.technique}")
    try:
        if _run_needs_direct_path(args):
            run = run_workload(
                args.game, args.technique, _config_from(args),
                num_frames=args.frames,
                perf=perf,
                resume_from=args.resume,
                checkpoint_at=args.checkpoint_at,
                checkpoint_path=args.checkpoint_out,
                manifest_path=args.manifest,
                trace_path=args.trace,
                metrics_path=args.metrics,
                live=live_sink,
            )
        else:
            # Default path: a transient in-process service — the exact
            # code the daemon's workers run, bit-identical to the
            # direct call above (tests/service/test_cli.py pins this).
            from .service import run_job_inprocess

            run = run_job_inprocess(
                _service_spec_from(args),
                trace_path=args.trace,
                metrics_path=args.metrics,
                live=live_sink,
            )
    except ServiceError as exc:
        # Typed refusal (bad spec / tenant id), raised before rendering.
        print(f"run failed: {exc.args[0]}", file=sys.stderr)
        return 2
    finally:
        if live is not None:
            live.close()
    if args.resume:
        print(f"resumed from checkpoint {args.resume}")
    # Report what actually ran: on --resume the technique and frame count
    # come from the checkpoint, not the CLI defaults.
    _print_run_summary(run)
    _print_observability_paths(args)
    run_id = _record_run(_registry_from(args), run, "run", args)
    if run_id:
        print(f"  registered as {run_id} (compare with "
              f"`python -m repro diff`)")
    if perf is not None:
        from .perf import write_bench

        snapshot = perf.snapshot()
        print("  simulator profile (wall-clock, not simulated time):")
        for name, seconds in snapshot["stage_seconds"].items():
            print(f"    {name:10s} {seconds:8.3f} s "
                  f"({snapshot['stage_calls'][name]} calls)")
        payload = {
            "command": "run",
            "game": args.game,
            "technique": args.technique,
            "scale": args.scale,
            "frames": args.frames,
            "profile": snapshot,
        }
        write_bench(args.bench_out, payload)
        print(f"  wrote profile to {args.bench_out}")
        registry = _registry_from(args)
        if registry is not None:
            bench_id = registry.record_bench(payload)
            print(f"  registered bench {bench_id} (follow with "
                  f"`python -m repro trend`)")
    return 0


def _cmd_serve(args) -> int:
    """Run the engine-pool daemon behind a Unix socket until shutdown."""
    import signal

    from .service import EngineDaemon, ServiceConfig, ServiceServer

    config = ServiceConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        tenant_max_pending=args.tenant_cap,
        batch_max=args.batch_max,
        max_engines=args.max_engines,
        max_retries=args.retries if args.retries is not None else 1,
        job_timeout_s=args.timeout,
        live_path=getattr(args, "live", None),
        telemetry=not args.no_telemetry,
        trace_dir=args.trace_dir,
        telemetry_log=args.stats_log,
        telemetry_interval_s=args.stats_interval,
    )
    daemon = EngineDaemon(config, registry=_registry_from(args))
    server = ServiceServer(daemon, args.socket)
    daemon.start()

    def _terminate(_signum, _frame):
        # Route SIGTERM through the KeyboardInterrupt path below so the
        # daemon closes cleanly — final telemetry snapshot included.
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _terminate)
    print(f"serving on {args.socket} "
          f"(workers={config.workers}, queue<={config.max_queue}, "
          f"batch<={config.batch_max}, warm engines/worker="
          f"{config.max_engines})")
    print("submit with `python -m repro submit GAME "
          f"--socket {args.socket}`; watch with `python -m repro top "
          f"--socket {args.socket}`; stop with `--shutdown` or Ctrl-C")
    if config.trace_dir:
        print(f"  tracing job lifecycles into {config.trace_dir} "
              f"(merge with `python -m repro trace {config.trace_dir}`)")
    if config.telemetry_log:
        print(f"  snapshotting telemetry to {config.telemetry_log} "
              f"every {config.telemetry_interval_s:g}s")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
        daemon.close()
    return 0


def _cmd_submit(args) -> int:
    from .errors import ServiceError
    from .service import ServiceClient

    if args.kind != "experiment" and not args.shutdown \
            and args.what not in all_workload_aliases():
        # Fail the typo client-side with a did-you-mean; the daemon
        # would refuse it anyway, but only after a socket round-trip.
        print(f"submit failed: {unknown_workload_message(args.what)}",
              file=sys.stderr)
        return 2
    payload = {
        "kind": args.kind,
        "technique": args.technique,
        "num_frames": args.frames,
        "scale": args.scale,
        "tenant": args.tenant or "default",
    }
    if args.kind == "experiment":
        payload["id"] = args.what
    else:
        payload["game"] = args.what
    if args.occlusion_culling:
        payload["overrides"] = {"occlusion_culling": True}
    if args.set:
        parameters = {}
        for spec in args.set:
            name, _, values = spec.partition("=")
            if not values:
                print(f"bad --set {spec!r}: expected name=v1,v2,...",
                      file=sys.stderr)
                return 2
            parameters[name] = [
                _coerce_sweep_value(v) for v in values.split(",")
            ]
        payload["kind"] = "sweep"
        payload["parameters"] = parameters
    try:
        with ServiceClient(args.socket) as client:
            if args.shutdown:
                client.shutdown()
                print("daemon asked to shut down")
                return 0
            jobs = client.submit(payload, trace_dir=args.trace_dir)
            print(f"submitted {len(jobs)} job(s): "
                  + ", ".join(job["job_id"] for job in jobs))
            if args.trace_dir:
                print(f"  traced: shards in {args.trace_dir} (merge "
                      f"with `python -m repro trace {args.trace_dir}`)")
            if not args.wait:
                return 0
            failed = 0
            for submitted in jobs:
                job = client.wait(
                    submitted["job_id"], timeout=args.wait_timeout,
                )
                if job["state"] != "done":
                    failed += 1
                    print(f"  {job['job_id']} {job['game']}/"
                          f"{job['technique']} FAILED: {job['error']}")
                    continue
                summary = job["summary"] or {}
                warmth = "warm" if job["warm"] else "cold"
                print(f"  {job['job_id']} {job['game']}/"
                      f"{job['technique']} done ({warmth}, "
                      f"attempt {job['attempts']}): "
                      f"cycles={summary.get('total_cycles', 0) / 1e6:.2f}M "
                      f"skip={100 * (summary.get('skipped_fraction') or 0):.1f}%"
                      + (f" run={job['run_id']}" if job.get("run_id")
                         else ""))
            return 1 if failed else 0
    except ServiceError as exc:
        print(f"submit failed: {exc.args[0]}", file=sys.stderr)
        return 1


def _cmd_status(args) -> int:
    from .errors import ServiceError
    from .harness.reporting import format_table
    from .service import ServiceClient

    try:
        with ServiceClient(args.socket, timeout=10.0) as client:
            status = client.status()
    except ServiceError as exc:
        # No live daemon: fall back to the heartbeat file its
        # aggregator wrote (atomic snapshots; safe to read any time).
        from .obs.live import read_heartbeat

        heartbeat = read_heartbeat(args.heartbeat)
        if heartbeat is None:
            print(f"status failed: {exc.args[0]} (and no heartbeat at "
                  f"{args.heartbeat})", file=sys.stderr)
            return 1
        print(f"daemon unreachable; last heartbeat "
              f"(owner {heartbeat.get('owner') or 'unknown'}):")
        rows = [
            [worker, f"{state['frames']}/{state['total'] or '?'}",
             "STALLED" if state["stalled"] else state["status"]]
            for worker, state in sorted(heartbeat["workers"].items())
        ]
        print(format_table(["worker", "frames", "status"], rows))
        return 0
    stats = status["stats"]
    print(f"daemon pid {status['pid']}: "
          f"{'running' if status['running'] else 'stopped'}, "
          f"{len(status['workers'])} worker(s), "
          f"queue depth {status['queue_depth']}")
    print(f"  jobs: {stats['submitted']} submitted / "
          f"{stats['completed']} done / {stats['failed']} failed / "
          f"{stats['retried']} retried "
          f"({stats['warm_jobs']} warm, {stats['cold_jobs']} cold)")
    print(f"  admission: {stats['rejected_backpressure']} backpressure "
          f"+ {stats['rejected_tenant']} tenant-cap refusals; "
          f"batching: {stats['jobs_batched']} jobs shared "
          f"{stats['batches_dispatched']} dispatches")
    if stats["worker_crashes"]:
        print(f"  workers: {stats['worker_crashes']} crash(es), "
              f"{stats['worker_restarts']} restart(s)")
    recent = status["jobs"][-args.top:]
    if recent:
        rows = [
            [job["job_id"], job["tenant"],
             f"{job['game']}/{job['technique']}", job["state"],
             job["attempts"],
             {True: "warm", False: "cold", None: "-"}[job["warm"]],
             job["run_id"] or "-"]
            for job in recent
        ]
        print(format_table(
            ["job", "tenant", "cell", "state", "att", "engine", "run_id"],
            rows,
        ))
    if status.get("live_path"):
        print(f"  heartbeat: {status['live_path']}")
    return 0


def _render_stats(snapshot: dict) -> str:
    """The ``repro stats`` / ``repro top`` table for one snapshot."""
    from .harness.reporting import format_table
    from .service.telemetry import TENANT_COUNTERS

    lines = [
        f"daemon pid {snapshot['pid']}: "
        f"{'running' if snapshot['running'] else 'stopped'}, "
        f"{snapshot['workers']} worker(s), "
        f"queue depth {snapshot['queue_depth']}, "
        f"up {snapshot['uptime_s']:.0f}s"
    ]
    telemetry = snapshot.get("telemetry")
    if not telemetry:
        lines.append("telemetry disabled "
                     "(the daemon runs with --no-telemetry)")
        return "\n".join(lines)
    labels = (
        ("queue_wait_s", "queue wait (s)"),
        ("execute_s", "execute (s)"),
        ("e2e_s", "end-to-end (s)"),
        ("batch_size", "batch size"),
    )
    rows = [
        [label, hist["count"], hist["p50"], hist["p95"], hist["p99"],
         hist["mean"]]
        for name, label in labels
        for hist in [telemetry["histograms"][name]]
    ]
    lines.append(format_table(
        ["latency", "n", "p50", "p95", "p99", "mean"], rows,
        float_format="{:.4f}",
    ))
    warm = telemetry["warm"]
    pool = telemetry["pool"]
    totals = pool["totals"]
    lines.append(
        f"warm: {warm['warm_jobs']} warm / {warm['cold_jobs']} cold "
        f"job(s) ({100.0 * warm['rate']:.1f}% warm); pool: "
        f"{totals['warm_hits']}/{totals['requests']} warm hits "
        f"({100.0 * pool['warm_hit_rate']:.1f}%), "
        f"{totals['engines_built']} built, "
        f"{totals['engines_evicted']} evicted"
    )
    tenants = telemetry.get("tenants") or {}
    if tenants:
        rows = [
            [tenant] + [counters.get(key, 0)
                        for key in TENANT_COUNTERS]
            for tenant, counters in sorted(tenants.items())
        ]
        lines.append(format_table(
            ["tenant", *TENANT_COUNTERS], rows,
        ))
    return "\n".join(lines)


def _cmd_stats(args) -> int:
    from .errors import ServiceError
    from .service import ServiceClient

    try:
        with ServiceClient(args.socket, timeout=10.0) as client:
            snapshot = client.stats()
    except ServiceError as exc:
        print(f"stats failed: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(_render_stats(snapshot))
    return 0


def _cmd_top(args) -> int:
    """Live ops view: redraw the stats table from the ``watch`` feed."""
    from .errors import ServiceError
    from .service import ServiceClient

    once = getattr(args, "once", False)
    clear = (not once and not args.no_clear and not args.events
             and sys.stdout.isatty())
    limit = 1 if once else args.iterations
    frames = 0
    try:
        with ServiceClient(
            args.socket, timeout=max(args.interval * 4.0, 30.0),
        ) as client:
            for message in client.watch(interval=args.interval):
                if message.get("kind") == "event":
                    if args.events:
                        event = message["event"]
                        detail = " ".join(
                            f"{key}={value}" for key, value in
                            sorted(event.items())
                            if key not in ("seq", "ts", "event")
                        )
                        print(f"[{event['seq']:>4}] "
                              f"{event['event']:<9} {detail}")
                    continue
                if message.get("kind") != "stats":
                    continue
                frames += 1
                if clear:
                    print("\x1b[2J\x1b[H", end="")
                print(_render_stats(message["stats"]))
                if limit and frames >= limit:
                    return 0
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(f"top failed: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    """Merge a shard directory into one trace and validate it."""
    from .errors import ReproError
    from .obs import merge_shards, validate_trace
    from .obs.distributed import shard_paths

    try:
        shards = shard_paths(args.shard_dir)
        payload = merge_shards(shards or args.shard_dir,
                               out_path=args.out)
        counts = validate_trace(payload)
    except (OSError, ReproError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"trace failed: {message}", file=sys.stderr)
        return 1
    metadata = payload.get("metadata", {})
    trace_ids = metadata.get("trace_ids") or []
    print(f"trace ok: merged {len(shards)} shard(s) into "
          f"{counts['events']} events — {counts['spans']} spans over "
          f"{counts['pids']} process(es), {len(trace_ids)} trace id(s)")
    for trace_id in trace_ids:
        print(f"  trace {trace_id}")
    if metadata.get("repaired_spans"):
        print(f"  repaired {metadata['repaired_spans']} span(s) left "
              f"open by crashed processes")
    if args.out:
        print(f"  wrote merged trace to {args.out} "
              f"(load in Perfetto / chrome://tracing)")
    return 0


def _parse_set_specs(specs) -> dict:
    """``--set name=v1,v2,...`` flags into a parameter-grid dict."""
    parameters = {}
    for spec in specs or []:
        name, _, values = spec.partition("=")
        if not values:
            raise ValueError(f"bad --set {spec!r}: expected name=v1,v2,...")
        parameters[name] = [
            _coerce_sweep_value(v) for v in values.split(",")
        ]
    return parameters


def _fleet_overrides(args) -> dict:
    overrides = dict(getattr(args, "native_overrides", None) or {})
    if getattr(args, "occlusion_culling", False):
        overrides["occlusion_culling"] = True
    return overrides


def _cmd_fleet(args) -> int:
    import json
    import time as time_module

    from .errors import FleetError, ReproError
    from .fleet import FleetCoordinator, FleetSpec, launch_fleet
    from .fleet.points import list_fleets

    root = _registry_root(args)

    if args.fleet_action == "launch":
        if args.game not in all_workload_aliases():
            print(f"fleet launch failed: "
                  f"{unknown_workload_message(args.game)}", file=sys.stderr)
            return 2
        try:
            parameters = _parse_set_specs(args.set)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        crash_after = {}
        for spec in args.crash_worker or []:
            worker, _, count = spec.partition(":")
            try:
                crash_after[worker] = int(count)
            except ValueError:
                print(f"bad --crash-worker {spec!r}: expected "
                      "WORKER:CLAIMS (e.g. w1:2)", file=sys.stderr)
                return 2
        fleet_id = args.fleet_id or time_module.strftime(
            "fleet-%Y%m%d-%H%M%S")
        try:
            spec = FleetSpec(
                fleet_id=fleet_id, alias=args.game,
                technique=args.technique, num_frames=args.frames,
                parameters=parameters, scale=args.scale,
                overrides=_fleet_overrides(args), lease_s=args.lease,
            )
            print(f"launching fleet {fleet_id}: {args.workers} worker(s) "
                  f"over {len(spec.point_ids())} point(s) "
                  f"({args.game}/{args.technique}, {args.frames} frames, "
                  f"lease {args.lease:g}s)")
            status = launch_fleet(
                root, spec, workers=args.workers,
                crash_after=crash_after, max_wait_s=args.max_wait,
                stream=sys.stderr if args.verbose else None,
            )
        except (FleetError, ReproError) as exc:
            print(f"fleet launch failed: {exc.args[0]}", file=sys.stderr)
            return 2
        coordinator = FleetCoordinator(root, fleet_id)
        coordinator.refresh()
        print(coordinator.render_status(width=_terminal_width()))
        coordinator.close()
        crashed = [w for w, code in sorted(status["exit_codes"].items())
                   if code != 0]
        if crashed:
            print(f"workers exited nonzero: {', '.join(crashed)} "
                  "(their points were requeued through lease expiry)")
        if status["failed_points"]:
            print(f"FAILED points: {', '.join(status['failed_points'])}",
                  file=sys.stderr)
            return 1
        print(f"fleet {fleet_id} complete; reconcile with "
              f"`python -m repro diff --fleet {fleet_id} OTHER` or "
              "`python -m repro trend --fleet`")
        return 0

    if args.fleet_action == "work":
        from .fleet import FleetWorker

        supervised = _supervision_requested(args)
        try:
            worker = FleetWorker(
                root, args.fleet_id, args.worker,
                poll_s=args.poll, max_wait_s=args.max_wait,
                crash_after_claims=args.crash_after_claims,
                policy=_policy_from(args) if supervised else None,
                trace=args.fleet_trace,
            )
            summary = worker.run()
        except (FleetError, ReproError) as exc:
            print(f"fleet work failed: {exc.args[0]}", file=sys.stderr)
            return 2
        print(f"worker {summary['worker']}: completed "
              f"{len(summary['completed'])} point(s)")
        return 1 if summary["failed"] else 0

    # status / watch ------------------------------------------------------
    fleet_id = args.fleet_id
    if not fleet_id:
        fleets = list_fleets(root)
        if not fleets:
            print(f"no fleets under {root} (start one with "
                  "`python -m repro fleet launch`)")
            return 0
        if len(fleets) > 1:
            print("fleets: " + ", ".join(fleets))
            print("pick one with --fleet-id")
            return 0
        fleet_id = fleets[0]
    try:
        coordinator = FleetCoordinator(root, fleet_id)
    except (FleetError, ReproError) as exc:
        print(f"fleet {args.fleet_action} failed: {exc.args[0]}",
              file=sys.stderr)
        return 2

    once = args.fleet_action == "status" or getattr(args, "once", False)
    # ANSI clear only on an interactive terminal: CI logs and pipes get
    # plain appended frames, never redraw escape codes.
    clear = (not once and not getattr(args, "no_clear", False)
             and sys.stdout.isatty())
    frames = 0
    try:
        while True:
            coordinator.refresh()
            if getattr(args, "reap", False):
                for point in coordinator.reap_orphans():
                    print(f"reaped expired claim on {point}")
            frames += 1
            if clear:
                print("\x1b[2J\x1b[H", end="")
            print(coordinator.render_status(width=_terminal_width()))
            if args.json:
                print(json.dumps(coordinator.status(), sort_keys=True))
            if once or coordinator.complete:
                break
            if (getattr(args, "iterations", 0)
                    and frames >= args.iterations):
                break
            time_module.sleep(getattr(args, "interval", 1.0))
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.close()
    return 1 if coordinator.failed_points() else 0


def _terminal_width(default: int = 80) -> int:
    """Current terminal width; the default for pipes and CI logs."""
    if not sys.stdout.isatty():
        return default
    import shutil

    return shutil.get_terminal_size((default, 24)).columns


def _coerce_sweep_value(text: str):
    """``--set`` values: int where possible, then float, else string."""
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _cmd_sweep(args) -> int:
    from .errors import ReproError
    from .harness.reporting import format_table
    from .harness.sweeps import sweep, tabulate

    if args.game not in all_workload_aliases():
        print(f"sweep failed: {unknown_workload_message(args.game)}",
              file=sys.stderr)
        return 2
    try:
        parameters = _parse_set_specs(args.set)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not parameters:
        print("sweep needs at least one --set name=v1,v2,...",
              file=sys.stderr)
        return 2
    supervised = _supervision_requested(args)
    try:
        points = sweep(
            args.game, args.technique, parameters,
            base_config=_config_from(args), num_frames=args.frames,
            processes=args.jobs or None,
            policy=_policy_from(args) if supervised else None,
            journal_path=args.journal, fault_spec=args.inject_fault,
            trace_path=args.trace, metrics_path=args.metrics,
            live=_live_from(args),
        )
        rows = tabulate(points, args.metric)
    except ReproError as exc:
        print(f"sweep failed: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"{args.game} under {args.technique}: "
          f"{len(points)} configurations x {args.frames} frames")
    print(format_table(list(parameters) + [args.metric], rows))
    if args.trace or args.metrics:
        if len(points) > 1:
            print("  per-point trace/metrics paths derive from the given "
                  "stem (suffixed with each point's parameter assignment)")
        else:
            _print_observability_paths(args)
    registry = _registry_from(args)
    if registry is not None:
        run_ids = []
        for point in points:
            extra = {"parameters": point.parameters}
            if getattr(args, "fleet_id", None):
                # Stamp the same content-addressed identity a fleet
                # worker would, so `repro diff --fleet` can reconcile
                # this single-host sweep against a distributed run.
                import dataclasses as dc

                from .fleet.points import point_id as fleet_point_id

                config = dc.replace(_config_from(args),
                                    **point.parameters)
                extra["fleet_id"] = args.fleet_id
                extra["point_id"] = fleet_point_id(
                    args.game, args.technique, args.frames, config,
                )
            run_ids.append(_record_run(
                registry, point.run, "sweep-point", args, extra=extra,
            ))
        if any(run_ids):
            print(f"  registered {len([r for r in run_ids if r])} sweep "
                  f"point(s) in {registry.root}")
    return 0


def _cmd_report(args) -> int:
    if args.metrics_log or args.validate_trace:
        from .errors import ReproError
        from .obs import render_report, validate_trace_file

        try:
            if args.validate_trace:
                counts = validate_trace_file(args.validate_trace)
                print(f"trace ok: {counts['events']} events "
                      f"({counts['spans']} spans, {counts['instants']} "
                      f"instants, {counts['counters']} counter samples)")
            if args.metrics_log:
                from .obs import MetricsLog

                log = MetricsLog.load_many(args.metrics_log)
                if len(args.metrics_log) > 1:
                    print(f"merged {len(args.metrics_log)} metrics "
                          f"files ({log.num_frames} frames after "
                          f"retried-frame dedupe)")
                print(render_report(log, top=args.top))
        except ReproError as exc:
            print(f"report failed: {exc.args[0]}", file=sys.stderr)
            return 1
        return 0
    from .harness.report import generate_report

    results = generate_report(
        args.out, config=_config_from(args), num_frames=args.frames,
        progress=lambda experiment_id: print(f"running {experiment_id}..."),
    )
    print(f"wrote {len(results)} sections to {args.out}")
    return 0


def _cmd_runs(args) -> int:
    import time as time_module

    from .errors import ReproError
    from .harness.reporting import format_table

    registry = _reader_registry(args)
    if getattr(args, "tenant", None):
        registry = registry.for_tenant(args.tenant)
    if getattr(args, "compact", False):
        try:
            kept, reclaimed = registry.compact_index()
        except (OSError, ReproError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            print(f"compact failed: {message}", file=sys.stderr)
            return 2
        print(f"compacted {registry.index_path}: kept {kept} "
              f"entr{'y' if kept == 1 else 'ies'}, reclaimed "
              f"{reclaimed} superseded row(s)")
        return 0
    try:
        entries = registry.query(
            kind=args.kind, alias=args.game, technique=args.technique,
        )
    except ReproError as exc:
        print(f"runs failed: {exc.args[0]}", file=sys.stderr)
        return 2
    write_errors = registry.write_errors()
    if not entries:
        print(f"registry {registry.root} is empty (run with --registry, "
              "or see `python -m repro run --help`)")
        _print_write_errors(write_errors)
        _print_tenant_summary(registry, args)
        return 0
    rows = []
    for entry in entries:
        summary = entry.summary or {}
        if entry.kind == "bench":
            wall = summary.get("wall_seconds")
            headline = (
                f"wall={wall:.3f}s" if wall is not None else "wall=?"
            )
        else:
            cycles = summary.get("total_cycles")
            skip = summary.get("skipped_fraction")
            headline = (
                f"cycles={cycles / 1e6:.2f}M skip={100 * (skip or 0):.1f}%"
                if cycles is not None else "-"
            )
            if summary.get("parameters"):
                headline += " " + ",".join(
                    f"{k}={v}" for k, v in summary["parameters"].items()
                )
        rows.append([
            entry.run_id,
            entry.kind,
            entry.alias or "-",
            entry.technique or "-",
            entry.num_frames if entry.num_frames is not None else "-",
            entry.git_rev or "-",
            time_module.strftime(
                "%Y-%m-%d %H:%M",
                time_module.localtime(entry.created_at or 0),
            ),
            headline,
        ])
    print(f"registry {registry.root}: {len(entries)} entries "
          "(oldest first)")
    print(format_table(
        ["run_id", "kind", "game", "technique", "frames", "git",
         "when", "summary"], rows,
    ))
    _print_write_errors(write_errors)
    _print_tenant_summary(registry, args)
    return 0


def _print_write_errors(write_errors) -> None:
    if not write_errors:
        return
    latest = write_errors[-1]
    print(f"registry_write_errors: {len(write_errors)} "
          f"(latest: {latest.get('error')})")


def _print_tenant_summary(registry, args) -> None:
    """Tenant namespaces under the root, with per-tenant write errors.

    Only on an unscoped listing — a ``--tenant`` query already *is* a
    namespace, and its errors print through
    :func:`_print_write_errors`."""
    if getattr(args, "tenant", None):
        return
    tenants = registry.tenants()
    if tenants:
        print(f"tenants: {', '.join(tenants)} "
              "(list one with `python -m repro runs --tenant NAME`)")
    for tenant, records in sorted(
            registry.tenant_write_errors().items()):
        print(f"registry_write_errors[{tenant}]: {len(records)} "
              f"(latest: {records[-1].get('error')})")


def _cmd_diff(args) -> int:
    from .errors import ReproError
    from .obs.diff import (
        diff_fleets,
        diff_runs,
        render_diff,
        render_fleet_diff,
    )

    registry = _reader_registry(args)
    if getattr(args, "fleet", False):
        try:
            diff = diff_fleets(registry, args.run_a, args.run_b)
        except ReproError as exc:
            print(f"diff failed: {exc.args[0]}", file=sys.stderr)
            return 2
        print(render_fleet_diff(diff))
        return 0 if diff["identical"] else 1
    try:
        diff = diff_runs(registry, args.run_a, args.run_b)
    except ReproError as exc:
        print(f"diff failed: {exc.args[0]}", file=sys.stderr)
        return 2
    print(render_diff(diff, top_counters=args.top))
    return 0


def _cmd_trend(args) -> int:
    from .errors import ReproError
    from .obs.trend import check_trend, render_trend

    registry = _reader_registry(args)
    if getattr(args, "fleet", False):
        from .obs.trend import render_fleet_trend

        try:
            print(render_fleet_trend(registry))
        except (OSError, ReproError) as exc:
            print(f"trend failed: {exc}", file=sys.stderr)
            return 2
        return 0
    try:
        if args.append:
            for path in args.append:
                bench_id = registry.record_bench(path)
                print(f"appended {path} as {bench_id}")
        print(render_trend(registry))
        if args.check:
            failures = check_trend(
                registry, share_tolerance=args.share_tolerance,
                wall_tolerance=args.wall_tolerance,
            )
            if failures:
                return 1
    except (OSError, ReproError) as exc:
        print(f"trend failed: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_workloads(args) -> int:
    from .errors import WorkloadError
    from .harness.reporting import format_table
    from .workloads.dsl import load_path
    from .workloads.dsl import registry as dsl_registry

    if args.action == "list":
        entries = dsl_registry.discover()
        if not entries:
            print("no DSL workloads on the search path "
                  f"({os.pathsep.join(dsl_registry.search_dirs())})")
            return 0
        rows = []
        for alias in sorted(entries):
            entry = entries[alias]
            try:
                document = dsl_registry.load_dsl_workload(alias)
                defaults = document.defaults
                detail = " ".join(
                    f"{key}={value}" for key, value in sorted(
                        defaults.items())
                ) or "-"
                description = (document.data.get("description") or
                               "").strip().split("\n")[0]
            except WorkloadError as exc:
                detail = "INVALID"
                description = exc.args[0]
            rows.append([alias, entry.origin, detail, description])
        print(format_table(
            ["alias", "origin", "native defaults", "description"], rows,
        ))
        return 0
    if args.action == "validate":
        if not args.paths:
            print("workloads validate needs one or more scene files",
                  file=sys.stderr)
            return 2
        failures = 0
        for path in args.paths:
            try:
                document = load_path(path)
            except (WorkloadError, OSError) as exc:
                failures += 1
                message = exc.args[0] if exc.args else str(exc)
                print(f"FAIL {path}: {message}")
                continue
            print(f"ok   {path}: {document.name} "
                  f"({len(document.data['nodes'])} nodes)")
        return 1 if failures else 0
    if args.action == "add":
        if not args.paths:
            print("workloads add needs one or more scene files",
                  file=sys.stderr)
            return 2
        try:
            for path in args.paths:
                installed = dsl_registry.add_workload_file(
                    path, dest_dir=args.dest)
                print(f"installed {load_path(installed).name} "
                      f"-> {installed}")
        except (WorkloadError, OSError) as exc:
            print(f"workloads add failed: "
                  f"{exc.args[0] if exc.args else exc}", file=sys.stderr)
            return 2
        return 0
    # show: the canonical (defaults-filled) form of one alias
    if not args.paths:
        print("workloads show needs an alias", file=sys.stderr)
        return 2
    for alias in args.paths:
        try:
            document = dsl_registry.load_dsl_workload(alias)
        except WorkloadError as exc:
            print(f"workloads show failed: {exc.args[0]}",
                  file=sys.stderr)
            return 2
        print(document.dump(), end="")
    return 0


def _cmd_goldens(args) -> int:
    from .errors import ReproError
    from .harness.goldens import check_goldens, record_goldens
    from .obs.store import RunRegistry

    registry = RunRegistry(args.goldens)
    aliases = args.game or None
    if aliases:
        for alias in aliases:
            if alias not in all_workload_aliases():
                print(f"goldens failed: {unknown_workload_message(alias)}",
                      file=sys.stderr)
                return 2
    progress = (lambda line: print(f"  {line}")) if args.verbose else None
    try:
        if args.action == "record":
            recorded = record_goldens(
                registry, aliases, config=_config_from(args),
                num_frames=args.golden_frames, progress=progress,
            )
            print(f"recorded {len(recorded)} golden(s) into "
                  f"{registry.root}")
            return 0
        report = check_goldens(
            registry, aliases, config=_config_from(args),
            num_frames=args.golden_frames, progress=progress,
        )
    except ReproError as exc:
        print(f"goldens {args.action} failed: {exc.args[0]}",
              file=sys.stderr)
        return 1
    print(report.summary())
    if not report.ok:
        print(f"\n{len(report.failures)} point(s) drifted; if the new "
              "output is intended, refresh with "
              "`python -m repro goldens record`", file=sys.stderr)
        return 1
    return 0


def _add_registry_flags(parser, suppress: bool = False) -> None:
    # The flags also hang off every registry-aware subcommand so they
    # work on either side of the subcommand name; SUPPRESS keeps a
    # subparser from clobbering a value the global parser already set.
    default = argparse.SUPPRESS if suppress else None
    parser.add_argument(
        "--registry", metavar="DIR", default=default,
        help="run-registry directory (default: "
             "$REPRO_REGISTRY or results/registry)")
    parser.add_argument(
        "--no-registry", action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="do not record this run into the registry")


def _add_observability_flags(subparser) -> None:
    subparser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON timeline here "
             "(load in Perfetto / chrome://tracing)")
    subparser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a per-frame JSONL metrics log here "
             "(analyse with `python -m repro report PATH`)")
    subparser.add_argument(
        "--live", nargs="?", const="live.json", default=None,
        metavar="PATH",
        help="stream per-frame worker progress to a live status table "
             "(stderr) and a heartbeat JSON at PATH (default live.json); "
             "stalled workers are flagged before the supervisor timeout")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--scale", choices=("small", "benchmark", "mali450"),
                        default="small")
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--jobs", type=int, default=0,
                        help="fan independent cells across N worker "
                             "processes (0/1 = serial)")
    parser.add_argument("--profile", action="store_true",
                        help="record per-stage simulator wall-clock and "
                             "event rates")
    parser.add_argument("--occlusion-culling", action="store_true",
                        help="truncate each tile's polygon list at the "
                             "last full-cover opaque primitive during "
                             "binning (bit-identical output; see DESIGN)")
    parser.add_argument("--raster-backend", default=None,
                        choices=("numpy", "compiled"),
                        help="raster inner-loop kernels: numpy (default) "
                             "or compiled (numba when importable, numpy "
                             "fallback otherwise; bit-identical either "
                             "way, recorded in run manifests)")
    parser.add_argument("--bench-out", default="BENCH_pipeline.json",
                        help="where --profile writes its JSON payload")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt wall-clock limit; exceeding it "
                             "terminates the worker and retries the cell")
    parser.add_argument("--retries", type=int, default=None,
                        help="retries after a failed attempt "
                             "(default 2 when supervision is active)")
    parser.add_argument("--checkpoint-stride", type=int, default=0,
                        metavar="FRAMES",
                        help="checkpoint every N frames so retries resume "
                             "mid-run instead of restarting (0 = off)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="append a JSONL record per attempt/retry/"
                             "timeout/recovery to this file")
    parser.add_argument("--inject-fault", default=None,
                        metavar="ALIAS/TECH:FRAME:KIND[:TIMES]",
                        help="deterministically crash/error/hang the "
                             "matching cell (testing the recovery path); "
                             "'*' matches any alias/technique")
    _add_registry_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list games, experiments and techniques")
    exp = sub.add_parser("experiment", help="regenerate a paper figure")
    exp.add_argument("id")
    run = sub.add_parser("run", help="run one game under one technique")
    run.add_argument("game", nargs="?", default=None,
                     help="workload alias (builtin or DSL-registered); "
                          "optional when --workload-file is given")
    run.add_argument("--technique", choices=TECHNIQUES, default="re")
    run.add_argument("--workload-file", default=None, metavar="SCENE",
                     help="run a DSL scene file directly: validate it, "
                          "register its directory on the workload search "
                          "path and use its document name as the alias")
    run.add_argument("--native", action="store_true",
                     help="apply the DSL document's native defaults "
                          "(screen resolution, tile size, frame count) "
                          "instead of the --scale preset values")
    run.add_argument("--resume", default=None, metavar="CHECKPOINT",
                     help="resume a run from a checkpoint file written "
                          "by --checkpoint-at/--checkpoint-out")
    run.add_argument("--checkpoint-at", type=int, default=None,
                     metavar="FRAME",
                     help="write a checkpoint after this many frames, "
                          "then continue to completion")
    run.add_argument("--checkpoint-out", default=None, metavar="PATH",
                     help="where --checkpoint-at writes the checkpoint")
    run.add_argument("--manifest", default=None, metavar="PATH",
                     help="write a JSON run manifest here")
    run.add_argument("--tenant", default=None,
                     help="record this run under a tenant namespace of "
                          "the registry (the service daemon's layout)")
    run.add_argument("--direct", action="store_true",
                     help="bypass the in-process service path and call "
                          "the runner directly (bit-identical output; "
                          "exists for differential testing)")
    _add_observability_flags(run)
    _add_registry_flags(run, suppress=True)
    swp = sub.add_parser(
        "sweep", help="run one game across a grid of GpuConfig values"
    )
    swp.add_argument("game")
    swp.add_argument("--technique", choices=TECHNIQUES, default="re")
    swp.add_argument("--set", action="append", required=True,
                     metavar="NAME=V1,V2,...",
                     help="GpuConfig field and the values to sweep it "
                          "over; repeat for a multi-parameter grid")
    swp.add_argument("--metric", default="total_cycles",
                     help="metric column to tabulate "
                          "(default: total_cycles)")
    swp.add_argument("--fleet-id", default=None, metavar="NAME",
                     help="stamp every recorded sweep point with this "
                          "fleet id and its deterministic point id, so "
                          "a single-host sweep can be reconciled against "
                          "a distributed fleet with `repro diff --fleet`")
    _add_observability_flags(swp)
    _add_registry_flags(swp, suppress=True)
    report = sub.add_parser(
        "report", help="regenerate every figure into one markdown "
                       "report, or analyse a per-frame metrics log"
    )
    report.add_argument("metrics_log", nargs="*", default=None,
                        help="metrics JSONL file(s) written by "
                             "--metrics; when given, print that run's "
                             "per-stage cycle shares, skip-rate curve "
                             "and hottest tiles instead of regenerating "
                             "figures — several files (a batch fanned "
                             "across workers, or retried attempts) "
                             "merge with last-record-per-frame dedupe")
    report.add_argument("--out", default="REPORT.md")
    report.add_argument("--top", type=int, default=10,
                        help="how many hottest tiles to list")
    report.add_argument("--validate-trace", default=None, metavar="PATH",
                        help="strictly validate a Chrome trace-event "
                             "JSON file written by --trace")
    runs = sub.add_parser(
        "runs", help="list the run registry (recorded runs, sweep "
                     "points and bench profiles)"
    )
    runs.add_argument("--kind", default=None,
                      choices=("run", "sweep-point", "bench", "figure",
                               "golden"),
                      help="only entries of this kind")
    runs.add_argument("--game", default=None,
                      help="only entries for this game alias")
    runs.add_argument("--technique", default=None,
                      help="only entries for this technique")
    runs.add_argument("--tenant", default=None,
                      help="list one tenant's namespace instead of the "
                           "registry root")
    runs.add_argument("--compact", action="store_true",
                      help="rewrite index.jsonl atomically with one "
                           "latest-wins row per run and report how many "
                           "superseded rows were reclaimed")
    _add_registry_flags(runs, suppress=True)
    diff = sub.add_parser(
        "diff", help="compare two registered runs (cycles, skips, "
                     "traffic, counters, per-tile CRCs)"
    )
    diff.add_argument("run_a", help="run id (or unique prefix) of the "
                                    "baseline side")
    diff.add_argument("run_b", help="run id (or unique prefix) of the "
                                    "candidate side")
    diff.add_argument("--top", type=int, default=12,
                      help="how many changed counters to list")
    diff.add_argument("--fleet", action="store_true",
                      help="treat the two arguments as fleet ids and "
                           "reconcile their recorded sweep points "
                           "point-for-point (cycles, skips, CRCs); "
                           "exit 1 on any divergence")
    _add_registry_flags(diff, suppress=True)
    trend = sub.add_parser(
        "trend", help="performance trajectory over the registry's "
                      "bench profiles"
    )
    trend.add_argument("--append", action="append", default=None,
                       metavar="BENCH.json",
                       help="record this bench profile into the registry "
                            "first (repeatable)")
    trend.add_argument("--check", action="store_true",
                       help="exit 1 if the newest bench point regresses "
                            "vs its predecessor")
    trend.add_argument("--share-tolerance", type=float, default=0.10,
                       help="allowed absolute drift per stage's share of "
                            "stage time (default 0.10)")
    trend.add_argument("--wall-tolerance", type=float, default=None,
                       help="allowed fractional wall slowdown for --check "
                            "(default: skip the wall comparison)")
    trend.add_argument("--fleet", action="store_true",
                       help="show the fleet dashboard instead: per-fleet "
                            "rollups over every fleet-stamped sweep "
                            "point, plus a cycles trajectory across "
                            "re-runs of the same point set")
    _add_registry_flags(trend, suppress=True)
    serve = sub.add_parser(
        "serve", help="run the warm engine-pool daemon behind a Unix "
                      "socket (render-as-a-service)"
    )
    serve.add_argument("--socket", default="repro.sock",
                       help="Unix socket path to bind (default "
                            "repro.sock)")
    serve.add_argument("--workers", type=int, default=1,
                       help="persistent worker processes, each with its "
                            "own warm engine pool (default 1)")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="bounded job queue; submits beyond this are "
                            "refused with backpressure (default 16)")
    serve.add_argument("--tenant-cap", type=int, default=8,
                       help="max queued+running jobs per tenant "
                            "(default 8)")
    serve.add_argument("--batch-max", type=int, default=4,
                       help="max config-compatible jobs dispatched to a "
                            "worker as one batch (default 4)")
    serve.add_argument("--max-engines", type=int, default=4,
                       help="warm engines each worker keeps resident "
                            "(default 4)")
    serve.add_argument("--live", nargs="?", const="live.json",
                       default=None, metavar="PATH",
                       help="write the daemon's heartbeat JSON here "
                            "(read it with `python -m repro status`)")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="record daemon/worker lifecycle spans as "
                            "trace shards in DIR (merge with "
                            "`python -m repro trace DIR`)")
    serve.add_argument("--stats-log", default=None, metavar="PATH",
                       help="append periodic telemetry snapshots "
                            "(JSONL) here; a final snapshot flushes on "
                            "shutdown")
    serve.add_argument("--stats-interval", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds between telemetry snapshots "
                            "(default 30)")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the telemetry recorder (stats/top "
                            "report daemon state only)")
    _add_registry_flags(serve, suppress=True)
    submit = sub.add_parser(
        "submit", help="submit a job to a running `repro serve` daemon"
    )
    submit.add_argument("what", nargs="?", default="ccs",
                        help="game alias (render/sweep) or experiment "
                             "id (--kind experiment)")
    submit.add_argument("--kind", default="render",
                        choices=("render", "sweep", "experiment"))
    submit.add_argument("--technique", choices=TECHNIQUES, default="re")
    submit.add_argument("--tenant", default=None,
                        help="tenant namespace the result is recorded "
                             "under (default 'default')")
    submit.add_argument("--set", action="append", default=None,
                        metavar="NAME=V1,V2,...",
                        help="sweep a GpuConfig field (implies "
                             "--kind sweep; repeatable)")
    submit.add_argument("--socket", default="repro.sock",
                        help="daemon socket (default repro.sock)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the submitted job(s) finish "
                             "and print their summaries")
    submit.add_argument("--wait-timeout", type=float, default=300.0,
                        help="per-job --wait limit in seconds "
                             "(default 300)")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to shut down instead of "
                             "submitting")
    submit.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="trace this request end to end: mint a "
                             "trace context the daemon and workers nest "
                             "their spans under, and record the client "
                             "round trip as a shard in DIR (serve with "
                             "--trace-dir DIR too, then merge with "
                             "`python -m repro trace DIR`)")
    workloads = sub.add_parser(
        "workloads", help="list/validate/add/show declarative DSL "
                          "workloads (data-file scenes)"
    )
    workloads.add_argument("action",
                           choices=("list", "validate", "add", "show"))
    workloads.add_argument("paths", nargs="*",
                           help="scene files (validate/add) or workload "
                                "aliases (show)")
    workloads.add_argument("--dest", default=None, metavar="DIR",
                           help="directory `add` installs into "
                                "(default ./workloads)")
    goldens = sub.add_parser(
        "goldens", help="record or check the registry-pinned golden "
                        "CRC/skip conformance baselines"
    )
    goldens.add_argument("action", choices=("record", "check"))
    goldens.add_argument("--goldens", metavar="DIR",
                         default=os.path.join("results", "goldens"),
                         help="golden registry directory "
                              "(default results/goldens — the committed "
                              "conformance baseline)")
    goldens.add_argument("--game", action="append", default=None,
                         help="only these aliases (repeatable; default "
                              "every builtin and DSL workload)")
    goldens.add_argument("--golden-frames", type=int, default=None,
                         metavar="N",
                         help="frames per golden point (default 8)")
    goldens.add_argument("--verbose", action="store_true",
                         help="print per-alias progress")
    status = sub.add_parser(
        "status", help="show a running daemon's queue/worker/tenant "
                       "state (falls back to the heartbeat file)"
    )
    status.add_argument("--socket", default="repro.sock",
                        help="daemon socket (default repro.sock)")
    status.add_argument("--heartbeat", default="live.json",
                        metavar="PATH",
                        help="heartbeat JSON to read when the socket "
                             "is unreachable (default live.json)")
    status.add_argument("--top", type=int, default=12,
                        help="how many recent jobs to list")
    stats = sub.add_parser(
        "stats", help="one-shot service telemetry: latency "
                      "percentiles, warm-hit rates, tenant counters"
    )
    stats.add_argument("--socket", default="repro.sock",
                       help="daemon socket (default repro.sock)")
    stats.add_argument("--json", action="store_true",
                       help="print the raw snapshot JSON instead of "
                            "the table")
    top = sub.add_parser(
        "top", help="live ops view: stream the daemon's stats table "
                    "(Ctrl-C to stop)"
    )
    top.add_argument("--socket", default="repro.sock",
                     help="daemon socket (default repro.sock)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between redraws (default 1)")
    top.add_argument("--iterations", type=int, default=0,
                     metavar="N",
                     help="exit after N stats frames (default: stream "
                          "until interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the "
                          "screen between redraws")
    top.add_argument("--events", action="store_true",
                     help="also print job lifecycle events (admitted/"
                          "started/done/...) between stats frames")
    top.add_argument("--once", action="store_true",
                     help="print exactly one stats frame and exit "
                          "(no screen clearing; safe in CI logs and "
                          "non-TTY pipes)")
    trace_cmd = sub.add_parser(
        "trace", help="merge a --trace-dir's per-process shards into "
                      "one validated Chrome trace"
    )
    trace_cmd.add_argument("shard_dir",
                           help="directory of shard-*.jsonl files "
                                "written by serve/submit --trace-dir")
    trace_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the merged Perfetto-loadable "
                                "JSON here")
    fleet = sub.add_parser(
        "fleet", help="distributed sweeps: N workers idempotently claim "
                      "points through the shared registry (launch/work/"
                      "status/watch)"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_action", required=True)
    flaunch = fleet_sub.add_parser(
        "launch", help="expand a sweep grid into a fleet spec and run "
                       "it across N local worker processes"
    )
    flaunch.add_argument("game", help="workload alias to sweep")
    flaunch.add_argument("--technique", choices=TECHNIQUES, default="re")
    flaunch.add_argument("--set", action="append", required=True,
                         metavar="NAME=V1,V2,...",
                         help="GpuConfig field and the values to sweep "
                              "it over; repeat for a multi-parameter "
                              "grid")
    flaunch.add_argument("--workers", type=int, default=3,
                         help="local worker processes to spawn "
                              "(default 3)")
    flaunch.add_argument("--fleet-id", default=None, metavar="NAME",
                         help="fleet id (default: a fleet-<timestamp> "
                              "name)")
    flaunch.add_argument("--lease", type=float, default=30.0,
                         metavar="SECONDS",
                         help="claim lease duration; a worker renews at "
                              "a third of this cadence while executing, "
                              "and peers reap claims whose lease "
                              "expired (default 30)")
    flaunch.add_argument("--max-wait", type=float, default=300.0,
                         metavar="SECONDS",
                         help="abort the launch if the fleet has not "
                              "completed within this wall-clock budget "
                              "(default 300)")
    flaunch.add_argument("--crash-worker", action="append", default=None,
                         metavar="WORKER:N",
                         help="fault injection: kill this worker (e.g. "
                              "w1) right after it wins its Nth claim, "
                              "before any child spawns — lease expiry "
                              "must requeue the orphaned point "
                              "(repeatable)")
    flaunch.add_argument("--verbose", action="store_true",
                         help="stream the live claim map to stderr "
                              "while the fleet runs")
    _add_registry_flags(flaunch, suppress=True)
    fwork = fleet_sub.add_parser(
        "work", help="run one fleet worker against an existing fleet "
                     "(what `launch` spawns; also how a second host "
                     "joins a fleet over a shared registry directory)"
    )
    fwork.add_argument("--fleet-id", required=True)
    fwork.add_argument("--worker", required=True,
                       help="this worker's id (unique per fleet, e.g. "
                            "w0 or hostname-0)")
    fwork.add_argument("--poll", type=float, default=0.2,
                       metavar="SECONDS",
                       help="idle poll interval between claim attempts "
                            "(default 0.2)")
    fwork.add_argument("--max-wait", type=float, default=None,
                       metavar="SECONDS",
                       help="give up if the fleet is incomplete after "
                            "this long (default: wait forever)")
    fwork.add_argument("--crash-after-claims", type=int, default=None,
                       metavar="N",
                       help="fault injection: exit hard right after "
                            "winning the Nth claim")
    fwork.add_argument("--fleet-trace", action="store_true",
                       help="record per-point spans as trace shards "
                            "under the fleet directory (merge with "
                            "`python -m repro trace`)")
    _add_registry_flags(fwork, suppress=True)
    fstatus = fleet_sub.add_parser(
        "status", help="one-shot fleet view: claim map, per-worker "
                       "throughput, stale heartbeats (plain ASCII; "
                       "safe in CI logs)"
    )
    fwatch = fleet_sub.add_parser(
        "watch", help="live fleet view: redraw the status until the "
                      "fleet completes (clears the screen only on a "
                      "TTY)"
    )
    for fview in (fstatus, fwatch):
        fview.add_argument("--fleet-id", default=None,
                           help="fleet to inspect (default: the only "
                                "fleet in the registry)")
        fview.add_argument("--json", action="store_true",
                           help="also print the merged status as JSON")
        fview.add_argument("--reap", action="store_true",
                           help="steal expired claims back to the "
                                "unclaimed pool while watching")
        _add_registry_flags(fview, suppress=True)
    fwatch.add_argument("--interval", type=float, default=1.0,
                        help="seconds between redraws (default 1)")
    fwatch.add_argument("--once", action="store_true",
                        help="print one frame and exit (same as "
                             "`fleet status`)")
    fwatch.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="exit after N frames (default: until the "
                             "fleet completes or Ctrl-C)")
    fwatch.add_argument("--no-clear", action="store_true",
                        help="append frames instead of clearing the "
                             "screen between redraws")

    args = parser.parse_args(argv)
    if args.raster_backend:
        from .pipeline.kernels import set_raster_backend

        # Also exported via REPRO_RASTER_BACKEND so --jobs workers and
        # supervised attempts inherit the selection.
        set_raster_backend(args.raster_backend)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "runs": _cmd_runs,
        "diff": _cmd_diff,
        "trend": _cmd_trend,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "stats": _cmd_stats,
        "top": _cmd_top,
        "trace": _cmd_trace,
        "fleet": _cmd_fleet,
        "workloads": _cmd_workloads,
        "goldens": _cmd_goldens,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
