"""CRC32 reference implementations.

The paper's Signature Unit is built on CRC32 [20] with the incremental and
table-based computation schemes of Sun & Kim [21].  Those schemes rely on
the *linearity* of the CRC, which holds cleanly for the "plain polynomial
remainder" convention:

    CRC(M) = M(x) mod G(x)

with zero initial value, no final XOR and no bit reflection, where message
bits are taken MSB-first and G(x) is the standard CRC-32 generator
0x04C11DB7.  All signature hardware in :mod:`repro.core` uses this
convention; this module provides bit-serial and byte-table software models
of it, plus the familiar ZIP-style reflected CRC32 (identical to
:func:`zlib.crc32`) used only for cross-checking in tests.

Under the plain convention, for messages A and B with ``|B| = b`` bits:

    CRC(A || B) = CRC(bits(CRC(A)) || 0^b)  XOR  CRC(B)

which is exactly Algorithm 1 of the paper.
"""

from __future__ import annotations

from ..errors import HashingError

#: Standard CRC-32 generator polynomial, MSB-first (x^32 implied).
POLY = 0x04C11DB7

#: Reflected form of :data:`POLY`, used by the ZIP/zlib convention.
POLY_REFLECTED = 0xEDB88320

_MASK32 = 0xFFFFFFFF


def crc32_bits(bits: str) -> int:
    """CRC of an arbitrary bit string given as a string of '0'/'1'.

    Bit-serial long division; the slowest but most obviously correct
    model, used as the ground truth in property tests.
    """
    if any(c not in "01" for c in bits):
        raise HashingError("bit string may contain only '0' and '1'")
    reg = 0
    for c in bits:
        msb = (reg >> 31) & 1
        reg = ((reg << 1) & _MASK32) | (1 if c == "1" else 0)
        if msb:
            reg ^= POLY
    # Flush: with the plain convention CRC(M) = M(x) mod G, feeding the
    # message bits through the register computes exactly M(x) mod G once
    # every bit has entered, with no augmentation needed -- the register
    # holds the running remainder of the bits seen so far.
    return reg


def crc32_bitwise(data: bytes, init: int = 0) -> int:
    """Plain-convention CRC32 of ``data``, bit-serial, MSB-first.

    ``init`` seeds the remainder register, which lets callers chain calls
    over consecutive chunks of one logical message:

    >>> crc32_bitwise(b"ab") == crc32_bitwise(b"b", init=crc32_bitwise(b"a"))
    True
    """
    reg = init & _MASK32
    for byte in data:
        for i in range(7, -1, -1):
            msb = (reg >> 31) & 1
            reg = ((reg << 1) & _MASK32) | ((byte >> i) & 1)
            if msb:
                reg ^= POLY
    return reg


def _build_byte_table() -> list:
    """256-entry table T with T[b] = CRC contribution of byte b.

    For the byte-at-a-time algorithm we need, for each byte value b,
    the remainder of b(x) * x^32 mod G -- i.e. the effect of shifting a
    byte fully out of the 32-bit register.
    """
    table = []
    for byte in range(256):
        reg = byte << 24
        for _ in range(8):
            if reg & 0x80000000:
                reg = ((reg << 1) & _MASK32) ^ POLY
            else:
                reg = (reg << 1) & _MASK32
        table.append(reg)
    return table


_BYTE_TABLE = _build_byte_table()


def crc32_table(data: bytes, init: int = 0) -> int:
    """Plain-convention CRC32 via the classic byte-table algorithm.

    Bit-identical to :func:`crc32_bitwise` but ~8x faster; this is the
    software fast path the simulator uses for signing bulk data.
    """
    reg = init & _MASK32
    for byte in data:
        # Shift the next byte into the remainder register and reduce the
        # byte that fell off the top: reg' = ((reg<<8)|byte) mod G.
        reg = (((reg << 8) & _MASK32) ^ byte) ^ _BYTE_TABLE[(reg >> 24) & 0xFF]
    return reg


def crc32_zip(data: bytes) -> int:
    """The familiar reflected CRC32 (equals ``zlib.crc32``).

    Not used by the signature hardware (its algebra is awkward for the
    incremental scheme); provided so tests can demonstrate both are true
    CRCs over the same generator polynomial.
    """
    reg = _MASK32
    for byte in data:
        reg ^= byte
        for _ in range(8):
            if reg & 1:
                reg = (reg >> 1) ^ POLY_REFLECTED
            else:
                reg >>= 1
    return reg ^ _MASK32


def bytes_of_crc(crc: int) -> bytes:
    """The 4-byte MSB-first encoding of a CRC value, as it would appear
    on the wire when a CRC register is treated as a 32-bit message."""
    if not (0 <= crc <= _MASK32):
        raise HashingError(f"CRC value {crc:#x} does not fit in 32 bits")
    return crc.to_bytes(4, "big")
