"""XOR-based hash baselines.

Section V states that CRC32 "outperforms well-known hashing approaches
such as XOR-based schemes".  These cheap schemes are implemented here so
the hash-quality benchmark can measure their collision behaviour on real
tile-input bitstreams against CRC32.

All hashes share the signature ``hash(data: bytes) -> int`` (32-bit
result) and, like the CRC units, support incremental folding so they can
drop into the Signature Unit for ablation runs.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF


def _words(data: bytes):
    """Iterate ``data`` as 32-bit big-endian words, zero-padding the tail."""
    tail = len(data) % 4
    if tail:
        data = data + b"\x00" * (4 - tail)
    for (word,) in struct.iter_unpack(">I", data):
        yield word


def xor_fold(data: bytes) -> int:
    """Plain XOR of all 32-bit words.

    Order-insensitive and self-cancelling (two identical words erase each
    other) — the weakest scheme, kept as the lower anchor.
    """
    result = 0
    for word in _words(data):
        result ^= word
    return result


def _rotl(value: int, amount: int) -> int:
    amount &= 31
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def rotate_xor(data: bytes) -> int:
    """Rotate-then-XOR: result is rotated left 1 bit before each fold.

    Order-sensitive but still linear; misses many multi-word swaps.
    """
    result = 0
    for word in _words(data):
        result = _rotl(result, 1) ^ word
    return result


def add32(data: bytes) -> int:
    """Modular sum of 32-bit words (checksum-style)."""
    result = 0
    for word in _words(data):
        result = (result + word) & _MASK32
    return result


def fnv1a(data: bytes) -> int:
    """32-bit FNV-1a — a strong non-CRC comparison point."""
    result = 0x811C9DC5
    for byte in data:
        result = ((result ^ byte) * 0x01000193) & _MASK32
    return result


#: Registry used by the hash-quality experiment; CRC32 is appended by the
#: harness from :mod:`repro.hashing.crc32`.
XOR_SCHEMES = {
    "xor_fold": xor_fold,
    "rotate_xor": rotate_xor,
    "add32": add32,
    "fnv1a": fnv1a,
}
