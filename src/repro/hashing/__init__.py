"""CRC32 signature substrate (Sections III-C .. III-D of the paper).

Public surface:

* :func:`crc32_bitwise` / :func:`crc32_table` — plain-convention CRC32
  reference implementations.
* :func:`shift_crc` / :func:`combine` / :class:`IncrementalCrc` — the
  incremental combination identity of Algorithm 1.
* :class:`ComputeCrcUnit` / :class:`AccumulateCrcUnit` — cycle-counted
  hardware models of the Fig. 8/9 units.
* :data:`XOR_SCHEMES` — weak hash baselines for the Section V comparison.
"""

from .crc32 import POLY, crc32_bits, crc32_bitwise, crc32_table, crc32_zip
from .incremental import (
    IncrementalCrc,
    combine,
    combine_many,
    shift_crc,
    x_pow_mod,
)
from .parallel import (
    AccumulateCrcUnit,
    ComputeCrcUnit,
    ShiftSubunit,
    SignSubunit,
    UnitStats,
    reference_crc,
)
from .tables import LUT_BYTES, lut_for_shift, lut_storage_bytes
from .xor_hash import XOR_SCHEMES, add32, fnv1a, rotate_xor, xor_fold

__all__ = [
    "POLY",
    "crc32_bits",
    "crc32_bitwise",
    "crc32_table",
    "crc32_zip",
    "IncrementalCrc",
    "combine",
    "combine_many",
    "shift_crc",
    "x_pow_mod",
    "AccumulateCrcUnit",
    "ComputeCrcUnit",
    "ShiftSubunit",
    "SignSubunit",
    "UnitStats",
    "reference_crc",
    "LUT_BYTES",
    "lut_for_shift",
    "lut_storage_bytes",
    "XOR_SCHEMES",
    "add32",
    "fnv1a",
    "rotate_xor",
    "xor_fold",
]
