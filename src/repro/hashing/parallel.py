"""Hardware models of the CRC subunits of Figures 8-11.

These classes mirror the paper's block diagrams at the granularity the
timing and energy models need: every LUT read, XOR and cycle is counted.

* :class:`SignSubunit` (Fig. 10) — CRC32 of one fixed-size block using one
  1-KB LUT per byte, combined with a XOR tree.
* :class:`ShiftSubunit` (Fig. 11) — CRC32 of a 32-bit register value
  followed by one block's worth of zeros (the ``CRC << 64`` of
  Algorithms 2 and 3), using four LUTs.
* :class:`ComputeCrcUnit` (Fig. 8, Algorithm 2) — signs a variable-length
  message by iterating Sign+Shift over fixed-size subblocks; reports the
  block count ("Shift Amount") for the accumulate step.
* :class:`AccumulateCrcUnit` (Fig. 9, Algorithm 3) — re-aligns a stored
  tile CRC by repeatedly applying the Shift subunit.

All units are bit-exact against the reference :func:`crc32_table` over the
(zero-padded) message; tests in ``tests/hashing`` prove it.
"""

from __future__ import annotations

import dataclasses

from ..errors import HashingError
from .crc32 import bytes_of_crc, crc32_table
from .tables import lut_for_shift


@dataclasses.dataclass
class UnitStats:
    """Activity counters for one CRC unit, consumed by the power model."""

    invocations: int = 0
    lut_reads: int = 0
    xor_ops: int = 0
    cycles: int = 0

    def reset(self) -> None:
        self.invocations = 0
        self.lut_reads = 0
        self.xor_ops = 0
        self.cycles = 0

    def merge(self, other: "UnitStats") -> None:
        self.invocations += other.invocations
        self.lut_reads += other.lut_reads
        self.xor_ops += other.xor_ops
        self.cycles += other.cycles


class SignSubunit:
    """CRC32 of one ``block_bytes``-byte block via parallel LUTs."""

    def __init__(self, block_bytes: int = 8) -> None:
        if block_bytes <= 0:
            raise HashingError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self._luts = [
            lut_for_shift(block_bytes - 1 - i) for i in range(block_bytes)
        ]
        self.stats = UnitStats()

    def crc(self, block: bytes) -> int:
        """CRC of ``block``; its length must equal ``block_bytes``."""
        if len(block) != self.block_bytes:
            raise HashingError(
                f"Sign subunit expects {self.block_bytes}-byte blocks, "
                f"got {len(block)}"
            )
        result = 0
        for i, byte in enumerate(block):
            result ^= self._luts[i][byte]
        self.stats.invocations += 1
        self.stats.lut_reads += self.block_bytes
        self.stats.xor_ops += self.block_bytes - 1
        self.stats.cycles += 1
        return result


class ShiftSubunit:
    """CRC32 of a 32-bit CRC value followed by ``block_bytes`` zeros.

    Realizes one application of ``CRC(crc << 8*block_bytes)``; the four
    bytes of the input CRC each index a LUT whose zero-shift accounts for
    both their position within the 32-bit word and the appended zeros.
    """

    def __init__(self, block_bytes: int = 8) -> None:
        if block_bytes <= 0:
            raise HashingError("block_bytes must be positive")
        self.block_bytes = block_bytes
        # Byte j of the CRC (MSB-first) is followed by (3 - j) CRC bytes
        # and then block_bytes zeros.
        self._luts = [lut_for_shift(3 - j + block_bytes) for j in range(4)]
        self.stats = UnitStats()

    def shift(self, crc: int) -> int:
        value = bytes_of_crc(crc)
        result = 0
        for j, byte in enumerate(value):
            result ^= self._luts[j][byte]
        self.stats.invocations += 1
        self.stats.lut_reads += 4
        self.stats.xor_ops += 3
        self.stats.cycles += 1
        return result


class ComputeCrcUnit:
    """Fig. 8 / Algorithm 2: sign a variable-length message.

    Messages whose length is not a multiple of the subblock size are
    zero-padded at the end (the simulator's framing layer in
    :mod:`repro.core.signature` always records the padded length, so
    padding cannot create aliasing between different messages of the
    same padded length).

    :meth:`compute` returns ``(crc, shift_amount)`` where ``shift_amount``
    counts subblocks, matching the Shift Amount P / Shift Amount C
    registers of Fig. 7.
    """

    def __init__(self, block_bytes: int = 8) -> None:
        self.block_bytes = block_bytes
        self.sign = SignSubunit(block_bytes)
        self.shifter = ShiftSubunit(block_bytes)
        self.stats = UnitStats()

    def pad(self, message: bytes) -> bytes:
        """Zero-pad ``message`` to a whole number of subblocks."""
        remainder = len(message) % self.block_bytes
        if remainder:
            message = message + b"\x00" * (self.block_bytes - remainder)
        return message

    def compute(self, message: bytes) -> tuple:
        """Sign ``message``; returns ``(crc32, shift_amount_subblocks)``."""
        message = self.pad(message)
        crc_out = 0
        shift_amount = 0
        for offset in range(0, len(message), self.block_bytes):
            block = message[offset:offset + self.block_bytes]
            crc_block = self.sign.crc(block)
            if shift_amount == 0:
                # First subblock: the register is zero, shifting it is a
                # no-op the hardware elides.
                crc_out = crc_block
            else:
                crc_out = crc_block ^ self.shifter.shift(crc_out)
                self.stats.xor_ops += 1
            shift_amount += 1
            self.stats.cycles += 1
        self.stats.invocations += 1
        return crc_out, shift_amount


class AccumulateCrcUnit:
    """Fig. 9 / Algorithm 3: left-shift a stored tile CRC.

    Applies the Shift subunit once per subblock of the message that was
    just signed, re-aligning the tile's previous CRC so it can be XORed
    with the new block's CRC (Algorithm 1's ``ComputeCRC(CRC_A << b)``).
    """

    def __init__(self, block_bytes: int = 8) -> None:
        self.block_bytes = block_bytes
        self.shifter = ShiftSubunit(block_bytes)
        self.stats = UnitStats()

    def accumulate(self, crc: int, shift_amount: int) -> int:
        if shift_amount < 0:
            raise HashingError("shift_amount must be non-negative")
        result = crc
        for _ in range(shift_amount):
            result = self.shifter.shift(result)
            self.stats.cycles += 1
        self.stats.invocations += 1
        return result


def reference_crc(message: bytes, block_bytes: int = 8) -> int:
    """CRC the hardware should produce for ``message``: the plain CRC32
    of the message zero-padded to a whole number of subblocks."""
    unit = ComputeCrcUnit(block_bytes)
    return crc32_table(unit.pad(message))
