"""Precomputed CRC look-up tables for the parallel scheme (Section III-D).

A message of ``k`` bytes ``B1..Bk`` satisfies

    CRC(B1..Bk) = XOR_i CRC(Bi || 0^(8*(k-i)))

so each byte position needs one 256-entry LUT mapping a byte value to the
CRC of that byte followed by a fixed number of zero bytes.  Each LUT entry
is a 32-bit CRC, so each LUT costs 1 KB of storage — eight of them for the
paper's 8-byte subblock Sign subunit, four more for the Shift subunit.
"""

from __future__ import annotations

import functools

from ..errors import HashingError
from .crc32 import crc32_table


@functools.lru_cache(maxsize=None)
def lut_for_shift(shift_bytes: int) -> tuple:
    """The 256-entry LUT for a byte followed by ``shift_bytes`` zeros.

    ``lut_for_shift(s)[b] == crc32_table(bytes([b]) + b"\\x00" * s)``.
    Cached: the hardware holds these in ROM, so building them once per
    process mirrors the hardware cost model (storage, not recomputation).
    """
    if shift_bytes < 0:
        raise HashingError("shift_bytes must be non-negative")
    zeros = b"\x00" * shift_bytes
    return tuple(crc32_table(bytes([b]) + zeros) for b in range(256))


LUT_BYTES = 256 * 4  # 1 KB per table, as the paper states


def lut_storage_bytes(block_bytes: int) -> int:
    """Total LUT ROM for a Sign subunit over ``block_bytes``-byte blocks
    plus its companion Shift subunit (4 LUTs for the 32-bit CRC)."""
    return (block_bytes + 4) * LUT_BYTES
