"""Incremental CRC combination (Algorithm 1 of the paper).

The key identity, valid for the plain-remainder CRC convention of
:mod:`repro.hashing.crc32`: for a message ``A`` with known CRC and a
following submessage ``B`` of ``b`` bits,

    CRC(A || B) = shift_crc(CRC(A), b) XOR CRC(B)

where ``shift_crc(c, b) = c(x) * x^b mod G(x)`` — equivalently the CRC of
the 32-bit value ``c`` followed by ``b`` zero bits, which is how the
hardware realizes it ("ComputeCRC(CRC_A << b)" in Algorithm 1).

Two implementations of the shift are provided:

* :func:`shift_crc` — O(log b) GF(2) polynomial exponentiation (the
  software fast path, equivalent to zlib's ``crc32_combine`` trick);
* byte-at-a-time shifting via the CRC byte table, which is what the
  hardware Shift subunit models in :mod:`repro.hashing.parallel`.
"""

from __future__ import annotations

import functools

import numpy as np

from ..errors import HashingError
from .crc32 import _MASK32, POLY, crc32_table


def _gf2_mulmod(a: int, b: int) -> int:
    """(a(x) * b(x)) mod G(x) for 32-bit polynomials a, b."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        carry = a & 0x80000000
        a = (a << 1) & _MASK32
        if carry:
            a ^= POLY
    return result


def x_pow_mod(n: int) -> int:
    """x^n mod G(x), by square-and-multiply."""
    if n < 0:
        raise HashingError("shift amount must be non-negative")
    result = 1          # the polynomial 1
    base = 2            # the polynomial x
    while n:
        if n & 1:
            result = _gf2_mulmod(result, base)
        base = _gf2_mulmod(base, base)
        n >>= 1
    return result


def shift_crc(crc: int, nbits: int) -> int:
    """CRC of the message ``bits(crc) || 0^nbits``: crc(x)*x^nbits mod G."""
    return _gf2_mulmod(crc & _MASK32, x_pow_mod(nbits))


def combine(crc_a: int, crc_b: int, len_b_bits: int) -> int:
    """CRC of the concatenation A||B given CRC(A), CRC(B) and |B| in bits."""
    return shift_crc(crc_a, len_b_bits) ^ crc_b


@functools.lru_cache(maxsize=4096)
def _shift_columns(nbits: int) -> "np.ndarray":
    """The GF(2)-linear map 'multiply by x^nbits mod G' as 32 column
    vectors: column k is shift_crc(1 << k, nbits).  Shifting a CRC is
    then the XOR of the columns selected by its set bits, which
    vectorizes over arrays of CRCs."""
    xn = x_pow_mod(nbits)
    columns = [_gf2_mulmod(1 << k, xn) for k in range(32)]
    return np.asarray(columns, dtype=np.uint32)


@functools.lru_cache(maxsize=512)
def _shift_tables(nbits: int) -> "np.ndarray":
    """Byte-sliced lookup tables for 'multiply by x^nbits mod G': a
    (4, 256) uint32 array where ``tables[j][v]`` is the shift of the
    32-bit value ``v << (8*j)``.  Shifting a CRC is then four table
    lookups XORed together — the GF(2)-linear map is additive over any
    partition of the input bits, so this is bit-exact with the
    column-per-bit formulation of :func:`_shift_columns`."""
    columns = _shift_columns(nbits)
    tables = np.zeros((4, 256), dtype=np.uint32)
    values = np.arange(256, dtype=np.uint32)
    for byte_index in range(4):
        for bit in range(8):
            mask = (values >> np.uint32(bit)) & np.uint32(1) == 1
            tables[byte_index][mask] ^= columns[byte_index * 8 + bit]
    return tables


def combine_many(crcs: "np.ndarray", crc_b: int, len_b_bits: int) -> "np.ndarray":
    """Vectorized :func:`combine`: fold submessage B (CRC ``crc_b``,
    ``len_b_bits`` bits) onto every CRC in ``crcs`` at once.

    Bit-exact with per-element :func:`combine`; used by the Signature
    Unit's software fast path when one primitive updates many tiles.
    """
    crcs = np.asarray(crcs, dtype=np.uint32)
    t0, t1, t2, t3 = _shift_tables(len_b_bits)
    byte = np.uint32(0xFF)
    result = (
        t0[crcs & byte]
        ^ t1[(crcs >> np.uint32(8)) & byte]
        ^ t2[(crcs >> np.uint32(16)) & byte]
        ^ t3[crcs >> np.uint32(24)]
    )
    return result ^ np.uint32(crc_b)


class IncrementalCrc:
    """Software model of Algorithm 1: a CRC built from submessages.

    >>> inc = IncrementalCrc()
    >>> inc.append(b"hello ")
    >>> inc.append(b"world")
    >>> inc.value == crc32_table(b"hello world")
    True
    """

    def __init__(self, value: int = 0) -> None:
        self._value = value & _MASK32

    @property
    def value(self) -> int:
        return self._value

    def append(self, data: bytes) -> None:
        """Fold the next submessage into the running CRC."""
        crc_sub = crc32_table(data)
        self._value = combine(self._value, crc_sub, len(data) * 8)

    def append_crc(self, crc_sub: int, len_bits: int) -> None:
        """Fold a precomputed submessage CRC of known bit length."""
        self._value = combine(self._value, crc_sub, len_bits)

    def copy(self) -> "IncrementalCrc":
        return IncrementalCrc(self._value)
