"""4x4 transform matrices (column-vector convention, float32).

Matrices transform homogeneous points as ``M @ p``; :func:`transform`
applies a matrix to an ``(n, 4)`` point array.  The workload generators
compose these to animate objects and cameras; the vertex shaders receive
them flattened inside the drawcall constants, which is what makes camera
motion perturb every tile's signature.
"""

from __future__ import annotations

import math

import numpy as np

from .vec import as_points


def identity() -> np.ndarray:
    return np.eye(4, dtype=np.float32)


def translate(tx: float, ty: float, tz: float = 0.0) -> np.ndarray:
    m = identity()
    m[0, 3] = tx
    m[1, 3] = ty
    m[2, 3] = tz
    return m


def scale(sx: float, sy: float, sz: float = 1.0) -> np.ndarray:
    m = identity()
    m[0, 0] = sx
    m[1, 1] = sy
    m[2, 2] = sz
    return m


def rotate_z(radians: float) -> np.ndarray:
    c, s = math.cos(radians), math.sin(radians)
    m = identity()
    m[0, 0], m[0, 1] = c, -s
    m[1, 0], m[1, 1] = s, c
    return m


def rotate_y(radians: float) -> np.ndarray:
    c, s = math.cos(radians), math.sin(radians)
    m = identity()
    m[0, 0], m[0, 2] = c, s
    m[2, 0], m[2, 2] = -s, c
    return m


def rotate_x(radians: float) -> np.ndarray:
    c, s = math.cos(radians), math.sin(radians)
    m = identity()
    m[1, 1], m[1, 2] = c, -s
    m[2, 1], m[2, 2] = s, c
    return m


def ortho(left: float, right: float, bottom: float, top: float,
          near: float = -1.0, far: float = 1.0) -> np.ndarray:
    """Orthographic projection to the [-1, 1] NDC cube."""
    m = identity()
    m[0, 0] = 2.0 / (right - left)
    m[1, 1] = 2.0 / (top - bottom)
    m[2, 2] = -2.0 / (far - near)
    m[0, 3] = -(right + left) / (right - left)
    m[1, 3] = -(top + bottom) / (top - bottom)
    m[2, 3] = -(far + near) / (far - near)
    return m


def ortho2d(width: float = 1.0, height: float = 1.0) -> np.ndarray:
    """2D screen-space projection for the layered-quad workloads.

    Maps x in [0, width] left-to-right and y in [0, height] **top to
    bottom** (y = 0 is the top screen row, matching pixel and tile-id
    order), and passes object z in [0, 1] straight through to final
    depth (smaller z = closer), unlike the GL :func:`ortho` convention
    which negates z.
    """
    m = identity()
    m[0, 0] = 2.0 / width
    m[1, 1] = -2.0 / height
    m[0, 3] = -1.0
    m[1, 3] = 1.0
    m[2, 2] = 2.0
    m[2, 3] = -1.0
    return m


def perspective(fov_y_radians: float, aspect: float,
                near: float, far: float) -> np.ndarray:
    """Right-handed perspective projection."""
    f = 1.0 / math.tan(fov_y_radians / 2.0)
    m = np.zeros((4, 4), dtype=np.float32)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (far + near) / (near - far)
    m[2, 3] = (2.0 * far * near) / (near - far)
    m[3, 2] = -1.0
    return m


def look_at(eye, target, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """View matrix placing the camera at ``eye`` looking at ``target``."""
    eye = np.asarray(eye, dtype=np.float32)
    target = np.asarray(target, dtype=np.float32)
    up = np.asarray(up, dtype=np.float32)
    forward = target - eye
    forward = forward / np.linalg.norm(forward)
    right = np.cross(forward, up)
    right = right / np.linalg.norm(right)
    true_up = np.cross(right, forward)
    m = identity()
    m[0, :3] = right
    m[1, :3] = true_up
    m[2, :3] = -forward
    m[0, 3] = -np.dot(right, eye)
    m[1, 3] = -np.dot(true_up, eye)
    m[2, 3] = np.dot(forward, eye)
    return m


def compose(*matrices: np.ndarray) -> np.ndarray:
    """Product of matrices, applied right-to-left (like M1 @ M2 @ ...)."""
    result = identity()
    for m in matrices:
        result = result @ np.asarray(m, dtype=np.float32)
    return result.astype(np.float32)


def transform(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to ``(n, 4)`` homogeneous points."""
    points = as_points(points, 4)
    return (points @ np.asarray(matrix, dtype=np.float32).T).astype(np.float32)
