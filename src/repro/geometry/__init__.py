"""Geometry substrate: vectors, matrices, meshes and assembled primitives."""

from . import clipping, mat4, vec
from .meshes import box_buffer, grid_buffer, ring_strip_buffer
from .primitives import DrawState, Primitive, VertexBuffer, quad_buffer

__all__ = [
    "clipping",
    "mat4",
    "vec",
    "box_buffer",
    "grid_buffer",
    "ring_strip_buffer",
    "DrawState",
    "Primitive",
    "VertexBuffer",
    "quad_buffer",
]
