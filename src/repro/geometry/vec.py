"""Small-vector helpers over numpy arrays.

The pipeline keeps all bulk data as numpy arrays; these helpers build and
validate the shapes it uses (``(n, k)`` float32 arrays) and provide the
handful of vector operations the shaders and rasterizer need.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError


def vec2(x: float, y: float) -> np.ndarray:
    return np.array([x, y], dtype=np.float32)


def vec3(x: float, y: float, z: float) -> np.ndarray:
    return np.array([x, y, z], dtype=np.float32)


def vec4(x: float, y: float, z: float, w: float = 1.0) -> np.ndarray:
    return np.array([x, y, z, w], dtype=np.float32)


def as_points(array, components: int) -> np.ndarray:
    """Coerce ``array`` to an ``(n, components)`` float32 array."""
    points = np.asarray(array, dtype=np.float32)
    if points.ndim != 2 or points.shape[1] != components:
        raise PipelineError(
            f"expected an (n, {components}) array, got shape {points.shape}"
        )
    return points


def homogenize(points: np.ndarray) -> np.ndarray:
    """Append w=1 to ``(n, 3)`` points, producing ``(n, 4)``."""
    points = as_points(points, 3)
    ones = np.ones((points.shape[0], 1), dtype=np.float32)
    return np.hstack([points, ones])


def perspective_divide(clip: np.ndarray) -> np.ndarray:
    """Divide clip-space ``(n, 4)`` points by w, yielding NDC ``(n, 3)``.

    w values at or below zero indicate points behind the eye; callers
    must clip first (see :mod:`repro.geometry.clipping`).
    """
    clip = as_points(clip, 4)
    w = clip[:, 3:4]
    if np.any(w == 0):
        raise PipelineError("perspective divide by zero w; clip first")
    return (clip[:, :3] / w).astype(np.float32)


def dot_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise dot product of two ``(n, k)`` arrays -> ``(n,)``."""
    return np.einsum("ij,ij->i", a, b)


def normalize_rows(v: np.ndarray) -> np.ndarray:
    """Normalize each row vector; zero rows stay zero."""
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    safe = np.where(norms == 0, 1.0, norms)
    return (v / safe).astype(np.float32)


def saturate(v: np.ndarray) -> np.ndarray:
    """Clamp to [0, 1], the range of color components."""
    return np.clip(v, 0.0, 1.0)
