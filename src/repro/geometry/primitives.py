"""Vertex buffers and assembled primitives.

Two representations flow through the pipeline:

* :class:`VertexBuffer` — what a drawcall submits: object-space positions,
  per-vertex attributes, and a triangle index list.
* :class:`Primitive` — what Primitive Assembly emits: one screen-space
  triangle with interpolatable varyings plus the *post-transform* data
  that Rendering Elimination signs (clip-space positions and varyings,
  serialized by :meth:`Primitive.attribute_bytes`).

The paper counts a primitive "attribute" as 48 bytes — three vertices of
four float32 components — so :meth:`Primitive.num_attributes` reports the
position plus each varying (padded to vec4) as one attribute each.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..errors import PipelineError
from .vec import as_points


class VertexBuffer:
    """Indexed triangle mesh with named per-vertex attributes."""

    def __init__(self, positions, indices, attributes=None,
                 buffer_id: int = 0) -> None:
        self.buffer_id = buffer_id
        self.positions = as_points(positions, 3)
        self.indices = np.asarray(indices, dtype=np.int32)
        if self.indices.ndim != 2 or self.indices.shape[1] != 3:
            raise PipelineError(
                f"indices must be (m, 3) triangles, got {self.indices.shape}"
            )
        if self.indices.size and self.indices.max() >= len(self.positions):
            raise PipelineError("index out of range of vertex positions")
        self.attributes: dict = {}
        for name, values in (attributes or {}).items():
            values = np.asarray(values, dtype=np.float32)
            if values.ndim != 2 or values.shape[0] != len(self.positions):
                raise PipelineError(
                    f"attribute {name!r} must have one row per vertex"
                )
            self.attributes[name] = values

    @property
    def num_vertices(self) -> int:
        return len(self.positions)

    @property
    def num_triangles(self) -> int:
        return len(self.indices)

    def vertex_bytes(self) -> int:
        """Bytes fetched per vertex by the Vertex Fetcher."""
        per_vertex = self.positions.shape[1] * 4
        for values in self.attributes.values():
            per_vertex += values.shape[1] * 4
        return per_vertex

    def vertex_addresses(self, vertex_indices) -> "np.ndarray":
        """Simulated byte addresses of the fetched vertices, placing each
        buffer in a disjoint 16-MB region keyed by ``buffer_id``."""
        base = self.buffer_id * (1 << 24)
        stride = self.vertex_bytes()
        indices = np.asarray(vertex_indices, dtype=np.int64)
        return base + indices * stride


@dataclasses.dataclass
class DrawState:
    """Pipeline state bound when a drawcall executes.

    ``constants`` is the flat float32 uniform block — the "scene
    constants" whose bytes enter the tile signature; ``constants_version``
    increments whenever the application uploads new constants, letting the
    Signature Unit clear its per-drawcall bitmap exactly when the paper
    says it should.
    """

    shader: "typing.Any"               # repro.shaders.program.ShaderProgram
    constants: np.ndarray
    textures: tuple = ()
    drawcall_id: int = 0
    constants_version: int = 0
    depth_test: bool = True
    depth_write: bool = True
    cull_backfaces: bool = False

    _constants_bytes: typing.Optional[bytes] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def constants_bytes(self) -> bytes:
        """Serialized uniform block, cached per ``constants_version``:
        uploads replace the DrawState (or bump the version via a new
        instance), so the bytes are immutable for this object's life."""
        if self._constants_bytes is None:
            self._constants_bytes = np.ascontiguousarray(
                self.constants, dtype=np.float32
            ).tobytes()
        return self._constants_bytes


@dataclasses.dataclass
class Primitive:
    """One assembled, screen-space triangle."""

    screen: np.ndarray                 # (3, 2) pixel coordinates
    depth: np.ndarray                  # (3,) depth in [0, 1]
    clip: np.ndarray                   # (3, 4) clip-space positions
    varyings: dict                     # name -> (3, k) float32
    state: DrawState
    prim_id: int = 0
    pb_offset: int = -1                # byte offset in the Parameter Buffer
    _attr_bytes: typing.Optional[bytes] = dataclasses.field(
        default=None, repr=False, compare=False
    )
    _bounds: typing.Optional[tuple] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def signed_area2(self) -> float:
        """Twice the signed area of the screen-space triangle."""
        (x0, y0), (x1, y1), (x2, y2) = self.screen
        return float((x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0))

    @property
    def num_attributes(self) -> int:
        """Attribute count in the paper's 48-byte units: position + one
        per varying."""
        return 1 + len(self.varyings)

    def attribute_bytes(self) -> bytes:
        """Serialize the data Rendering Elimination signs for this
        primitive: clip-space positions then each varying, vec4-padded,
        in sorted name order so the byte stream is deterministic.

        The serialization is cached: a primitive's post-transform data is
        immutable once assembled, and the Signature Unit and Parameter
        Buffer accounting both ask for these bytes on every tile overlap.
        """
        if self._attr_bytes is not None:
            return self._attr_bytes
        parts = [np.ascontiguousarray(self.clip, dtype=np.float32).tobytes()]
        for name in sorted(self.varyings):
            values = self.varyings[name]
            if values.shape[1] < 4:
                padded = np.zeros((3, 4), dtype=np.float32)
                padded[:, :values.shape[1]] = values
                values = padded
            parts.append(np.ascontiguousarray(values, dtype=np.float32).tobytes())
        self._attr_bytes = b"".join(parts)
        return self._attr_bytes

    def parameter_buffer_bytes(self) -> int:
        """Bytes this primitive occupies in the Parameter Buffer."""
        return len(self.attribute_bytes()) + 16  # attributes + header

    def bounds(self) -> tuple:
        """Integer pixel bounding box (x0, y0, x1, y1), inclusive-exclusive.

        Primitive Assembly precomputes this for whole drawcalls at once;
        the lazy path below serves primitives built directly in tests.
        """
        if self._bounds is None:
            xs = self.screen[:, 0]
            ys = self.screen[:, 1]
            self._bounds = (
                int(np.floor(xs.min())),
                int(np.floor(ys.min())),
                int(np.ceil(xs.max())) + 1,
                int(np.ceil(ys.max())) + 1,
            )
        return self._bounds


def quad_buffer(x0: float, y0: float, x1: float, y1: float, z: float = 0.5,
                uv_scale: float = 1.0, attributes=None,
                subdivide: int = 1) -> VertexBuffer:
    """Axis-aligned quad in normalized [0,1] screen space.

    The workhorse mesh of the 2D workloads.  ``uv`` coordinates are
    generated automatically and scaled by ``uv_scale``.  ``subdivide``
    tessellates the quad into an NxN grid (2*N*N triangles), which is
    how the workloads model the geometric detail of real game layers —
    it multiplies Parameter Buffer traffic and binning work without
    changing the rendered image.
    """
    if subdivide < 1:
        raise PipelineError("subdivide must be >= 1")
    n = subdivide
    xs = np.linspace(x0, x1, n + 1, dtype=np.float32)
    ys = np.linspace(y0, y1, n + 1, dtype=np.float32)
    us = np.linspace(0.0, uv_scale, n + 1, dtype=np.float32)

    positions = []
    uv = []
    for row in range(n + 1):
        for col in range(n + 1):
            positions.append([xs[col], ys[row], z])
            uv.append([us[col], us[row]])

    indices = []
    stride = n + 1
    for row in range(n):
        for col in range(n):
            a = row * stride + col
            b = a + 1
            c = a + stride + 1
            d = a + stride
            indices.append([a, b, c])
            indices.append([a, c, d])

    attrs = {"uv": np.asarray(uv, dtype=np.float32)}
    for name, values in (attributes or {}).items():
        attrs[name] = values
    return VertexBuffer(positions, indices, attrs)
