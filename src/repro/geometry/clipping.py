"""Clipping and culling applied at the end of Primitive Assembly.

The baseline (Section II) discards non-visible primitives before they
reach the Tiling Engine, which matters for Rendering Elimination: culled
primitives never touch any tile's signature.

This implementation performs:

* near-plane rejection — triangles with any vertex at w <= epsilon are
  dropped whole rather than clipped into sub-triangles (the synthetic
  workloads keep geometry in front of the camera, so polygon splitting
  would never fire; rejecting keeps the signature stream well-defined);
* viewport rejection — triangles entirely outside the screen rectangle;
* backface culling — screen-space triangles with non-positive signed
  area when culling is enabled for the drawcall;
* degenerate rejection — zero-area triangles.
"""

from __future__ import annotations

import numpy as np

W_EPSILON = 1e-6


def near_plane_ok(clip: np.ndarray) -> bool:
    """True when every vertex is strictly in front of the near plane."""
    return bool(np.all(clip[:, 3] > W_EPSILON))


def viewport_overlaps(screen: np.ndarray, width: int, height: int) -> bool:
    """True when the triangle's bounding box intersects the screen."""
    xs, ys = screen[:, 0], screen[:, 1]
    return not (
        xs.max() < 0 or xs.min() >= width or ys.max() < 0 or ys.min() >= height
    )


def is_backfacing(signed_area2: float) -> bool:
    """Counter-clockwise front faces: non-positive area means back-facing
    (or degenerate)."""
    return signed_area2 <= 0.0


def is_degenerate(signed_area2: float, epsilon: float = 1e-9) -> bool:
    return abs(signed_area2) < epsilon
