"""3D mesh generators: boxes, grids, strips.

The 2D workloads build everything from :func:`~repro.geometry.primitives.quad_buffer`;
these generators provide the 3D building blocks used by the perspective
examples and by downstream users composing their own scenes.  All
meshes carry ``uv`` coordinates and, where meaningful, per-face
``normal`` attributes so they work with the lit shader out of the box.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import PipelineError
from .primitives import VertexBuffer

#: Face definitions for :func:`box_buffer`: (normal, four corner signs).
_BOX_FACES = (
    ((0, 0, 1), ((-1, -1, 1), (1, -1, 1), (1, 1, 1), (-1, 1, 1))),
    ((0, 0, -1), ((1, -1, -1), (-1, -1, -1), (-1, 1, -1), (1, 1, -1))),
    ((1, 0, 0), ((1, -1, 1), (1, -1, -1), (1, 1, -1), (1, 1, 1))),
    ((-1, 0, 0), ((-1, -1, -1), (-1, -1, 1), (-1, 1, 1), (-1, 1, -1))),
    ((0, 1, 0), ((-1, 1, 1), (1, 1, 1), (1, 1, -1), (-1, 1, -1))),
    ((0, -1, 0), ((-1, -1, -1), (1, -1, -1), (1, -1, 1), (-1, -1, 1))),
)


def box_buffer(size: float = 1.0, buffer_id: int = 0) -> VertexBuffer:
    """An axis-aligned box centered at the origin (24 vertices, 12
    triangles) with per-face normals and per-face uv in [0, 1]."""
    if size <= 0:
        raise PipelineError("box size must be positive")
    half = size / 2.0
    positions, normals, uvs, indices = [], [], [], []
    corner_uv = ((0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0))
    for normal, corners in _BOX_FACES:
        base = len(positions)
        for corner, uv in zip(corners, corner_uv):
            positions.append([half * c for c in corner])
            normals.append(list(normal))
            uvs.append(list(uv))
        indices.append([base, base + 1, base + 2])
        indices.append([base, base + 2, base + 3])
    return VertexBuffer(
        positions, indices, {"uv": uvs, "normal": normals},
        buffer_id=buffer_id,
    )


def grid_buffer(width: float, depth: float, segments: int = 8,
                y: float = 0.0, uv_scale: float = 1.0,
                buffer_id: int = 0) -> VertexBuffer:
    """A horizontal grid in the XZ plane (a ground/floor plane) with
    upward normals, centered at the origin."""
    if segments < 1:
        raise PipelineError("segments must be >= 1")
    n = segments
    xs = np.linspace(-width / 2.0, width / 2.0, n + 1)
    zs = np.linspace(-depth / 2.0, depth / 2.0, n + 1)
    positions, uvs, normals = [], [], []
    for row in range(n + 1):
        for col in range(n + 1):
            positions.append([xs[col], y, zs[row]])
            uvs.append([uv_scale * col / n, uv_scale * row / n])
            normals.append([0.0, 1.0, 0.0])
    indices = []
    stride = n + 1
    for row in range(n):
        for col in range(n):
            a = row * stride + col
            indices.append([a, a + 1, a + stride + 1])
            indices.append([a, a + stride + 1, a + stride])
    return VertexBuffer(
        positions, indices, {"uv": uvs, "normal": normals},
        buffer_id=buffer_id,
    )


def ring_strip_buffer(radius: float = 1.0, height: float = 1.0,
                      segments: int = 16, uv_scale: float = 1.0,
                      buffer_id: int = 0) -> VertexBuffer:
    """A cylindrical wall around the origin (corridor/arena walls),
    normals pointing inward."""
    if segments < 3:
        raise PipelineError("a ring needs at least 3 segments")
    positions, uvs, normals = [], [], []
    for i in range(segments + 1):
        angle = 2.0 * math.pi * i / segments
        x, z = radius * math.cos(angle), radius * math.sin(angle)
        for level, v in ((0.0, 0.0), (height, 1.0)):
            positions.append([x, level, z])
            uvs.append([uv_scale * i / segments, v])
            normals.append([-math.cos(angle), 0.0, -math.sin(angle)])
    indices = []
    for i in range(segments):
        a = 2 * i
        indices.append([a, a + 2, a + 3])
        indices.append([a, a + 3, a + 1])
    return VertexBuffer(
        positions, indices, {"uv": uvs, "normal": normals},
        buffer_id=buffer_id,
    )
