"""Strict structural validation of Chrome trace-event payloads.

``chrome://tracing`` and Perfetto silently drop events they cannot
interpret, so "the trace loads" is not a test.  This module pins the
subset of the trace-event format the recorder emits: every event must
carry ``name``/``ph``/``pid``/``ts``/``tid`` with the right types, the
phase must be one we emit, and duration events must nest — every ``E``
closes the matching ``B`` on its ``(pid, tid)`` track, LIFO, with a
non-decreasing timestamp, and no span is left open at the end.

Cross-process (merged distributed) traces get two further checks:
timestamps must be non-decreasing *per track* in event order (metadata
events, pinned at ``ts=0``, are exempt), and any ``args.span_id`` must
be globally unique — the merger's pid-prefixed allocation makes
collisions impossible unless something re-used an id.

Used by the test suite (so viewer compatibility is a regression, not a
surprise), by the service tests on merged daemon traces, and by
``python -m repro report --validate-trace`` / ``repro trace``.
"""

from __future__ import annotations

import json

from ..errors import ReproError

#: Fields every trace event must carry.
REQUIRED_FIELDS = ("name", "ph", "pid", "tid", "ts")

#: Event phases the recorder emits (duration, instant, counter, metadata).
KNOWN_PHASES = ("B", "E", "i", "C", "M")


def validate_event(event, index: int) -> None:
    """Check one event's required fields and types."""
    if not isinstance(event, dict):
        raise ReproError(f"event {index}: not an object")
    for field in REQUIRED_FIELDS:
        if field not in event:
            raise ReproError(f"event {index}: missing field {field!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise ReproError(f"event {index}: name must be a non-empty string")
    if event["ph"] not in KNOWN_PHASES:
        raise ReproError(
            f"event {index}: unknown phase {event['ph']!r} "
            f"(expected one of {KNOWN_PHASES})"
        )
    for field in ("pid", "tid"):
        if not isinstance(event[field], int) or isinstance(event[field], bool):
            raise ReproError(f"event {index}: {field} must be an integer")
    ts = event["ts"]
    if isinstance(ts, bool) or not isinstance(ts, (int, float)):
        raise ReproError(f"event {index}: ts must be a number")
    if ts < 0:
        raise ReproError(f"event {index}: ts must be >= 0, got {ts}")
    if "args" in event and not isinstance(event["args"], dict):
        raise ReproError(f"event {index}: args must be an object")


def validate_trace(payload) -> dict:
    """Validate a trace payload; returns summary counts.

    ``payload`` is the JSON object form (``{"traceEvents": [...]}``), a
    bare event list, or a :class:`~repro.obs.tracer.TraceRecorder`.
    Raises :class:`ReproError` on the first violation; returns
    ``{"events": n, "spans": n, "instants": n, "counters": n,
    "pids": n, "span_ids": n}``.
    """
    if hasattr(payload, "to_json"):
        payload = payload.to_json()
    if isinstance(payload, dict):
        if "traceEvents" not in payload:
            raise ReproError("trace payload has no traceEvents array")
        events = payload["traceEvents"]
    else:
        events = payload
    if not isinstance(events, list):
        raise ReproError("traceEvents must be an array")

    stacks: dict = {}          # (pid, tid) -> [(name, ts)]
    last_ts: dict = {}         # (pid, tid) -> last non-meta ts seen
    span_ids: set = set()
    pids: set = set()
    counts = {"events": 0, "spans": 0, "instants": 0, "counters": 0}
    for index, event in enumerate(events):
        validate_event(event, index)
        counts["events"] += 1
        track = (event["pid"], event["tid"])
        ph = event["ph"]
        pids.add(event["pid"])
        if ph == "B":
            span_id = (event.get("args") or {}).get("span_id")
            if span_id is not None:
                if span_id in span_ids:
                    raise ReproError(
                        f"event {index}: duplicate span_id {span_id!r}"
                    )
                span_ids.add(span_id)
            stacks.setdefault(track, []).append((event["name"], event["ts"]))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                raise ReproError(
                    f"event {index}: E with no open B on track {track}"
                )
            name, begin_ts = stack.pop()
            if event["name"] != name:
                raise ReproError(
                    f"event {index}: E named {event['name']!r} closes "
                    f"B named {name!r} on track {track}"
                )
            if event["ts"] < begin_ts:
                raise ReproError(
                    f"event {index}: span {name!r} ends before it begins"
                )
            counts["spans"] += 1
        elif ph == "i":
            counts["instants"] += 1
        elif ph == "C":
            counts["counters"] += 1
        if ph != "M":
            # Each track must read in time order — Perfetto renders
            # tracks independently, and a merged multi-process trace
            # that interleaves out of order is a merger bug.  (Checked
            # after the span rules so a span-shaped violation keeps its
            # specific message.)
            if event["ts"] < last_ts.get(track, 0.0):
                raise ReproError(
                    f"event {index}: ts {event['ts']} goes backwards "
                    f"on track {track} (last was {last_ts[track]})"
                )
            last_ts[track] = event["ts"]
    unclosed = {
        track: [name for name, _ in stack]
        for track, stack in stacks.items() if stack
    }
    if unclosed:
        raise ReproError(f"unbalanced trace: open spans {unclosed}")
    counts["pids"] = len(pids)
    counts["span_ids"] = len(span_ids)
    return counts


def validate_trace_file(path) -> dict:
    """Load a trace JSON file and validate it."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}: not valid JSON: {exc}") from None
    return validate_trace(payload)
