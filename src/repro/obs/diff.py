"""Diff two recorded runs: the ``repro diff`` backend.

The paper's claims are all deltas — RE versus baseline cycles, RE
versus TE traffic — so the registry's first consumer is a differ.
:func:`diff_runs` takes two manifests (see :mod:`repro.obs.store`) and
reports, section by section:

* **cycles** — total / geometry / raster deltas plus per-stage-part
  deltas (``raster.fragment_processing``, ...), exact sums of the same
  per-frame numbers ``RunResult`` aggregates, so the diff reconciles
  with the in-memory results to the last cycle;
* **skip** — tiles skipped and post-warm-up skip rate;
* **traffic** — per-stream DRAM bytes (colors / texels / primitives /
  signatures ...);
* **counters** — every :class:`~repro.engine.stats.StatsRegistry`
  counter the runs recorded, including keys present on one side only
  (a technique's counters simply don't exist under another);
* **tile CRCs** — per-tile rendered-output divergence when both runs
  recorded their CRC matrices: how many tiles differ, in how many
  frames, and the first frame where outputs part ways.

:func:`render_diff` formats the result as aligned text tables.
"""

from __future__ import annotations

from ..errors import ReproError
from ..harness.reporting import format_table
from .store import RunRegistry, run_manifest

__all__ = [
    "diff_fleets",
    "diff_manifests",
    "diff_results",
    "diff_runs",
    "fleet_point_entries",
    "render_diff",
    "render_fleet_diff",
]


def _delta(a, b) -> dict:
    a = 0 if a is None else a
    b = 0 if b is None else b
    return {
        "a": a,
        "b": b,
        "delta": b - a,
        "ratio": (b / a) if a else None,
    }


def _identity(manifest: dict) -> dict:
    return {
        "run_id": manifest.get("run_id"),
        "kind": manifest.get("kind"),
        "alias": manifest.get("alias"),
        "technique": manifest.get("technique"),
        "num_frames": manifest.get("num_frames"),
        "config_digest": manifest.get("config_digest"),
        "git_rev": manifest.get("git_rev"),
        "raster_backend": (manifest.get("raster_backend") or {}).get("active"),
    }


def _part_deltas(parts_a: dict, parts_b: dict) -> dict:
    deltas = {}
    for side in ("geometry", "raster"):
        bucket_a = parts_a.get(side, {})
        bucket_b = parts_b.get(side, {})
        for part in sorted(set(bucket_a) | set(bucket_b)):
            deltas[f"{side}.{part}"] = _delta(
                bucket_a.get(part, 0.0), bucket_b.get(part, 0.0)
            )
    return deltas


def _crc_divergence(crcs_a, crcs_b) -> dict:
    """Tile-level divergence between two ``(frames, tiles)`` matrices."""
    if crcs_a is None or crcs_b is None:
        return {"comparable": False,
                "reason": "one or both runs recorded no CRC matrix"}
    frames = min(len(crcs_a), len(crcs_b))
    # len(), not truthiness: the in-memory matrices are numpy arrays.
    tiles_a = len(crcs_a[0]) if len(crcs_a) else 0
    tiles_b = len(crcs_b[0]) if len(crcs_b) else 0
    if tiles_a != tiles_b:
        return {"comparable": False,
                "reason": f"tile grids differ ({tiles_a} vs {tiles_b})"}
    divergent_frames = []
    divergent_tiles = 0
    first_frame = None
    for index in range(frames):
        row_a, row_b = crcs_a[index], crcs_b[index]
        differing = sum(1 for a, b in zip(row_a, row_b) if a != b)
        if differing:
            divergent_tiles += differing
            divergent_frames.append((index, differing))
            if first_frame is None:
                first_frame = index
    return {
        "comparable": True,
        "frames_compared": frames,
        "tiles_per_frame": tiles_a,
        "extra_frames": abs(len(crcs_a) - len(crcs_b)),
        "divergent_tiles": divergent_tiles,
        "divergent_frames": divergent_frames,
        "first_divergent_frame": first_frame,
        "identical": divergent_tiles == 0 and len(crcs_a) == len(crcs_b),
    }


def diff_manifests(manifest_a: dict, manifest_b: dict,
                   crcs_a=None, crcs_b=None) -> dict:
    """Structured diff of two run manifests (see module docstring)."""
    for manifest in (manifest_a, manifest_b):
        if "summary" not in manifest:
            raise ReproError(
                f"manifest {manifest.get('run_id', '?')!r} has no summary "
                f"(kind {manifest.get('kind')!r} is not diffable as a run)"
            )
    sum_a = manifest_a["summary"]
    sum_b = manifest_b["summary"]
    counters_a = sum_a.get("counters") or {}
    counters_b = sum_b.get("counters") or {}
    return {
        "a": _identity(manifest_a),
        "b": _identity(manifest_b),
        "cycles": {
            "total": _delta(sum_a.get("total_cycles"),
                            sum_b.get("total_cycles")),
            "geometry": _delta(sum_a.get("geometry_cycles"),
                               sum_b.get("geometry_cycles")),
            "raster": _delta(sum_a.get("raster_cycles"),
                             sum_b.get("raster_cycles")),
            "parts": _part_deltas(sum_a.get("cycle_parts", {}),
                                  sum_b.get("cycle_parts", {})),
        },
        "energy": {
            "total_nj": _delta(sum_a.get("total_energy_nj"),
                               sum_b.get("total_energy_nj")),
            "gpu_nj": _delta(sum_a.get("gpu_energy_nj"),
                             sum_b.get("gpu_energy_nj")),
            "dram_nj": _delta(sum_a.get("dram_energy_nj"),
                              sum_b.get("dram_energy_nj")),
        },
        "skip": {
            "tiles_skipped": _delta(sum_a.get("tiles_skipped"),
                                    sum_b.get("tiles_skipped")),
            "skipped_fraction": _delta(sum_a.get("skipped_fraction"),
                                       sum_b.get("skipped_fraction")),
            "fragments_shaded": _delta(sum_a.get("fragments_shaded"),
                                       sum_b.get("fragments_shaded")),
        },
        "traffic": {
            stream: _delta(sum_a.get("traffic", {}).get(stream),
                           sum_b.get("traffic", {}).get(stream))
            for stream in sorted(set(sum_a.get("traffic", {}))
                                 | set(sum_b.get("traffic", {})))
        },
        "traffic_total": _delta(sum_a.get("total_traffic_bytes"),
                                sum_b.get("total_traffic_bytes")),
        "counters": {
            key: _delta(counters_a.get(key), counters_b.get(key))
            for key in sorted(set(counters_a) | set(counters_b))
        },
        "crc": _crc_divergence(crcs_a, crcs_b),
    }


def diff_runs(registry, ref_a: str, ref_b: str) -> dict:
    """Diff two registry runs by id (or unique id prefix)."""
    if not isinstance(registry, RunRegistry):
        registry = RunRegistry(registry)
    return diff_manifests(
        registry.manifest(ref_a), registry.manifest(ref_b),
        crcs_a=registry.crcs(ref_a), crcs_b=registry.crcs(ref_b),
    )


def diff_results(result_a, result_b) -> dict:
    """Diff two in-memory :class:`RunResult` objects directly.

    The same code path as the registry diff (results are projected
    through :func:`~repro.obs.store.run_manifest`), so tests can assert
    the diff reconciles with the results without touching disk.
    """
    return diff_manifests(
        run_manifest(result_a, git_rev=None),
        run_manifest(result_b, git_rev=None),
        crcs_a=result_a.tile_color_crcs,
        crcs_b=result_b.tile_color_crcs,
    )


def fleet_point_entries(registry, fleet_id: str) -> dict:
    """``point_id -> IndexEntry`` for every manifest stamped with one
    fleet id.

    Both sides of a fleet reconciliation produce these stamps: fleet
    workers stamp every manifest they record, and a single-host
    ``repro sweep --fleet-id NAME`` stamps the same ids (the point id
    is content-addressed, so the two runs' ids coincide exactly when
    their configs do).  Duplicate stamps keep the latest entry.
    """
    if not isinstance(registry, RunRegistry):
        registry = RunRegistry(registry)
    points = {}
    for entry in registry.query(kind="sweep-point"):
        summary = entry.summary or {}
        if summary.get("fleet_id") != fleet_id:
            continue
        point = summary.get("point_id")
        if point:
            points[point] = entry
    return points


def diff_fleets(registry, fleet_a: str, fleet_b: str) -> dict:
    """Point-for-point reconciliation of two fleet-stamped result sets.

    For every point id present on either side: compare the headline
    summary (total cycles, tiles skipped, final frame CRC) from the
    index, and the per-tile CRC matrices from the manifests' sidecars.
    A point is ``identical`` when every compared field matches and the
    CRC matrices (when both recorded) diverge nowhere.  Missing points
    on either side are reported — a fleet that lost a point to a crash
    shows up here, not as a silent shrug.
    """
    if not isinstance(registry, RunRegistry):
        registry = RunRegistry(registry)
    points_a = fleet_point_entries(registry, fleet_a)
    points_b = fleet_point_entries(registry, fleet_b)
    if not points_a and not points_b:
        raise ReproError(
            f"no sweep points stamped with fleet id {fleet_a!r} or "
            f"{fleet_b!r} in registry {registry.root} (run the fleet, "
            "or stamp a single-host sweep with --fleet-id)"
        )
    shared = sorted(set(points_a) & set(points_b))
    compared = []
    divergent = 0
    fields = ("total_cycles", "tiles_skipped", "skipped_fraction",
              "final_frame_crc")
    for point in shared:
        entry_a, entry_b = points_a[point], points_b[point]
        sum_a = entry_a.summary or {}
        sum_b = entry_b.summary or {}
        mismatches = [
            field for field in fields
            if sum_a.get(field) != sum_b.get(field)
        ]
        crc = _crc_divergence(registry.crcs(entry_a.run_id),
                              registry.crcs(entry_b.run_id))
        crc_identical = (not crc.get("comparable")) or crc["identical"]
        identical = not mismatches and crc_identical
        if not identical:
            divergent += 1
        compared.append({
            "point_id": point,
            "run_a": entry_a.run_id,
            "run_b": entry_b.run_id,
            "identical": identical,
            "mismatched_fields": {
                field: {"a": sum_a.get(field), "b": sum_b.get(field)}
                for field in mismatches
            },
            "crc": crc,
            "summary": {field: sum_a.get(field) for field in fields},
        })
    return {
        "fleet_a": fleet_a,
        "fleet_b": fleet_b,
        "points_a": len(points_a),
        "points_b": len(points_b),
        "compared": compared,
        "divergent": divergent,
        "only_a": sorted(set(points_a) - set(points_b)),
        "only_b": sorted(set(points_b) - set(points_a)),
        "identical": (divergent == 0 and len(points_a) == len(points_b)
                      and bool(shared)),
    }


def render_fleet_diff(diff: dict) -> str:
    """Text report of a :func:`diff_fleets` result."""
    lines = [
        f"fleet diff A={diff['fleet_a']} ({diff['points_a']} points) "
        f"B={diff['fleet_b']} ({diff['points_b']} points)"
    ]
    rows = []
    for point in diff["compared"]:
        summary = point["summary"]
        if point["identical"]:
            verdict = "identical"
        elif point["mismatched_fields"]:
            verdict = "DIVERGES: " + ",".join(point["mismatched_fields"])
        else:
            verdict = "DIVERGES: tile CRCs"
        rows.append([
            point["point_id"],
            summary.get("total_cycles"),
            summary.get("tiles_skipped"),
            summary.get("final_frame_crc"),
            verdict,
        ])
    if rows:
        lines.append(format_table(
            ["point", "cycles(A)", "skips(A)", "crc(A)", "verdict"],
            rows, float_format="{:.0f}",
        ))
    for side, missing in (("A", diff["only_b"]), ("B", diff["only_a"])):
        if missing:
            lines.append(
                f"missing on side {side}: {len(missing)} point(s): "
                + ", ".join(missing)
            )
    lines.append(
        "fleets reconcile point-for-point"
        if diff["identical"] else
        f"fleets DIVERGE: {diff['divergent']} of "
        f"{len(diff['compared'])} shared point(s) differ, "
        f"{len(diff['only_a']) + len(diff['only_b'])} unmatched"
    )
    return "\n".join(lines)


def _fmt_pct(entry: dict) -> str:
    ratio = entry.get("ratio")
    if ratio is None:
        return "n/a"
    return f"{100.0 * (ratio - 1.0):+.1f}%"


def render_diff(diff: dict, top_counters: int = 12) -> str:
    """Format a :func:`diff_manifests` result as text tables."""
    a, b = diff["a"], diff["b"]

    def label(identity: dict) -> str:
        run_id = identity.get("run_id") or "<memory>"
        rev = identity.get("git_rev")
        return (f"{run_id} ({identity.get('alias')}/"
                f"{identity.get('technique')}, "
                f"{identity.get('num_frames')} frames"
                + (f", git {rev}" if rev else "") + ")")

    lines = [f"diff A={label(a)}", f"     B={label(b)}"]
    if a.get("config_digest") != b.get("config_digest"):
        lines.append(
            f"configs differ: {a.get('config_digest')} vs "
            f"{b.get('config_digest')}"
        )
    if a.get("raster_backend") != b.get("raster_backend"):
        lines.append(
            "warning: raster backends differ "
            f"({a.get('raster_backend') or 'unrecorded'} vs "
            f"{b.get('raster_backend') or 'unrecorded'}); "
            "timings are not comparable across backends"
        )

    cycles = diff["cycles"]
    lines.append("")
    rows = [
        [name, entry["a"], entry["b"], entry["delta"], _fmt_pct(entry)]
        for name, entry in (
            [("total", cycles["total"]), ("geometry", cycles["geometry"]),
             ("raster", cycles["raster"])]
            + sorted(cycles["parts"].items(),
                     key=lambda item: -abs(item[1]["delta"]))
        )
    ]
    lines.append("cycles:")
    lines.append(format_table(
        ["stage", "A", "B", "delta", "B/A"], rows, float_format="{:.0f}",
    ))

    skip = diff["skip"]
    lines.append("")
    frac = skip["skipped_fraction"]
    lines.append(
        f"tiles skipped: {skip['tiles_skipped']['a']} -> "
        f"{skip['tiles_skipped']['b']} "
        f"(skip rate {100 * frac['a']:.1f}% -> {100 * frac['b']:.1f}%); "
        f"fragments shaded {skip['fragments_shaded']['a']} -> "
        f"{skip['fragments_shaded']['b']}"
    )

    lines.append("")
    lines.append("DRAM traffic (bytes):")
    rows = [
        [stream, entry["a"], entry["b"], entry["delta"], _fmt_pct(entry)]
        for stream, entry in diff["traffic"].items()
    ]
    total = diff["traffic_total"]
    rows.append(["total", total["a"], total["b"], total["delta"],
                 _fmt_pct(total)])
    lines.append(format_table(["stream", "A", "B", "delta", "B/A"], rows))

    counters = {
        key: entry for key, entry in diff["counters"].items()
        if entry["delta"] != 0
    }
    lines.append("")
    if not diff["counters"]:
        lines.append("counters: none recorded")
    elif not counters:
        lines.append(
            f"counters: all {len(diff['counters'])} equal"
        )
    else:
        shown = sorted(
            counters.items(), key=lambda item: -abs(item[1]["delta"])
        )[:max(0, int(top_counters))]
        lines.append(
            f"counters: {len(counters)} of {len(diff['counters'])} differ"
            + (f" (top {len(shown)} by |delta|)"
               if len(shown) < len(counters) else "")
        )
        rows = [
            [key, entry["a"], entry["b"], entry["delta"]]
            for key, entry in shown
        ]
        lines.append(format_table(["counter", "A", "B", "delta"], rows))

    crc = diff["crc"]
    lines.append("")
    if not crc.get("comparable"):
        lines.append(f"tile CRCs: not comparable ({crc.get('reason')})")
    elif crc["identical"]:
        lines.append(
            f"tile CRCs: identical across all {crc['frames_compared']} "
            f"frames x {crc['tiles_per_frame']} tiles"
        )
    else:
        first = crc["first_divergent_frame"]
        lines.append(
            f"tile CRCs: {crc['divergent_tiles']} divergent tile(s) in "
            f"{len(crc['divergent_frames'])} of {crc['frames_compared']} "
            f"frames (first at frame {first})"
            + (f"; {crc['extra_frames']} frame(s) only in the longer run"
               if crc["extra_frames"] else "")
        )
    return "\n".join(lines)
