"""Live telemetry for parallel and supervised experiment fleets.

A long sweep fanned across workers is opaque until it finishes — the
journal records attempts after the fact and the supervisor's timeout is
the *last* line of defence.  This module adds the first line: workers
stream per-frame progress and key counters to an aggregator in the
supervising process, which

* renders a periodic one-line-per-worker **status table**,
* writes a ``live.json`` **heartbeat** any dashboard (or a human with
  ``watch cat``) can poll, and
* flags **stalled** workers — no telemetry for ``stall_after_s`` —
  *before* the supervisor's timeout kill fires, so a wedged cell is
  visible while it is still wedged.

Cost discipline mirrors the :class:`~repro.obs.tracer.Tracer`:
:class:`LiveSink` is the falsy no-op — with telemetry disabled the
render loop pays exactly one truthiness check per frame and never calls
a method.  :class:`ChannelLiveSink` is the enabled worker side; it posts
small dicts over whatever channel it is given (a multiprocessing
``Connection``, a ``Queue``, or the aggregator itself when the run is
in-process).  :class:`LiveAggregator` is the supervising side.
"""

from __future__ import annotations

import io
import json
import os
import time

__all__ = [
    "ChannelLiveSink",
    "LiveAggregator",
    "LiveSink",
    "NULL_LIVE",
    "TELEMETRY_TAG",
    "read_heartbeat",
]

#: First element of the tuple a :class:`ChannelLiveSink` sends over a
#: ``Connection``/``Queue`` channel, so mixed-protocol pipes (the
#: supervisor's progress/result pipe) can route telemetry by tag.
TELEMETRY_TAG = "telemetry"


class LiveSink:
    """No-op live-telemetry sink: the API surface, and the disabled
    implementation.  Instances are falsy so hot loops write
    ``if live:`` — disabled telemetry is a single truthiness check."""

    enabled = False

    def __bool__(self) -> bool:
        return self.enabled

    def frame_done(self, frames_rendered: int, num_frames: int,
                   **counters) -> None:
        """Report one completed frame (cumulative counters)."""

    def finish(self, ok: bool = True) -> None:
        """Report that the worker's run ended."""


#: Shared ready-made null sink for callers that want a non-None default.
NULL_LIVE = LiveSink()


class ChannelLiveSink(LiveSink):
    """Worker-side sink posting telemetry dicts over a channel.

    ``channel`` may be a multiprocessing ``Connection`` (``.send``), a
    ``Queue`` (``.put``), or a :class:`LiveAggregator` (``.update``) for
    in-process runs.  ``min_interval_s`` rate-limits mid-run updates so
    a fast worker cannot flood the pipe (the final frame and
    :meth:`finish` always post).
    """

    enabled = True

    def __init__(self, channel, worker: str, attempt: int = 0,
                 min_interval_s: float = 0.0,
                 clock=time.monotonic) -> None:
        self.worker = worker
        self.attempt = attempt
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last_post = None      # first frame always posts
        if hasattr(channel, "send"):
            self._post = lambda payload: channel.send(
                (TELEMETRY_TAG, payload))
        elif hasattr(channel, "put"):
            self._post = lambda payload: channel.put(
                (TELEMETRY_TAG, payload))
        else:
            self._post = channel.update

    def _payload(self, **fields) -> dict:
        payload = {"worker": self.worker, "ts": time.time()}
        if self.attempt:
            payload["attempt"] = self.attempt
        payload.update(fields)
        return payload

    def frame_done(self, frames_rendered: int, num_frames: int,
                   **counters) -> None:
        now = self._clock()
        final = frames_rendered >= num_frames
        if (not final and self.min_interval_s > 0.0
                and self._last_post is not None
                and now - self._last_post < self.min_interval_s):
            return
        self._last_post = now
        try:
            self._post(self._payload(
                frames=int(frames_rendered), total=int(num_frames),
                counters=dict(counters),
            ))
        except (OSError, ValueError):   # dying parent; telemetry is
            pass                        # best-effort, never fatal

    def finish(self, ok: bool = True) -> None:
        try:
            self._post(self._payload(event="done", ok=bool(ok)))
        except (OSError, ValueError):
            pass


class LiveAggregator:
    """Supervising-side collector: status table, heartbeat, stall flags.

    ``path`` is where the heartbeat JSON goes (``None`` disables the
    file); ``stream`` is where the periodic status table is printed
    (``None`` keeps a silent in-memory buffer tests can read);
    ``stall_after_s`` is the no-telemetry threshold after which a
    running worker is flagged; ``interval_s`` gates how often
    :meth:`tick` actually re-renders.

    Everything notable lands on :attr:`events` (stall flagged/cleared,
    worker done) with wall-clock timestamps, and the heartbeat embeds
    the trailing events, so "was the hang flagged before the timeout
    killed it" is answerable after the run from ``live.json`` alone.

    Heartbeat ownership: exactly one process may own (write) a given
    ``path`` — the foreground aggregator of a ``--live`` run, or the
    service daemon (:mod:`repro.service.daemon`), which attaches one
    aggregator for its whole lifetime and routes every worker's
    telemetry through it.  Readers (``repro status``, dashboards) use
    :func:`read_heartbeat`, which only ever sees complete snapshots
    because the write is an atomic ``os.replace``.  ``owner`` stamps the
    writing process's identity into the heartbeat so a reader can tell a
    daemon's ``live.json`` from a foreground run's.

    ``use_payload_ts`` switches staleness to the payload's own ``ts``
    wall-clock stamp (clamped against clock skew) instead of arrival
    time — for consumers like the fleet coordinator that *tail files*
    rather than receive telemetry live, where arrival time says when
    the tail loop ran, not when the worker last made progress.
    """

    def __init__(self, path="live.json", stall_after_s: float = 5.0,
                 interval_s: float = 1.0, stream=None,
                 clock=time.monotonic, owner: str = None,
                 use_payload_ts: bool = False) -> None:
        self.path = path
        self.stall_after_s = stall_after_s
        self.interval_s = interval_s
        self.stream = stream if stream is not None else io.StringIO()
        self._own_stream = stream is None
        self._clock = clock
        self._last_tick = -1e18
        self.started_at = time.time()
        self.owner = owner
        self.use_payload_ts = use_payload_ts
        self.workers: dict = {}     # worker label -> state dict
        self.events: list = []

    # Ingest -------------------------------------------------------------
    def _state(self, worker: str) -> dict:
        return self.workers.setdefault(worker, {
            "frames": 0, "total": None, "counters": {}, "attempt": None,
            "last_update": self._clock(), "last_update_ts": time.time(),
            "status": "running", "stalled": False,
        })

    def update(self, payload) -> None:
        """Ingest one telemetry payload (tagged tuple or bare dict)."""
        if isinstance(payload, tuple):      # ("telemetry", {...})
            payload = payload[1]
        state = self._state(payload["worker"])
        payload_ts = payload.get("ts", time.time())
        if self.use_payload_ts:
            # Staleness derives from the *payload's* wall-clock stamp,
            # not arrival time: a fleet coordinator tailing heartbeat
            # files reads records long after they were written.  The
            # age is clamped at zero so a worker whose clock runs ahead
            # of ours never reads as stale-er (or fresher than now).
            age = max(0.0, time.time() - float(payload_ts))
            state["last_update"] = self._clock() - age
        else:
            state["last_update"] = self._clock()
        state["last_update_ts"] = payload_ts
        if payload.get("attempt") is not None:
            state["attempt"] = payload["attempt"]
        if payload.get("event") == "done":
            state["status"] = "done" if payload.get("ok", True) else "failed"
            state["stalled"] = False
        else:
            if state["status"] not in ("done", "failed"):
                state["status"] = "running"
            state["frames"] = payload.get("frames", state["frames"])
            state["total"] = payload.get("total", state["total"])
            state["counters"].update(payload.get("counters", {}))
            if state["stalled"]:
                state["stalled"] = False
                self.events.append({
                    "event": "stall_cleared", "worker": payload["worker"],
                    "ts": time.time(),
                })
        self.tick()

    def mark_status(self, worker: str, status: str) -> None:
        """Supervisor bookkeeping: retrying / done / failed."""
        state = self._state(worker)
        state["status"] = status
        if status in ("done", "failed"):
            state["stalled"] = False
            self.events.append({
                "event": f"worker_{status}", "worker": worker,
                "ts": time.time(),
            })
        self.tick(force=True)

    # Stall detection ----------------------------------------------------
    def _refresh_stalls(self) -> None:
        now = self._clock()
        for worker, state in self.workers.items():
            if state["status"] != "running" or state["stalled"]:
                continue
            if now - state["last_update"] > self.stall_after_s:
                state["stalled"] = True
                self.events.append({
                    "event": "stall_flagged", "worker": worker,
                    "ts": time.time(),
                    "last_update_ts": state["last_update_ts"],
                    "frames": state["frames"],
                })

    def stalled(self) -> list:
        """Labels of currently-stalled workers (refreshes detection)."""
        self._refresh_stalls()
        return sorted(
            worker for worker, state in self.workers.items()
            if state["stalled"]
        )

    # Output -------------------------------------------------------------
    def render_status_table(self) -> str:
        from ..harness.reporting import format_table

        rows = []
        for worker in sorted(self.workers):
            state = self.workers[worker]
            total = state["total"]
            progress = (
                f"{state['frames']}/{total}" if total
                else str(state["frames"])
            )
            status = "STALLED" if state["stalled"] else state["status"]
            counters = state["counters"]
            rows.append([
                worker, progress, status,
                state["attempt"] if state["attempt"] is not None else "-",
                counters.get("tiles_skipped", 0),
                counters.get("fragments_shaded", 0),
            ])
        return format_table(
            ["worker", "frames", "status", "attempt",
             "tiles_skipped", "fragments_shaded"], rows,
        )

    def snapshot(self) -> dict:
        """The heartbeat payload (what ``live.json`` holds)."""
        return {
            "ts": time.time(),
            "started_at": self.started_at,
            "owner": self.owner,
            "workers": {
                worker: {
                    "frames": state["frames"],
                    "total": state["total"],
                    "status": state["status"],
                    "stalled": state["stalled"],
                    "attempt": state["attempt"],
                    "last_update_ts": state["last_update_ts"],
                    "counters": dict(state["counters"]),
                }
                for worker, state in self.workers.items()
            },
            "stalled": sorted(
                worker for worker, state in self.workers.items()
                if state["stalled"]
            ),
            "events": self.events[-50:],
        }

    def _write_heartbeat(self) -> None:
        if self.path is None:
            return
        tmp = f"{os.fspath(self.path)}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self.snapshot(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except OSError:                 # best-effort heartbeat
            pass

    def tick(self, force: bool = False) -> bool:
        """Refresh stalls and, at most every ``interval_s`` (or when
        forced or a new stall appeared), emit the heartbeat + table.
        Returns whether output was emitted."""
        stalls_before = len([
            e for e in self.events if e["event"] == "stall_flagged"
        ])
        self._refresh_stalls()
        new_stall = len([
            e for e in self.events if e["event"] == "stall_flagged"
        ]) > stalls_before
        now = self._clock()
        if not force and not new_stall:
            if now - self._last_tick < self.interval_s:
                return False
        self._last_tick = now
        self._write_heartbeat()
        if self.workers:
            print(self.render_status_table() + "\n", file=self.stream)
        return True

    def status_output(self) -> str:
        """Everything printed so far when no stream was provided."""
        return (
            self.stream.getvalue() if self._own_stream else ""
        )

    def close(self) -> None:
        """Final forced tick so the heartbeat reflects terminal state."""
        self.tick(force=True)


def read_heartbeat(path):
    """Read a ``live.json`` heartbeat written by a :class:`LiveAggregator`.

    The read-side half of the heartbeat contract: the aggregator writes
    atomically (``os.replace``), so a reader either sees a complete
    snapshot or the previous one — never a torn file.  ``repro status``
    reads the daemon's heartbeat through this instead of attaching a
    second (racing) writer.  Returns the snapshot dict, or ``None`` when
    the file is missing or not yet valid JSON (a heartbeat that never
    got its first tick).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
