"""Distributed request tracing: per-process shards and the merger.

:class:`~repro.obs.tracer.TraceRecorder` covers one process: timestamps
are relative to recorder creation, so two recorders cannot be laid on a
common timeline.  A service request crosses three processes — client,
daemon, worker — and this module makes that one trace:

* :class:`TraceContext` is the request-scoped identity (``trace_id``
  plus the parent span id) minted in ``ServiceClient.submit`` and
  carried through the :class:`~repro.service.jobs.JobSpec` wire format;
* :class:`TraceShard` is an append-only JSONL shard of Chrome trace
  events for one process.  Timestamps are **absolute wall-clock
  microseconds** (every participating process shares the host clock),
  clamped non-decreasing per ``tid`` so each track is monotonic;
* :class:`ShardTracer` adapts a shard to the falsy
  :class:`~repro.obs.tracer.Tracer` protocol on one fixed track, so the
  engine's frame/stage spans (which default to ``tid=0``) land on their
  job's track inside the worker's shard;
* :func:`merge_shards` assembles every shard in a directory into one
  Perfetto-loadable ``{"traceEvents": [...]}`` payload: timestamps
  normalized to start at zero, events stably sorted, spans left open by
  a crashed process repaired with synthetic ``E`` events (flagged in
  the metadata, never silently).

Span ids are ``<pid hex>.<counter hex>`` — unique across processes by
construction — and travel in ``args.span_id`` where
:func:`~repro.obs.validate.validate_trace` checks global uniqueness.
"""

from __future__ import annotations

import contextlib
import dataclasses
import glob
import itertools
import json
import os
import threading
import time
import typing

from ..errors import ReproError

__all__ = [
    "ShardTracer",
    "TraceContext",
    "TraceShard",
    "merge_shards",
    "mint_trace",
    "new_span_id",
    "new_trace_id",
]

_span_counter = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-char request id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A span id unique across cooperating processes (pid-prefixed)."""
    return f"{os.getpid():x}.{next(_span_counter):x}"


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The trace identity one request carries across process hops.

    ``span_id`` is the *parent* span the receiving side nests under —
    the client's ``submit`` span when the context crosses the socket.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_mapping(cls, data) -> typing.Optional["TraceContext"]:
        """Rebuild from wire JSON; ``None`` when absent or malformed
        (trace context is telemetry — never a reason to refuse a job)."""
        if not isinstance(data, typing.Mapping):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str) or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


def mint_trace() -> TraceContext:
    """A fresh context: new trace, parent span = a new root span id."""
    return TraceContext(trace_id=new_trace_id(), span_id=new_span_id())


class TraceShard:
    """One process's slice of a distributed trace, as JSONL on disk.

    Thread-safe (the daemon writes from its submit and scheduler
    threads).  Every line is a complete Chrome trace event, flushed as
    written, so a crashed process still leaves everything it recorded.
    Timestamps are wall-clock microseconds clamped non-decreasing per
    track; :func:`merge_shards` re-bases them onto a common zero.
    """

    def __init__(self, directory, role: str, pid: int = None,
                 clock=time.time) -> None:
        self.directory = os.fspath(directory)
        self.role = role
        self.pid = os.getpid() if pid is None else int(pid)
        self._clock = clock
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(
            self.directory, f"shard-{role}-{self.pid}.jsonl",
        )
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._last_ts: dict = {}       # tid -> last emitted ts
        self._stacks: dict = {}        # tid -> [open span names]
        self._named: set = set()
        self._write({
            "name": "process_name", "ph": "M", "pid": self.pid,
            "tid": 0, "ts": 0.0, "args": {"name": f"repro-{role}"},
        })

    # Internals ----------------------------------------------------------
    def _write(self, event: dict) -> None:
        self._handle.write(json.dumps(event) + "\n")
        self._handle.flush()

    def name_thread(self, tid: int, name: str) -> None:
        """Label a track (idempotent; first label wins)."""
        with self._lock:
            self._name_thread_locked(tid, name)

    def _name_thread_locked(self, tid: int, name: str) -> None:
        if tid in self._named:
            return
        self._named.add(tid)
        self._write({
            "name": "thread_name", "ph": "M", "pid": self.pid,
            "tid": int(tid), "ts": 0.0, "args": {"name": name},
        })

    def emit(self, ph: str, name: str, tid: int = 0, ts: float = None,
             **extra) -> dict:
        """Append one raw event (monotonic-clamped per track)."""
        with self._lock:
            self._name_thread_locked(tid, f"{self.role} t{tid}")
            if ts is None:
                ts = self._clock() * 1e6
            ts = max(float(ts), self._last_ts.get(tid, 0.0))
            self._last_ts[tid] = ts
            event = {
                "name": name, "ph": ph, "pid": self.pid,
                "tid": int(tid), "ts": ts,
            }
            event.update(extra)
            self._write(event)
            return event

    # Span API -----------------------------------------------------------
    def begin(self, name: str, tid: int = 0, span_id: str = None,
              **args) -> str:
        """Open a span; returns its (globally unique) span id."""
        span_id = span_id or new_span_id()
        args = dict(args)
        args["span_id"] = span_id
        with self._lock:
            self._stacks.setdefault(tid, []).append(name)
        self.emit("B", name, tid=tid, args=args)
        return span_id

    def end(self, name: str = None, tid: int = 0, **args) -> bool:
        """Close the innermost open span on ``tid``.

        Lenient: if nothing (or a different span) is open the call is a
        no-op returning ``False`` — the daemon calls this from crash and
        timeout paths where the span may already be closed, and a
        bookkeeping slip must never take the scheduler thread down.
        """
        with self._lock:
            stack = self._stacks.get(tid)
            if not stack:
                return False
            if name is not None and stack[-1] != name:
                return False
            opened = stack.pop()
        self.emit("E", opened, tid=tid, **({"args": args} if args else {}))
        return True

    def instant(self, name: str, tid: int = 0, **args) -> None:
        self.emit("i", name, tid=tid, s="t", args=args)

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        self.emit("C", name, tid=tid, args=dict(values))

    def close_track(self, tid: int) -> None:
        """End every span still open on one track (withdrawn jobs)."""
        while self.end(tid=tid):
            pass

    def close(self) -> None:
        """Balance every track, then close the file."""
        with self._lock:
            tids = list(self._stacks)
        for tid in tids:
            self.close_track(tid)
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceShard":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ShardTracer:
    """The falsy Tracer protocol, writing into a shard on one track.

    Handed to :func:`~repro.service.pool.execute_job` by the daemon's
    workers so engine frame/stage spans (emitted with the default
    ``tid=0``) land on the job's own track of the worker shard, stamped
    with the request's ``trace_id``.  Keeps its own span stack —
    strict, like :class:`~repro.obs.tracer.TraceRecorder` — so engine
    code misuse still raises.
    """

    enabled = True

    def __init__(self, shard: TraceShard, tid: int,
                 trace_id: str = None, parent_span_id: str = None,
                 label: str = None) -> None:
        self.shard = shard
        self.tid = int(tid)
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.metadata: dict = {}
        self._stack: list = []         # [(name, span_id)]
        if label:
            shard.name_thread(self.tid, label)

    def __bool__(self) -> bool:
        return self.enabled

    # Span API -----------------------------------------------------------
    def begin(self, name: str, tid: int = 0, **args) -> None:
        span_id = new_span_id()
        args = dict(args)
        args["span_id"] = span_id
        if self.trace_id:
            args["trace_id"] = self.trace_id
        parent = (self._stack[-1][1] if self._stack
                  else self.parent_span_id)
        if parent:
            args["parent_span_id"] = parent
        self._stack.append((name, span_id))
        self.shard.emit("B", name, tid=self.tid, args=args)

    def end(self, name: str = None, tid: int = 0) -> None:
        if not self._stack:
            raise ReproError(
                f"ShardTracer.end() with no open span on track {self.tid}"
            )
        opened, _span_id = self._stack.pop()
        if name is not None and name != opened:
            raise ReproError(
                f"ShardTracer.end({name!r}) closes span {opened!r}"
            )
        self.shard.emit("E", opened, tid=self.tid)

    @contextlib.contextmanager
    def span(self, name: str, tid: int = 0, **args):
        self.begin(name, **args)
        try:
            yield self
        finally:
            self.end(name)

    # Point events -------------------------------------------------------
    def instant(self, name: str, tid: int = 0, **args) -> None:
        if self.trace_id:
            args["trace_id"] = self.trace_id
        self.shard.instant(name, tid=self.tid, **args)

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        self.shard.counter(name, values, tid=self.tid)

    # Metadata -----------------------------------------------------------
    def annotate(self, **fields) -> None:
        self.metadata.update(fields)

    def close_open_spans(self) -> None:
        while self._stack:
            opened, _span_id = self._stack.pop()
            self.shard.emit("E", opened, tid=self.tid)


# ----------------------------------------------------------------------
# Merger
# ----------------------------------------------------------------------

def _load_shard(path) -> list:
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{lineno}: bad shard event: {exc}"
                ) from None
            if not isinstance(event, dict):
                raise ReproError(f"{path}:{lineno}: event is not an object")
            events.append(event)
    return events


def shard_paths(directory) -> list:
    """Every shard file under ``directory``, deterministically ordered."""
    return sorted(glob.glob(os.path.join(os.fspath(directory),
                                         "shard-*.jsonl")))


def merge_shards(source, out_path=None, repair: bool = True) -> dict:
    """Assemble per-process shards into one Chrome trace payload.

    ``source`` is a shard directory or an iterable of shard paths.
    Events are stably sorted by timestamp (per-track order — already
    monotonic within each shard — is preserved), re-based so the
    earliest event sits at ``ts=0``, and, with ``repair`` (the
    default), spans left open by a crashed process are closed with
    synthetic ``E`` events at the track's last timestamp.  Repairs are
    counted in ``metadata.repaired_spans`` — a crash is visible in the
    trace, never papered over.  Returns the payload; writes it to
    ``out_path`` when given.
    """
    if isinstance(source, (str, os.PathLike)):
        paths = shard_paths(source)
        if not paths:
            raise ReproError(f"no trace shards under {source}")
    else:
        paths = [os.fspath(p) for p in source]
        if not paths:
            raise ReproError("no trace shards given")

    events = []
    for path in paths:
        events.extend(_load_shard(path))

    # Re-base onto a common zero (metadata events keep their ts=0).
    real = [e for e in events if e.get("ph") != "M"]
    if real:
        t0 = min(float(e.get("ts", 0.0)) for e in real)
        for event in real:
            event["ts"] = float(event.get("ts", 0.0)) - t0
    events.sort(key=lambda e: float(e.get("ts", 0.0)))

    repaired = 0
    if repair:
        stacks: dict = {}           # (pid, tid) -> [name]
        last_ts: dict = {}
        for event in events:
            track = (event.get("pid"), event.get("tid"))
            ph = event.get("ph")
            if ph != "M":
                last_ts[track] = float(event.get("ts", 0.0))
            if ph == "B":
                stacks.setdefault(track, []).append(event.get("name"))
            elif ph == "E":
                stack = stacks.get(track)
                if stack:
                    stack.pop()
        for track, stack in sorted(stacks.items(),
                                   key=lambda item: str(item[0])):
            while stack:
                name = stack.pop()
                events.append({
                    "name": name, "ph": "E", "pid": track[0],
                    "tid": track[1], "ts": last_ts.get(track, 0.0),
                    "args": {"repaired": True},
                })
                repaired += 1

    trace_ids = sorted({
        event["args"]["trace_id"] for event in events
        if isinstance(event.get("args"), dict)
        and event["args"].get("trace_id")
    })
    # Participating roles from the process_name metadata each shard
    # emits — for a fleet merge this reads "fleet-w0, fleet-w1, ...",
    # so a missing worker's shard is visible from the metadata alone.
    roles = sorted({
        event["args"]["name"] for event in events
        if event.get("ph") == "M"
        and event.get("name") == "process_name"
        and isinstance(event.get("args"), dict)
        and event["args"].get("name")
    })
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "merged_from": [os.path.basename(p) for p in paths],
            "trace_ids": trace_ids,
            "roles": roles,
            "repaired_spans": repaired,
        },
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
    return payload
