"""MetricsLog: per-frame columnar time series of every counter.

At each frame boundary the render session samples the frame's registry
delta (every :class:`~repro.engine.stats.StatsRegistry` counter), the
timing/energy breakdowns and the tile-skip decisions into one flat JSON
record.  Records are held in memory *and* appended to a JSONL file when
a path is given, so a killed run still leaves every completed frame on
disk.

The file starts with a ``header`` record describing the run (alias,
technique, tile grid) — :func:`MetricsLog.load` round-trips it.  Under
the supervisor the log is opened in append mode and every attempt writes
its own header stamped with the attempt id; frames re-rendered by a
retry therefore appear twice, and the loader keeps the *last* record per
frame index — the one that produced the surviving result.

``python -m repro report <metrics.jsonl>`` (see :mod:`repro.obs.report`)
reconstructs per-stage cycle shares, skip-rate curves and per-tile
heatmaps from this log alone.
"""

from __future__ import annotations

import json

from ..errors import ReproError


class MetricsLog:
    """Per-frame metrics records, in memory and optionally on disk."""

    def __init__(self, path=None, mode: str = "w") -> None:
        self.path = path
        self.header: dict = None
        self.records: list = []        # frame records, in arrival order
        self.sources: list = None      # paths merged by load_many
        self._handle = (
            open(path, mode, encoding="utf-8") if path else None
        )

    # Writing ------------------------------------------------------------
    def write_header(self, **fields) -> dict:
        """Describe the run; stored once per (attempt of a) run."""
        record = {"kind": "header"}
        record.update(fields)
        self.header = record
        self._emit(record)
        return record

    def sample(self, **fields) -> dict:
        """Append one frame record (requires a ``frame_index`` field)."""
        if "frame_index" not in fields:
            raise ReproError("metrics record needs a frame_index")
        record = {"kind": "frame"}
        record.update(fields)
        self.records.append(record)
        self._emit(record)
        return record

    def _emit(self, record: dict) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MetricsLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # Loading ------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "MetricsLog":
        """Parse a JSONL metrics file back into a :class:`MetricsLog`.

        Keeps the last header and, when a frame index appears more than
        once (supervised retries re-render from the last checkpoint),
        the last record for that frame.
        """
        return cls.load_many([path])

    @classmethod
    def load_many(cls, paths) -> "MetricsLog":
        """Load and merge several JSONL metrics files into one log.

        The service fans a batch's frames across workers, each writing
        its own metrics file; analyzing the run means merging them.
        The dedupe rule is exactly the retried-frame loader's: files
        are read in the order given, and the *last* record per frame
        index wins — later files override earlier ones, the way a
        retry's re-rendered frames override the crashed attempt's.
        The last header seen wins too.  ``log.sources`` lists the
        merged paths.
        """
        if not paths:
            raise ReproError("no metrics files to load")
        log = cls()
        log.sources = [str(path) for path in paths]
        by_frame: dict = {}
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ReproError(
                            f"{path}:{lineno}: bad metrics record: {exc}"
                        ) from None
                    kind = record.get("kind")
                    if kind == "header":
                        log.header = record
                    elif kind == "frame":
                        by_frame[int(record["frame_index"])] = record
                    else:
                        raise ReproError(
                            f"{path}:{lineno}: unknown record kind "
                            f"{kind!r}"
                        )
        log.records = [by_frame[index] for index in sorted(by_frame)]
        return log

    # Columnar views -----------------------------------------------------
    def column(self, field: str, default=None) -> list:
        """One field across every frame record, in frame order."""
        return [record.get(field, default) for record in self.records]

    def counter_column(self, key: str) -> list:
        """One registry counter (``"raster.tiles_skipped"``...) per frame."""
        return [
            record.get("counters", {}).get(key, 0)
            for record in self.records
        ]

    @property
    def num_frames(self) -> int:
        return len(self.records)

    def tiles_total(self) -> int:
        """Tile count of the grid, from the header."""
        if self.header is None or "num_tiles" not in self.header:
            raise ReproError("metrics log has no header with num_tiles")
        return int(self.header["num_tiles"])

    def tile_skip_counts(self) -> list:
        """Per-tile skip totals across every frame (heatmap data)."""
        counts = [0] * self.tiles_total()
        for record in self.records:
            for tile_id in record.get("skipped_tile_ids", ()):
                counts[int(tile_id)] += 1
        return counts

    def tile_render_counts(self) -> list:
        """Per-tile rendered-frame totals (the skip complement)."""
        frames = self.num_frames
        return [frames - skips for skips in self.tile_skip_counts()]


def frame_record(stats, cycles, energy, delta: dict) -> dict:
    """Build one frame's metrics-record fields from the session's view.

    ``stats`` is the frame's :class:`~repro.pipeline.gpu.FrameStats`,
    ``cycles``/``energy`` the timing/energy breakdowns, and ``delta`` the
    frame's registry snapshot-delta (every counter, by dotted key).
    """
    return {
        "frame_index": stats.frame_index,
        "technique": stats.technique_name,
        "re_disabled": bool(stats.re_disabled),
        "tiles_total": stats.raster.tiles_scheduled,
        "tiles_skipped": stats.raster.tiles_skipped,
        "flushes_suppressed": stats.raster.flushes_suppressed,
        "fragments_rasterized": stats.raster.fragments_rasterized,
        "fragments_shaded": stats.fragment.fragments_shaded,
        "fragments_memoized": stats.fragment.fragments_memoized,
        "geometry_cycles": cycles.geometry_cycles,
        "raster_cycles": cycles.raster_cycles,
        "cycle_parts": {
            "geometry": dict(cycles.geometry_parts),
            "raster": dict(cycles.raster_parts),
        },
        "energy_nj": {
            "total": energy.total_nj,
            "gpu": energy.gpu_nj,
            "dram": energy.dram_nj,
        },
        "traffic": dict(stats.traffic),
        "skipped_tile_ids": [int(t) for t in stats.skipped_tile_ids],
        "counters": dict(delta),
    }
