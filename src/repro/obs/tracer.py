"""Tracer protocol and the Chrome-trace-event recording implementation.

The simulator's time-resolved telemetry flows through a :class:`Tracer`:
*spans* (``begin``/``end`` pairs, or the ``span`` context manager) mark
how long a pipeline stage ran, *instant events* mark point decisions
(tile skipped, signature hit/miss, OT-queue stall), and *counter events*
sample per-frame totals onto a counter track.

Two implementations:

* :class:`Tracer` itself is the no-op null tracer.  It is *falsy*, so
  hot paths guard with ``if tracer:`` and pay a single truthiness check
  per decision when tracing is off — the same discipline the pipeline
  already uses for :class:`repro.perf.PerfRecorder`.
* :class:`TraceRecorder` accumulates Chrome trace-event JSON — the
  format ``chrome://tracing`` and Perfetto load natively — and writes a
  ``{"traceEvents": [...], "metadata": {...}}`` payload.

Timestamps are microseconds of host wall-clock since the recorder was
created (the trace-event ``ts`` unit).  Every event carries ``pid``,
``tid``, ``ts``, ``ph`` and ``name``; :mod:`repro.obs.validate` pins the
schema in tests so viewer compatibility is checked, not assumed.
"""

from __future__ import annotations

import contextlib
import json
import os
import time

from ..errors import ReproError


class Tracer:
    """No-op tracer: the API surface, and the disabled implementation.

    Instances are falsy so hot loops can write ``if tracer:`` — with
    tracing disabled nothing is ever called, not even a no-op method.
    """

    enabled = False

    def __bool__(self) -> bool:
        return self.enabled

    # Span API -----------------------------------------------------------
    def begin(self, name: str, tid: int = 0, **args) -> None:
        """Open a span on track ``tid``."""

    def end(self, name: str = None, tid: int = 0) -> None:
        """Close the innermost open span on track ``tid``."""

    @contextlib.contextmanager
    def span(self, name: str, tid: int = 0, **args):
        """``with tracer.span("raster"):`` — begin/end as a context."""
        self.begin(name, tid=tid, **args)
        try:
            yield self
        finally:
            self.end(name, tid=tid)

    # Point events -------------------------------------------------------
    def instant(self, name: str, tid: int = 0, **args) -> None:
        """Record a point-in-time event (a tile decision, a stall)."""

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        """Sample a named counter track (``values`` is series -> number)."""

    # Metadata -----------------------------------------------------------
    def annotate(self, **fields) -> None:
        """Merge fields into the trace-level metadata (attempt ids...)."""

    def close_open_spans(self) -> None:
        """End every still-open span (used before writing a partial
        trace from a run that died mid-frame, keeping B/E balanced)."""


#: Shared ready-made null tracer for callers that want a non-None default.
NULL_TRACER = Tracer()


class TraceRecorder(Tracer):
    """Recording tracer emitting Chrome trace-event JSON.

    >>> tracer = TraceRecorder(pid=1)
    >>> with tracer.span("frame", frame=0):
    ...     tracer.instant("tile_skip", tile=3)
    >>> [e["ph"] for e in tracer.events if e["ph"] != "M"]
    ['B', 'i', 'E']
    """

    enabled = True

    #: Track names emitted as ``thread_name`` metadata, per tid.
    TRACK_NAMES = {0: "pipeline"}

    def __init__(self, pid: int = None, metadata: dict = None,
                 clock=time.perf_counter) -> None:
        self.pid = os.getpid() if pid is None else int(pid)
        self.metadata: dict = dict(metadata or {})
        self.events: list = []
        self._clock = clock
        self._t0 = clock()
        self._stacks: dict = {}        # tid -> [open span names]
        self._named_tracks: set = set()
        self._meta_event("process_name", {"name": "repro-sim"}, tid=0)

    # Internals ----------------------------------------------------------
    def _ts(self) -> float:
        """Microseconds since the recorder was created."""
        return (self._clock() - self._t0) * 1e6

    def _event(self, ph: str, name: str, tid: int, ts: float = None,
               **extra) -> dict:
        if tid not in self._named_tracks:
            self._named_tracks.add(tid)
            track = self.TRACK_NAMES.get(tid, f"track-{tid}")
            self._meta_event("thread_name", {"name": track}, tid=tid)
        event = {
            "name": name,
            "ph": ph,
            "pid": self.pid,
            "tid": int(tid),
            "ts": self._ts() if ts is None else ts,
        }
        event.update(extra)
        self.events.append(event)
        return event

    def _meta_event(self, name: str, args: dict, tid: int) -> None:
        self.events.append({
            "name": name, "ph": "M", "pid": self.pid, "tid": int(tid),
            "ts": 0.0, "args": args,
        })

    # Span API -----------------------------------------------------------
    def begin(self, name: str, tid: int = 0, **args) -> None:
        self._stacks.setdefault(tid, []).append(name)
        self._event("B", name, tid, args=args)

    def end(self, name: str = None, tid: int = 0) -> None:
        stack = self._stacks.get(tid)
        if not stack:
            raise ReproError(
                f"Tracer.end() with no open span on track {tid}"
            )
        opened = stack.pop()
        if name is not None and name != opened:
            raise ReproError(
                f"Tracer.end({name!r}) closes span {opened!r}"
            )
        self._event("E", opened, tid)

    # Point events -------------------------------------------------------
    def instant(self, name: str, tid: int = 0, **args) -> None:
        self._event("i", name, tid, s="t", args=args)

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        self._event("C", name, tid, args=dict(values))

    # Metadata / output --------------------------------------------------
    def annotate(self, **fields) -> None:
        self.metadata.update(fields)

    def close_open_spans(self) -> None:
        for tid, stack in self._stacks.items():
            while stack:
                self._event("E", stack.pop(), tid)

    def to_json(self) -> dict:
        """The complete trace payload (Perfetto's JSON object form)."""
        if any(self._stacks.values()):
            open_spans = {
                tid: list(stack)
                for tid, stack in self._stacks.items() if stack
            }
            raise ReproError(f"unbalanced trace: open spans {open_spans}")
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "metadata": dict(self.metadata),
        }

    def write(self, path) -> None:
        """Write the trace where ``chrome://tracing`` / Perfetto load it."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle)
            handle.write("\n")
