"""Analysis of a per-frame metrics log: the ``repro report`` backend.

Reconstructs the shape of the paper's per-run analyses (Fig. 10's
per-stage cycle shares, Fig. 12's skip-rate behaviour over time) from a
:class:`~repro.obs.metrics.MetricsLog` alone — no simulator run needed,
so a log shipped home from a fleet worker can be dissected offline.

Three views:

* :func:`stage_cycle_breakdown` — total cycles per pipeline stage part
  (``geometry.rasterizer_setup``, ``raster.fragment_processing``, ...)
  summed over frames, with each part's share of the run.
* :func:`skip_rate_series` — fraction of tiles skipped per frame, the
  frame-over-frame curve the behaviour classes of Section V live in.
* :func:`hottest_tiles` — per-tile render counts across the run, top-N
  hottest (least-skipped) first; the flat array behind a tile heatmap.

:func:`render_report` formats all three as aligned text tables; totals
are exact sums of the log's per-frame records, so they reconcile with
``RunResult`` aggregates to the last cycle.
"""

from __future__ import annotations

from ..harness.reporting import format_table
from ..harness.timeline import sparkline
from .metrics import MetricsLog


def _as_log(log) -> MetricsLog:
    if isinstance(log, MetricsLog):
        return log
    return MetricsLog.load(log)


def stage_cycle_breakdown(log) -> dict:
    """``{"geometry.<part>"|"raster.<part>": cycles}`` summed over frames."""
    log = _as_log(log)
    totals: dict = {}
    for record in log.records:
        parts = record.get("cycle_parts", {})
        for side in ("geometry", "raster"):
            for part, cycles in parts.get(side, {}).items():
                key = f"{side}.{part}"
                totals[key] = totals.get(key, 0.0) + cycles
    return totals


def total_cycles(log) -> float:
    """Exact run total: sum of per-frame geometry + raster cycles."""
    log = _as_log(log)
    return sum(
        record.get("geometry_cycles", 0.0) + record.get("raster_cycles", 0.0)
        for record in log.records
    )


def skip_rate_series(log) -> list:
    """Fraction of tiles skipped, one value per frame."""
    log = _as_log(log)
    series = []
    for record in log.records:
        tiles = record.get("tiles_total", 0)
        series.append(
            record.get("tiles_skipped", 0) / tiles if tiles else 0.0
        )
    return series


def hottest_tiles(log, top: int = 10) -> list:
    """Top-``top`` most-rendered tiles: ``(tile_id, rendered, skipped)``.

    Ties break toward the lower tile id so the ranking is deterministic.
    """
    log = _as_log(log)
    skips = log.tile_skip_counts()
    frames = log.num_frames
    ranked = sorted(
        ((frames - skipped, skipped, tile_id)
         for tile_id, skipped in enumerate(skips)),
        key=lambda row: (-row[0], row[2]),
    )
    return [
        (tile_id, rendered, skipped)
        for rendered, skipped, tile_id in ranked[:max(0, int(top))]
    ]


def render_report(log, top: int = 10, width: int = 60) -> str:
    """Format the full analysis as text (the ``repro report`` output).

    A log with no frame records (a run that died before its first frame
    boundary, or an empty/truncated file) renders a short "no frames
    recorded" notice instead of raising — every downstream aggregate
    here divides by the frame count, and an empty fleet log is an
    answerable question, not an error.
    """
    log = _as_log(log)
    if log.num_frames == 0:
        header = log.header or {}
        what = ""
        if header:
            what = (
                f" ({header.get('alias', '?')} under "
                f"{header.get('technique', '?')})"
            )
        return (
            f"metrics report{what}: no frames recorded\n"
            "the log has a header but no frame records — the run likely "
            "ended before its first frame boundary; nothing to analyse"
            if header else
            "metrics report: no frames recorded\n"
            "the log is empty — was the run started with --metrics, and "
            "did it render at least one frame?"
        )
    header = log.header or {}
    lines = []
    title = "metrics report"
    if header:
        title += (
            f": {header.get('alias', '?')} under "
            f"{header.get('technique', '?')}"
        )
        if header.get("attempt"):
            title += f" (attempt {header['attempt']})"
    lines.append(title)
    lines.append(f"frames: {log.num_frames}")

    # Per-stage cycle breakdown (Fig. 10's shape) ----------------------
    breakdown = stage_cycle_breakdown(log)
    run_cycles = total_cycles(log)
    geometry = sum(log.column("geometry_cycles", 0.0))
    raster = sum(log.column("raster_cycles", 0.0))
    lines.append("")
    lines.append(
        f"cycles: {run_cycles:.0f} total "
        f"(geometry {geometry:.0f} / raster {raster:.0f})"
    )
    rows = [
        [part, cycles, cycles / run_cycles if run_cycles else 0.0]
        for part, cycles in sorted(
            breakdown.items(), key=lambda item: -item[1]
        )
    ]
    lines.append(format_table(
        ["stage part", "cycles", "share"], rows, float_format="{:.3f}"
    ))

    # Skip-rate curve (Fig. 12's shape) --------------------------------
    series = skip_rate_series(log)
    skipped = sum(log.column("tiles_skipped", 0))
    scheduled = sum(log.column("tiles_total", 0))
    lines.append("")
    lines.append(
        f"tiles skipped: {skipped} of {scheduled} scheduled "
        f"({100.0 * skipped / scheduled if scheduled else 0.0:.1f}%)"
    )
    lines.append("skip rate per frame: "
                 + sparkline(series, width=width))
    disabled = sum(1 for flag in log.column("re_disabled", False) if flag)
    if disabled:
        lines.append(f"frames with RE disabled (uploads/refresh): {disabled}")

    # Hottest tiles (heatmap data) -------------------------------------
    lines.append("")
    lines.append(f"top {top} hottest tiles (most frames rendered):")
    rows = [
        [tile_id, rendered, skipped_count,
         rendered / log.num_frames if log.num_frames else 0.0]
        for tile_id, rendered, skipped_count in hottest_tiles(log, top)
    ]
    lines.append(format_table(
        ["tile", "rendered", "skipped", "render rate"], rows,
    ))
    return "\n".join(lines)
