"""Perf trajectory over the run registry: the ``repro trend`` backend.

``BENCH_pipeline.json`` pins a single performance point; the registry
finally gives it a *history*.  Every ``--profile`` run and every CI
bench job can append a bench manifest (:func:`~repro.obs.store.bench_manifest`)
and this module reads them back chronologically:

* :func:`trend_points` — bench entries grouped by *bench key* (command,
  frames, scale, games), so only like-for-like profiles are compared;
* :func:`render_trend` — the trajectory as a table (when, git rev, wall
  seconds, frames/s, counter signature) plus a wall-clock sparkline;
* :func:`check_trend` — regression gate: the newest point is compared
  against its predecessor with :func:`repro.perf.guard.compare_bench`
  semantics (counters exact — the simulation is deterministic — stage
  shares within tolerance, wall-clock optionally), the same contract
  the CI bench guard enforces, now with memory.
"""

from __future__ import annotations

import json
import time

from ..harness.reporting import format_table
from ..harness.timeline import sparkline
from ..perf.guard import compare_bench
from .store import RunRegistry

__all__ = [
    "check_trend",
    "fleet_trend",
    "render_fleet_trend",
    "render_trend",
    "trend_points",
]


def _registry(registry) -> RunRegistry:
    if isinstance(registry, RunRegistry):
        return registry
    return RunRegistry(registry)


def _bench_key(manifest: dict) -> str:
    key = manifest.get("bench_key") or {}
    games = key.get("games")
    return json.dumps({
        "command": key.get("command"),
        "frames": key.get("frames"),
        "scale": key.get("scale"),
        "games": sorted(games) if games else None,
    }, sort_keys=True)


def trend_points(registry, bench_key: str = None) -> list:
    """Bench manifests, oldest first, optionally filtered to one key.

    Returns ``(key, manifest)`` pairs; with ``bench_key=None`` the key
    of the *newest* point is chosen (the trajectory you are growing) and
    only its group is returned.
    """
    registry = _registry(registry)
    manifests = [
        registry.manifest(entry.run_id)
        for entry in registry.query(kind="bench")
    ]
    if not manifests:
        return []
    if bench_key is None:
        bench_key = _bench_key(manifests[-1])
    return [m for m in manifests if _bench_key(m) == bench_key]


def check_trend(registry, share_tolerance: float = 0.10,
                wall_tolerance: float = None) -> list:
    """Guard-style regression check of the newest bench point.

    Compares the newest point of the newest bench key against its
    predecessor in the same group.  Returns a list of human-readable
    violations (empty = pass; fewer than two comparable points also
    passes — there is nothing to regress against yet).
    """
    points = trend_points(registry)
    if len(points) < 2:
        return []
    return compare_bench(
        points[-2], points[-1],
        share_tolerance=share_tolerance, wall_tolerance=wall_tolerance,
    )


def fleet_trend(registry) -> list:
    """Per-fleet rollups over every fleet-stamped sweep point.

    Groups the registry's ``sweep-point`` entries by their ``fleet_id``
    stamp and aggregates each group: points, workers, total cycles,
    skipped tiles, wall span (first to last manifest), and — when the
    fleet directory is present beside the registry — the workers'
    merged execute-wall histogram and done/failed counts.  Ordered by
    first-manifest time, so fleets read chronologically: the fleet-wide
    perf dashboard.
    """
    registry = _registry(registry)
    groups: dict = {}
    for entry in registry.query(kind="sweep-point"):
        summary = entry.summary or {}
        fleet_id = summary.get("fleet_id")
        if not fleet_id:
            continue
        groups.setdefault(fleet_id, []).append(entry)
    rollups = []
    for fleet_id, entries in groups.items():
        workers = sorted({
            (e.summary or {}).get("fleet_worker")
            for e in entries if (e.summary or {}).get("fleet_worker")
        })
        created = [e.created_at or 0.0 for e in entries]
        point_ids = {(e.summary or {}).get("point_id") for e in entries}
        rollup = {
            "fleet_id": fleet_id,
            "alias": entries[0].alias,
            "technique": entries[0].technique,
            "num_frames": entries[0].num_frames,
            "points": len(point_ids),
            "workers": workers,
            "first_at": min(created),
            "last_at": max(created),
            "wall_span_s": max(created) - min(created),
            "total_cycles": sum(
                (e.summary or {}).get("total_cycles") or 0
                for e in entries
            ),
            "tiles_skipped": sum(
                (e.summary or {}).get("tiles_skipped") or 0
                for e in entries
            ),
            "point_set": "|".join(sorted(p for p in point_ids if p)),
            "histogram": None,
            "points_total": None,
            "failed": None,
        }
        rollup.update(_fleet_dir_rollup(registry, fleet_id))
        rollups.append(rollup)
    rollups.sort(key=lambda r: (r["first_at"], r["fleet_id"]))
    return rollups


def _fleet_dir_rollup(registry, fleet_id: str) -> dict:
    """Coordination-side aggregates when the fleet directory exists
    (same-host view); empty for a registry synced without it."""
    from ..errors import FleetError

    try:
        from ..fleet.claims import ClaimStore, tail_heartbeats
        from ..fleet.points import load_spec

        spec = load_spec(registry.root, fleet_id)
        claims = ClaimStore(registry.root, fleet_id)
        done = claims.done_records()
        histograms: dict = {}
        for record in tail_heartbeats(registry.root, fleet_id, {}):
            if record.get("histogram"):
                histograms[record["worker"]] = record["histogram"]
        merged = None
        if histograms:
            from ..service.telemetry import merge_histograms

            merged = merge_histograms(histograms.values())
        return {
            "points_total": len(spec.point_ids()),
            "failed": sorted(
                pid for pid, rec in done.items()
                if rec.get("state") != "done"
            ),
            "histogram": merged,
        }
    except (FleetError, OSError):
        return {}


def render_fleet_trend(registry, width: int = 60) -> str:
    """The fleet dashboard as text: per-fleet table + a cycles
    trajectory across fleets that ran the same point set."""
    rollups = fleet_trend(registry)
    if not rollups:
        return ("no fleet-stamped sweep points recorded; run "
                "`python -m repro fleet launch` or stamp a sweep with "
                "`python -m repro sweep --fleet-id NAME`")
    lines = [f"fleet trajectory: {len(rollups)} fleet(s)"]
    rows = []
    for rollup in rollups:
        total = rollup["points_total"]
        done = rollup["points"]
        hist = rollup["histogram"]
        rows.append([
            rollup["fleet_id"],
            f"{rollup['alias']}/{rollup['technique']}",
            f"{done}/{total}" if total else str(done),
            len(rollup["workers"]) or "-",
            rollup["wall_span_s"],
            rollup["total_cycles"] / 1e6,
            (f"p50={hist['p50']:.2f}s p95={hist['p95']:.2f}s"
             if hist and hist.get("count") else "-"),
        ])
    lines.append(format_table(
        ["fleet", "workload", "points", "workers", "span_s",
         "Mcycles", "execute wall"], rows, float_format="{:.2f}",
    ))
    for rollup in rollups:
        if rollup["failed"]:
            lines.append(
                f"fleet {rollup['fleet_id']}: FAILED points: "
                + ", ".join(rollup["failed"])
            )
    # Trajectory across re-runs of the same point set: like-for-like
    # only, mirroring the bench-key discipline of the bench trend.
    newest_set = rollups[-1]["point_set"]
    series = [r for r in rollups if r["point_set"] == newest_set]
    if len(series) > 1:
        cycles = [r["total_cycles"] for r in series]
        peak = max(cycles)
        if peak:
            lines.append(
                f"total cycles across {len(series)} run(s) of the same "
                "point set (normalized to worst): "
                + sparkline([c / peak for c in cycles], width=width)
            )
    return "\n".join(lines)


def _counter_signature(counters: dict) -> str:
    """Compact per-point counter fingerprint for the trend table."""
    frames = counters.get("frames")
    shaded = counters.get("fragments_shaded")
    skipped = counters.get("tiles_skipped")
    return f"f={frames} shade={shaded} skip={skipped}"


def render_trend(registry, width: int = 60) -> str:
    """The perf trajectory as text: table + wall-clock sparkline."""
    points = trend_points(registry)
    if not points:
        return ("no bench points recorded; append one with "
                "`python -m repro trend --append BENCH_pipeline.json` "
                "or run with --profile --registry")
    key = points[-1].get("bench_key") or {}
    lines = [
        f"bench trajectory: {len(points)} point(s) "
        f"(command={key.get('command')}, frames={key.get('frames')}, "
        f"scale={key.get('scale')})"
    ]
    rows = []
    walls = []
    for manifest in points:
        profile = manifest.get("profile", {})
        wall = profile.get("wall_seconds") or 0.0
        walls.append(wall)
        counters = profile.get("counters", {})
        frames = counters.get("frames") or 0
        when = time.strftime(
            "%Y-%m-%d %H:%M", time.localtime(manifest.get("created_at", 0))
        )
        rows.append([
            when,
            manifest.get("git_rev") or "-",
            wall,
            (frames / wall) if wall else 0.0,
            _counter_signature(counters),
        ])
    lines.append(format_table(
        ["when", "git", "wall_s", "frames/s", "counters"], rows,
        float_format="{:.3f}",
    ))
    peak = max(walls) if walls else 0.0
    if peak > 0.0 and len(walls) > 1:
        normalized = [wall / peak for wall in walls]
        lines.append("wall seconds (normalized to worst point): "
                     + sparkline(normalized, width=width))
    failures = check_trend(registry)
    if failures:
        lines.append("")
        lines.append(f"regression vs previous point: {len(failures)} "
                     "check(s) failed")
        for failure in failures:
            lines.append(f"  - {failure}")
    elif len(points) > 1:
        lines.append("no regression vs previous point "
                     "(counters exact, stage shares in tolerance)")
    return "\n".join(lines)
