"""Run registry: content-addressed manifests for cross-run analysis.

The per-run observability layer (traces, metrics logs, reports) answers
"what happened inside *this* run"; the paper's evaluation, however, is
inherently *comparative* — every figure sets RE against baseline, TE and
memoization across ten games.  The registry is the cross-run half: every
run the harness executes can drop a **manifest** — what ran (alias,
technique, frames, :meth:`~repro.config.GpuConfig.digest`), where it ran
(git revision, command), what came out (the ``RunResult`` summary down
to per-stage cycle parts and registry counters) and where the heavy
artifacts live (trace, metrics log, checkpoint, journal) — into a
content-addressed store with a queryable append-only index::

    results/registry/
        index.jsonl            # one line per recorded manifest
        runs/<run_id>.json     # the full manifest, content-addressed
        runs/<run_id>.crcs.json  # optional per-tile CRC matrix

``run_id`` is the SHA-256 of the manifest's canonical JSON, so identical
manifests dedupe and every id is stable across machines.  The index
holds a light projection (id, kind, alias, technique, config digest,
git rev, created_at, headline numbers) so queries never open manifests.

Downstream consumers: ``python -m repro runs`` lists the index,
``python -m repro diff`` compares two manifests
(:mod:`repro.obs.diff`), ``python -m repro trend`` follows bench
profiles over time (:mod:`repro.obs.trend`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import sys
import time

from ..errors import ReproError
from ..pipeline.kernels import backend_record

__all__ = [
    "RunRegistry",
    "append_jsonl_atomic",
    "bench_manifest",
    "claim_record",
    "done_record",
    "git_revision",
    "heartbeat_record",
    "run_manifest",
    "validate_tenant",
]

#: Environment variable naming a registry root the CLI records into when
#: no ``--registry`` flag is given.
REGISTRY_ENV_VAR = "REPRO_REGISTRY"

#: Manifest kinds the registry understands (free-form strings are
#: accepted; these are the ones the harness emits).
KINDS = ("run", "sweep-point", "bench", "figure", "golden")

#: Registry-root names a tenant namespace may not shadow: the store's
#: own layout lives there.  ``fleet`` holds distributed-sweep state
#: (:mod:`repro.fleet`) — claims, leases, heartbeats — not a tenant.
RESERVED_TENANTS = frozenset({"runs", "index.jsonl", "write_errors.jsonl",
                              "fleet"})

#: Schema tags for the fleet coordination records the registry layout
#: carries (see :mod:`repro.fleet.claims` for the protocol).
CLAIM_SCHEMA = "repro-fleet-claim-v1"
DONE_SCHEMA = "repro-fleet-done-v1"
HEARTBEAT_SCHEMA = "repro-fleet-heartbeat-v1"


def claim_record(point_id: str, fleet_id: str, worker: str,
                 lease_s: float, renewals: int = 0,
                 clock=time.time) -> dict:
    """A fleet claim/lease record: ``worker`` owns ``point_id`` until
    ``expires_at`` (the owner's clock; see DESIGN §13 on skew).  A claim
    is *created* atomically (``O_CREAT|O_EXCL``) and *renewed* by
    atomic replacement — both single-winner operations, so two workers
    can never believe they hold the same live lease."""
    now = clock()
    return {
        "schema": CLAIM_SCHEMA,
        "point_id": point_id,
        "fleet_id": fleet_id,
        "worker": worker,
        "pid": os.getpid(),
        "host": os.uname().nodename if hasattr(os, "uname") else None,
        "claimed_at": now,
        "lease_s": float(lease_s),
        "expires_at": now + float(lease_s),
        "renewals": int(renewals),
    }


def done_record(point_id: str, fleet_id: str, worker: str,
                summary: dict = None, run_id: str = None,
                state: str = "done", error: str = None,
                execute_s: float = None, clock=time.time) -> dict:
    """A fleet completion record — the exactly-once terminal marker for
    one sweep point (created ``O_CREAT|O_EXCL``, so even two workers
    racing a duplicated execution produce exactly one)."""
    return {
        "schema": DONE_SCHEMA,
        "point_id": point_id,
        "fleet_id": fleet_id,
        "worker": worker,
        "state": state,
        "run_id": run_id,
        "summary": summary,
        "error": error,
        "execute_s": execute_s,
        "completed_at": clock(),
    }


def heartbeat_record(worker: str, seq: int, clock=time.time,
                     **fields) -> dict:
    """One append-only heartbeat line a fleet worker publishes.

    ``seq`` is the worker's monotone record counter; ``ts`` is the
    worker's wall clock (readers clamp skew — a future ``ts`` reads as
    age zero, never as negative staleness)."""
    record = {
        "schema": HEARTBEAT_SCHEMA,
        "worker": worker,
        "seq": int(seq),
        "ts": clock(),
        "pid": os.getpid(),
    }
    record.update(fields)
    return record


def append_jsonl_atomic(path, record: dict) -> None:
    """Append one JSONL record with a single ``O_APPEND`` write.

    Multiple processes (fleet workers sharing a registry directory)
    append concurrently; ``O_APPEND`` plus one ``os.write`` per record
    keeps every line intact — lines may interleave but never tear.
    """
    line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(os.fspath(path), os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                 0o666)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def validate_tenant(tenant) -> str:
    """Validate a tenant id for use as a registry namespace directory.

    Tenant ids come in over the service socket from clients, so they are
    hostile input the same way sweep point-tags are: an id that
    traverses out of the registry (``../../etc``), collides with the
    store's own layout (``runs``), or differs from its own sanitized
    form (two tenants silently sharing one directory) is rejected up
    front with a :class:`~repro.errors.TenantError` rather than
    surprising anyone at write time.  Returns the validated id.
    """
    from ..errors import TenantError
    from ..harness.parallel import sanitize_component

    if not isinstance(tenant, str) or not tenant:
        raise TenantError(
            f"tenant id must be a non-empty string, got {tenant!r}"
        )
    if len(tenant) > 64:
        raise TenantError(
            f"tenant id too long ({len(tenant)} > 64 chars): {tenant[:32]!r}..."
        )
    if tenant in RESERVED_TENANTS or tenant in (".", ".."):
        raise TenantError(
            f"tenant id {tenant!r} shadows the registry's own layout"
        )
    if os.sep in tenant or "/" in tenant or "\\" in tenant:
        raise TenantError(
            f"tenant id {tenant!r} contains a path separator"
        )
    if sanitize_component(tenant) != tenant:
        raise TenantError(
            f"tenant id {tenant!r} is not filesystem-safe; use only "
            "letters, digits, '.', '_', '=' and '-'"
        )
    return tenant


def git_revision(cwd=None) -> str:
    """Current git commit (short hash), or ``None`` outside a checkout.

    ``REPRO_GIT_REV`` overrides (CI can stamp the exact rev without a
    work tree); failures of any kind degrade to ``None`` — a manifest
    without provenance beats no manifest.
    """
    override = os.environ.get("REPRO_GIT_REV")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _aggregate_cycle_parts(frames) -> dict:
    """Sum each stage part's cycles across a run's frames."""
    parts = {"geometry": {}, "raster": {}}
    for frame in frames:
        for side, bucket in (("geometry", frame.cycles.geometry_parts),
                             ("raster", frame.cycles.raster_parts)):
            totals = parts[side]
            for name, cycles in bucket.items():
                totals[name] = totals.get(name, 0.0) + cycles
    return parts


def _aggregate_traffic(result) -> dict:
    streams: dict = {}
    for frame in result.frames:
        for stream, nbytes in frame.traffic.items():
            streams[stream] = streams.get(stream, 0) + int(nbytes)
    return streams


def run_manifest(result, kind: str = "run", artifacts: dict = None,
                 extra: dict = None, git_rev: str = "auto",
                 created_at: float = None) -> dict:
    """Build a registry manifest from a :class:`~repro.harness.runner.RunResult`.

    The summary section is an *exact* projection of the RunResult
    aggregates — ``repro diff`` reports reconcile with the in-memory
    result to the last cycle because they are the same sums.
    """
    if git_rev == "auto":
        git_rev = git_revision()
    manifest = {
        "schema": "repro-run-manifest-v1",
        "kind": kind,
        "alias": result.alias,
        "technique": result.technique,
        "num_frames": result.num_frames,
        "config_digest": result.config.digest(),
        "config": result.config.to_dict(),
        "raster_backend": backend_record(),
        "git_rev": git_rev,
        "created_at": time.time() if created_at is None else created_at,
        "summary": {
            "total_cycles": result.total_cycles,
            "geometry_cycles": result.geometry_cycles,
            "raster_cycles": result.raster_cycles,
            "cycle_parts": _aggregate_cycle_parts(result.frames),
            "total_energy_nj": result.total_energy_nj,
            "gpu_energy_nj": result.gpu_energy_nj,
            "dram_energy_nj": result.dram_energy_nj,
            "fragments_rasterized": result.fragments_rasterized,
            "fragments_shaded": result.fragments_shaded,
            "tiles_skipped": result.tiles_skipped,
            "skipped_fraction": result.skipped_fraction(),
            "warmup_frames": result.warmup_frames,
            "traffic": _aggregate_traffic(result),
            "total_traffic_bytes": result.total_traffic_bytes,
            "final_frame_crc": result.final_frame_crc,
            "counters": (
                dict(result.counters)
                if getattr(result, "counters", None) else None
            ),
        },
        "artifacts": {
            key: str(value)
            for key, value in (artifacts or {}).items() if value is not None
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def bench_manifest(payload: dict, source=None, git_rev: str = "auto",
                   created_at: float = None) -> dict:
    """Build a registry manifest from a ``BENCH_*.json`` bench payload.

    ``payload`` is what :func:`repro.perf.write_bench` wrote (or its
    bare ``profile`` snapshot).  The *bench key* — command, frames,
    scale, game list — identifies comparable points, so the trend view
    never compares a 6-frame smoke profile against a 50-frame one.
    """
    profile = payload.get("profile", payload)
    if "counters" not in profile or "stage_seconds" not in profile:
        raise ReproError(
            "not a bench payload: expected 'counters' and 'stage_seconds'"
        )
    if git_rev == "auto":
        git_rev = git_revision()
    if created_at is None:
        created_at = payload.get("generated_at")
    if created_at is None and source is not None:
        try:
            created_at = os.path.getmtime(source)
        except OSError:
            created_at = None
    key = {
        "command": payload.get("command", "suite"),
        "frames": payload.get("frames"),
        "scale": payload.get("scale"),
        "games": payload.get("games"),
    }
    return {
        "schema": "repro-bench-manifest-v1",
        "kind": "bench",
        "bench_key": key,
        "git_rev": git_rev,
        "created_at": time.time() if created_at is None else created_at,
        "source": str(source) if source is not None else None,
        "profile": {
            "wall_seconds": profile.get("wall_seconds"),
            "stage_seconds": dict(profile.get("stage_seconds", {})),
            "stage_calls": dict(profile.get("stage_calls", {})),
            "counters": dict(profile.get("counters", {})),
            "rates": dict(profile.get("rates", {})),
        },
    }


@dataclasses.dataclass(frozen=True)
class IndexEntry:
    """One light row of the registry index."""

    run_id: str
    kind: str
    alias: str = None
    technique: str = None
    num_frames: int = None
    config_digest: str = None
    git_rev: str = None
    created_at: float = 0.0
    summary: dict = None

    @classmethod
    def from_record(cls, record: dict) -> "IndexEntry":
        return cls(**{
            field.name: record.get(field.name)
            for field in dataclasses.fields(cls)
        })


def _index_projection(run_id: str, manifest: dict) -> dict:
    """The light per-manifest row appended to ``index.jsonl``."""
    summary = {}
    if manifest["kind"] == "bench":
        profile = manifest.get("profile", {})
        summary = {
            "wall_seconds": profile.get("wall_seconds"),
            "counters": profile.get("counters"),
            "stage_seconds": profile.get("stage_seconds"),
        }
    else:
        full = manifest.get("summary", {})
        summary = {
            key: full.get(key)
            for key in ("total_cycles", "total_energy_nj",
                        "total_traffic_bytes", "tiles_skipped",
                        "skipped_fraction", "final_frame_crc")
        }
        if "parameters" in manifest:
            summary["parameters"] = manifest["parameters"]
        # Fleet-stamped manifests keep their coordination identity in
        # the projection so `repro trend/diff --fleet` can group points
        # from the index without opening every manifest.
        for key in ("fleet_id", "point_id", "fleet_worker"):
            if key in manifest:
                summary[key] = manifest[key]
    return {
        "run_id": run_id,
        "kind": manifest.get("kind"),
        "alias": manifest.get("alias"),
        "technique": manifest.get("technique"),
        "num_frames": manifest.get("num_frames"),
        "config_digest": manifest.get("config_digest"),
        "git_rev": manifest.get("git_rev"),
        "created_at": manifest.get("created_at"),
        "summary": summary,
    }


#: Registry paths a write-failure warning has already been printed for in
#: this process, so a sweep hammering a broken registry warns once, not
#: once per cell.
_WARNED_PATHS: set = set()


class RunRegistry:
    """Content-addressed manifest store rooted at one directory."""

    def __init__(self, root) -> None:
        self.root = os.fspath(root)
        self.runs_dir = os.path.join(self.root, "runs")
        self.index_path = os.path.join(self.root, "index.jsonl")
        self.errors_path = os.path.join(self.root, "write_errors.jsonl")

    # Tenancy ------------------------------------------------------------
    def for_tenant(self, tenant: str) -> "RunRegistry":
        """The per-tenant namespace registry ``<root>/<tenant>/``.

        The service daemon records each tenant's runs into its own
        namespace so tenants never contend on one ``index.jsonl`` and a
        tenant's history can be shipped/aged independently.  The tenant
        id is validated (:func:`validate_tenant`) — traversal and
        layout-shadowing ids raise :class:`~repro.errors.TenantError`.
        """
        return RunRegistry(os.path.join(self.root, validate_tenant(tenant)))

    def tenants(self) -> list:
        """Tenant namespaces present under this registry root (names of
        subdirectories that are themselves registries), sorted."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for name in sorted(os.listdir(self.root)):
            if name in RESERVED_TENANTS:
                continue
            sub = os.path.join(self.root, name)
            if not os.path.isdir(sub):
                continue
            if (os.path.exists(os.path.join(sub, "index.jsonl"))
                    or os.path.exists(os.path.join(sub, "runs"))
                    or os.path.exists(
                        os.path.join(sub, "write_errors.jsonl"))):
                found.append(name)
        return found

    def tenant_write_errors(self) -> dict:
        """``{tenant: [error records]}`` across every tenant namespace
        (tenants with no recorded write failures are omitted).  The root
        namespace's own failures are under :meth:`write_errors`."""
        errors = {}
        for tenant in self.tenants():
            records = self.for_tenant(tenant).write_errors()
            if records:
                errors[tenant] = records
        return errors

    # Writing ------------------------------------------------------------
    def note_write_error(self, exc, path=None) -> None:
        """Log a failed registry write instead of dropping it silently:
        a once-per-path stderr warning plus a best-effort JSONL sidecar
        whose count ``repro runs`` surfaces as ``registry_write_errors``.
        """
        target = os.fspath(path) if path is not None else self.root
        if target not in _WARNED_PATHS:
            _WARNED_PATHS.add(target)
            print(
                f"warning: registry write to {target} failed: {exc}",
                file=sys.stderr,
            )
        record = {"ts": time.time(), "path": target, "error": str(exc)}
        try:
            os.makedirs(self.root, exist_ok=True)
            with open(self.errors_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record) + "\n")
        except OSError:
            # The registry itself is unreachable; the stderr warning
            # above is all the signal left to give.
            pass

    def write_errors(self) -> list:
        """Write failures recorded by :meth:`note_write_error`, oldest
        first (empty when every write succeeded)."""
        if not os.path.exists(self.errors_path):
            return []
        errors = []
        with open(self.errors_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    errors.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return errors

    def record(self, manifest: dict, crcs=None) -> str:
        """Store a manifest; returns its content-addressed ``run_id``.

        ``crcs`` optionally attaches the run's per-tile CRC matrix
        (``(frames, tiles)`` of uint32) as a sibling artifact —
        ``repro diff`` uses it for tile-level divergence.  Re-recording
        an identical manifest is a no-op for the store but still appends
        an index row (the index is an event log; :meth:`entries` dedupes
        by id keeping the latest row).  A failed write is logged via
        :meth:`note_write_error` before the ``OSError`` propagates.
        """
        try:
            return self._record(manifest, crcs)
        except OSError as exc:
            self.note_write_error(exc)
            raise

    def _record(self, manifest: dict, crcs=None) -> str:
        os.makedirs(self.runs_dir, exist_ok=True)
        canonical = json.dumps(manifest, sort_keys=True, default=str)
        run_id = hashlib.sha256(canonical.encode()).hexdigest()[:16]
        path = os.path.join(self.runs_dir, f"{run_id}.json")
        if not os.path.exists(path):
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True,
                          default=str)
                handle.write("\n")
        if crcs is not None:
            crcs_path = os.path.join(self.runs_dir, f"{run_id}.crcs.json")
            with open(crcs_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {"tile_color_crcs":
                     [[int(v) for v in row] for row in crcs]},
                    handle,
                )
                handle.write("\n")
        # Single O_APPEND write per row: fleet workers on other
        # processes/hosts append the same index concurrently.
        append_jsonl_atomic(
            self.index_path, _index_projection(run_id, manifest),
        )
        return run_id

    def compact_index(self) -> tuple:
        """Rewrite ``index.jsonl`` deduped by run id, atomically.

        The index is an event log — re-recording a manifest appends a
        fresh row, and a fleet multiplies append volume by its worker
        count — so long-lived registries accumulate redundant rows.
        Compaction keeps the *latest* row per run id (the same row
        :meth:`entries` would surface) in first-seen order and swaps the
        file in with ``os.replace``, so concurrent readers see either
        the old log or the compacted one, never a partial file.  Returns
        ``(kept, reclaimed)`` row counts.
        """
        if not os.path.exists(self.index_path):
            return (0, 0)
        rows: dict = {}
        order: list = []
        total = 0
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"{self.index_path}:{lineno}: bad index row: {exc}"
                    ) from None
                total += 1
                run_id = record.get("run_id")
                if run_id not in rows:
                    order.append(run_id)
                rows[run_id] = record
        tmp = f"{self.index_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for run_id in order:
                handle.write(json.dumps(rows[run_id], sort_keys=True) + "\n")
        os.replace(tmp, self.index_path)
        return (len(order), total - len(order))

    def record_run(self, result, kind: str = "run", artifacts: dict = None,
                   extra: dict = None, store_crcs: bool = True) -> str:
        """Record a :class:`RunResult` (manifest + optional CRC matrix)."""
        manifest = run_manifest(
            result, kind=kind, artifacts=artifacts, extra=extra,
        )
        crcs = result.tile_color_crcs if store_crcs else None
        if crcs is not None and getattr(crcs, "size", len(crcs)) == 0:
            crcs = None
        return self.record(manifest, crcs=crcs)

    def record_bench(self, payload_or_path) -> str:
        """Record a bench payload (dict, or path to a ``BENCH_*.json``)."""
        if isinstance(payload_or_path, dict):
            manifest = bench_manifest(payload_or_path)
        else:
            with open(payload_or_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            manifest = bench_manifest(payload, source=payload_or_path)
        return self.record(manifest)

    # Reading ------------------------------------------------------------
    def entries(self) -> list:
        """Index rows as :class:`IndexEntry`, oldest first, deduped by
        run id (latest row wins), sorted by ``created_at`` then
        append order so trends read chronologically."""
        if not os.path.exists(self.index_path):
            return []
        rows: dict = {}
        order: list = []
        with open(self.index_path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ReproError(
                        f"{self.index_path}:{lineno}: bad index row: {exc}"
                    ) from None
                run_id = record.get("run_id")
                if run_id not in rows:
                    order.append(run_id)
                rows[run_id] = (lineno, record)
        entries = [
            IndexEntry.from_record(rows[run_id][1]) for run_id in order
        ]
        return sorted(
            entries,
            key=lambda e: (e.created_at or 0.0, rows[e.run_id][0]),
        )

    def query(self, kind: str = None, alias: str = None,
              technique: str = None, config_digest: str = None,
              git_rev: str = None) -> list:
        """Index entries matching every given filter, oldest first."""
        filters = {
            "kind": kind, "alias": alias, "technique": technique,
            "config_digest": config_digest, "git_rev": git_rev,
        }
        return [
            entry for entry in self.entries()
            if all(value is None or getattr(entry, name) == value
                   for name, value in filters.items())
        ]

    def resolve(self, ref: str) -> str:
        """Resolve a full or prefix run id (or manifest path) to an id."""
        ref = os.fspath(ref)
        if os.path.sep in ref or ref.endswith(".json"):
            # A manifest path: adopt its basename as the id if it lives
            # in this registry, else record-free load via manifest().
            stem = os.path.splitext(os.path.basename(ref))[0]
            if os.path.exists(os.path.join(self.runs_dir, f"{stem}.json")):
                return stem
            raise ReproError(f"{ref!r} is not in registry {self.root}")
        matches = sorted(
            name[:-len(".json")]
            for name in (os.listdir(self.runs_dir)
                         if os.path.isdir(self.runs_dir) else [])
            if name.endswith(".json") and not name.endswith(".crcs.json")
            and name.startswith(ref)
        )
        if not matches:
            raise ReproError(
                f"no run {ref!r} in registry {self.root} "
                f"(see `python -m repro runs`)"
            )
        if len(matches) > 1:
            raise ReproError(
                f"ambiguous run id {ref!r}: matches {matches[:6]}"
            )
        return matches[0]

    def manifest(self, ref: str) -> dict:
        """Load the full manifest for a run id (or unique prefix)."""
        run_id = self.resolve(ref)
        path = os.path.join(self.runs_dir, f"{run_id}.json")
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["run_id"] = run_id
        return manifest

    def crcs(self, ref: str):
        """The per-tile CRC matrix recorded beside a manifest, or ``None``."""
        run_id = self.resolve(ref)
        path = os.path.join(self.runs_dir, f"{run_id}.crcs.json")
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)["tile_color_crcs"]

    def find_golden(self, alias: str, technique: str, config_digest: str,
                    num_frames: int = None):
        """Latest ``kind="golden"`` entry pinning this exact point.

        A golden only binds when alias, technique and config digest all
        match — a golden recorded at one tile size never masks drift at
        another.  Returns the :class:`IndexEntry`, or ``None`` if this
        point has no recorded golden.
        """
        matches = [
            entry for entry in self.query(
                kind="golden", alias=alias, technique=technique,
                config_digest=config_digest,
            )
            if num_frames is None or entry.num_frames == num_frames
        ]
        return matches[-1] if matches else None
