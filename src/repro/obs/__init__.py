"""Observability: structured tracing and per-frame metrics.

The telemetry layer for the simulator — distinct from
:mod:`repro.perf`, which times the *simulator process* in aggregate.
This package records *time-resolved, per-entity* telemetry of the
simulated run:

* :class:`Tracer` / :class:`TraceRecorder` — span and instant events
  over the stage graph, emitted as Chrome trace-event JSON for
  Perfetto / ``chrome://tracing`` (``--trace out.json``);
* :class:`MetricsLog` — every registry counter sampled at each frame
  boundary into a JSONL time series plus per-tile skip heatmap data
  (``--metrics out.jsonl``);
* :mod:`repro.obs.report` — offline analysis of a metrics log
  (``python -m repro report run.metrics.jsonl``);
* :mod:`repro.obs.validate` — strict trace-event schema checks, so
  viewer compatibility is pinned by tests.
"""

from .metrics import MetricsLog, frame_record
from .report import render_report
from .tracer import NULL_TRACER, Tracer, TraceRecorder
from .validate import validate_trace, validate_trace_file

__all__ = [
    "MetricsLog",
    "NULL_TRACER",
    "TraceRecorder",
    "Tracer",
    "frame_record",
    "render_report",
    "validate_trace",
    "validate_trace_file",
]
