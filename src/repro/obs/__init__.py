"""Observability: tracing, metrics, run registry, and live telemetry.

The telemetry layer for the simulator — distinct from
:mod:`repro.perf`, which times the *simulator process* in aggregate.
This package records *time-resolved, per-entity* telemetry of the
simulated run and archives run outcomes for cross-run analysis:

* :class:`Tracer` / :class:`TraceRecorder` — span and instant events
  over the stage graph, emitted as Chrome trace-event JSON for
  Perfetto / ``chrome://tracing`` (``--trace out.json``);
* :class:`MetricsLog` — every registry counter sampled at each frame
  boundary into a JSONL time series plus per-tile skip heatmap data
  (``--metrics out.jsonl``);
* :mod:`repro.obs.report` — offline analysis of a metrics log
  (``python -m repro report run.metrics.jsonl``);
* :mod:`repro.obs.validate` — strict trace-event schema checks, so
  viewer compatibility is pinned by tests;
* :class:`RunRegistry` (:mod:`repro.obs.store`) — content-addressed
  archive of run/sweep/bench manifests under ``results/registry/``,
  the substrate for ``python -m repro runs / diff / trend``;
* :mod:`repro.obs.diff` — pairwise comparison of two registered runs
  (stage cycles, skip rates, traffic, counters, per-tile CRCs);
* :mod:`repro.obs.trend` — performance trajectory over registered
  bench profiles, with regression flagging (``repro trend --check``);
* :mod:`repro.obs.live` — live telemetry for parallel/supervised
  runs: workers stream per-frame progress to a
  :class:`LiveAggregator` that renders a status table, writes a
  ``live.json`` heartbeat and flags stalled workers.
"""

from .diff import diff_manifests, diff_results, diff_runs, render_diff
from .distributed import (
    ShardTracer,
    TraceContext,
    TraceShard,
    merge_shards,
    mint_trace,
)
from .live import NULL_LIVE, ChannelLiveSink, LiveAggregator, LiveSink
from .metrics import MetricsLog, frame_record
from .report import render_report
from .store import RunRegistry, bench_manifest, git_revision, run_manifest
from .tracer import NULL_TRACER, Tracer, TraceRecorder
from .trend import check_trend, render_trend, trend_points
from .validate import validate_trace, validate_trace_file

__all__ = [
    "ChannelLiveSink",
    "LiveAggregator",
    "LiveSink",
    "MetricsLog",
    "NULL_LIVE",
    "NULL_TRACER",
    "RunRegistry",
    "ShardTracer",
    "TraceContext",
    "TraceRecorder",
    "TraceShard",
    "Tracer",
    "bench_manifest",
    "check_trend",
    "diff_manifests",
    "diff_results",
    "diff_runs",
    "frame_record",
    "git_revision",
    "merge_shards",
    "mint_trace",
    "render_diff",
    "render_report",
    "render_trend",
    "run_manifest",
    "trend_points",
    "validate_trace",
    "validate_trace_file",
]
