"""Typed metric registry: named counters, snapshot-delta frame stats.

Every persistent stage registers its counters once under a dotted key
(``"vertex.shader_instructions"``, ``"cache.tile.misses"`` ...); the GPU
snapshots the registry at a frame boundary and diffs after the frame to
assemble :class:`~repro.pipeline.gpu.FrameStats` generically, instead of
hand-wiring each field.  The timing and energy models address counters
by the same keys (via ``FrameStats.metric``), so adding a counter is a
one-site change in the stage that owns it.
"""

from __future__ import annotations

import dataclasses

from ..errors import ReproError

#: Field types register_counters treats as counters (dataclass field
#: annotations arrive as strings under ``from __future__ import
#: annotations``).
_COUNTER_TYPES = (int, float, "int", "float")


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Declaration of one named counter."""

    key: str                 # dotted name, e.g. "fragment.stall_cycles"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.key or " " in self.key:
            raise ReproError(f"invalid metric key {self.key!r}")


class StatsRegistry:
    """Named counter registry with snapshot/delta reads.

    Getters are zero-argument callables returning the counter's current
    cumulative value; registration happens once, reads happen per frame.
    """

    def __init__(self) -> None:
        self._getters: dict = {}
        self._specs: dict = {}

    def register(self, key: str, getter, description: str = "") -> None:
        """Register one counter under ``key``; duplicate keys are bugs."""
        spec = MetricSpec(key, description)
        if key in self._getters:
            raise ReproError(
                f"metric {key!r} registered twice; metric keys must be "
                "unique per registry — the usual cause is two stages "
                "sharing a metrics_group"
            )
        self._getters[key] = getter
        self._specs[key] = spec

    def register_counters(self, group: str, stats, description: str = "") -> None:
        """Register every int/float field of a stats dataclass under
        ``group.<field>``."""
        for field in dataclasses.fields(stats):
            if field.type not in _COUNTER_TYPES:
                continue
            self.register(
                f"{group}.{field.name}",
                (lambda obj=stats, name=field.name: getattr(obj, name)),
                description,
            )

    @property
    def specs(self) -> tuple:
        """All registered :class:`MetricSpec`, in registration order."""
        return tuple(self._specs.values())

    def keys(self) -> tuple:
        return tuple(self._getters)

    def value(self, key: str):
        """Current cumulative value of one counter."""
        try:
            getter = self._getters[key]
        except KeyError:
            raise ReproError(f"unknown metric {key!r}") from None
        return getter()

    def snapshot(self) -> dict:
        """Current cumulative value of every counter."""
        return {key: getter() for key, getter in self._getters.items()}

    def delta(self, before: dict) -> dict:
        """Per-frame values: current counters minus a prior snapshot."""
        return {
            key: getter() - before.get(key, 0)
            for key, getter in self._getters.items()
        }

    def group_delta(self, group: str, cls, delta: dict):
        """Rebuild a stats dataclass from a delta's ``group.*`` keys."""
        prefix = f"{group}."
        return cls(**{
            field.name: delta[prefix + field.name]
            for field in dataclasses.fields(cls)
            if field.type in _COUNTER_TYPES
        })
