"""Stage-graph engine: the simulator's structural layer.

* :mod:`repro.engine.stage` — the :class:`Stage` protocol every pipeline
  block implements, plus the per-frame :class:`FrameContext`;
* :mod:`repro.engine.stats` — :class:`StatsRegistry` / :class:`MetricSpec`,
  the typed counter registry FrameStats is assembled from;
* :mod:`repro.engine.checkpoint` — the versioned, pickle-free state-dict
  codec;
* :mod:`repro.engine.factory` — technique construction by registry name;
* :mod:`repro.engine.session` — :class:`RenderSession`, the resumable
  run wrapper.

``session`` imports the pipeline (which imports ``engine.stage``), so
its symbols are re-exported lazily to keep the package import acyclic.
"""

from __future__ import annotations

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
    try_load_checkpoint,
)
from .factory import TECHNIQUES, make_technique
from .stage import FrameContext, Stage
from .stats import MetricSpec, StatsRegistry

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "FrameContext",
    "FrameMetrics",
    "MetricSpec",
    "RenderSession",
    "Stage",
    "StatsRegistry",
    "TECHNIQUES",
    "load_checkpoint",
    "make_technique",
    "save_checkpoint",
    "tile_color_crcs",
    "try_load_checkpoint",
]

#: Symbols resolved lazily from repro.engine.session (circular-import
#: avoidance: session -> pipeline -> engine.stage).
_SESSION_SYMBOLS = ("RenderSession", "FrameMetrics", "tile_color_crcs")


def __getattr__(name: str):
    if name in _SESSION_SYMBOLS:
        from . import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
