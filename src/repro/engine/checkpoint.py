"""Versioned, pickle-free checkpoint serialization.

A checkpoint is a nested state dict of plain Python values plus numpy
arrays and raw byte strings.  This module encodes that tree into pure
JSON (arrays and bytes become tagged base64 objects) and back, so a
checkpoint file is portable, inspectable and cannot execute code on
load — unlike pickle.

Exactness: ints and strings round-trip losslessly by construction;
floats round-trip exactly because ``json`` emits ``repr`` shortest
round-trip forms; array and byte payloads are base64 of the raw bytes.
A restored session therefore continues *bit-identically*.
"""

from __future__ import annotations

import base64
import json
import os

import numpy as np

from ..errors import CheckpointError

#: Bump when the checkpoint state-dict layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Magic value identifying a repro checkpoint payload.
CHECKPOINT_FORMAT = "repro.render-session"

_NDARRAY_TAG = "__ndarray__"
_BYTES_TAG = "__bytes__"


def encode_state(obj):
    """Recursively encode a state tree into JSON-serializable values."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {_NDARRAY_TAG: {
            "dtype": str(data.dtype),
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }}
    if isinstance(obj, (bytes, bytearray)):
        return {_BYTES_TAG: base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, dict):
        encoded = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"state dict keys must be strings, got {key!r}"
                )
            if key in (_NDARRAY_TAG, _BYTES_TAG):
                raise CheckpointError(f"reserved state key {key!r}")
            encoded[key] = encode_state(value)
        return encoded
    if isinstance(obj, (list, tuple)):
        return [encode_state(item) for item in obj]
    raise CheckpointError(
        f"cannot serialize {type(obj).__name__} in a checkpoint"
    )


def decode_state(obj):
    """Inverse of :func:`encode_state` (tuples come back as lists)."""
    if isinstance(obj, dict):
        if _NDARRAY_TAG in obj:
            meta = obj[_NDARRAY_TAG]
            raw = base64.b64decode(meta["data"])
            return np.frombuffer(raw, dtype=np.dtype(meta["dtype"])).reshape(
                meta["shape"]
            ).copy()
        if _BYTES_TAG in obj:
            return base64.b64decode(obj[_BYTES_TAG])
        return {key: decode_state(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_state(item) for item in obj]
    return obj


def save_checkpoint(state: dict, path) -> None:
    """Write a state dict to ``path`` as tagged JSON, stamped with the
    checkpoint format and version for validation on load.

    The write is atomic (temp file + ``os.replace`` in the same
    directory): a process killed mid-save leaves either the previous
    checkpoint or none, never a truncated file — the supervisor's
    crash-recovery path depends on every on-disk checkpoint being
    loadable.
    """
    if "format" in state or "version" in state:
        raise CheckpointError(
            "state dict must not define 'format' or 'version' itself"
        )
    payload = {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION}
    payload.update(state)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="ascii") as handle:
        json.dump(encode_state(payload), handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(path) -> dict:
    """Read a state dict written by :func:`save_checkpoint`."""
    with open(path, "r", encoding="ascii") as handle:
        state = decode_state(json.load(handle))
    if not isinstance(state, dict):
        raise CheckpointError(f"{path}: not a checkpoint payload")
    if state.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path}: not a {CHECKPOINT_FORMAT} checkpoint")
    if state.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {state.get('version')!r} is not "
            f"supported (expected {CHECKPOINT_VERSION})"
        )
    return state


def try_load_checkpoint(path) -> dict:
    """Best-effort :func:`load_checkpoint`: ``None`` if the file is
    missing, unparsable or not a supported checkpoint.  Recovery paths
    use this to fall back to a fresh run instead of failing the cell."""
    if path is None:
        return None
    try:
        return load_checkpoint(path)
    except (OSError, ValueError, KeyError, CheckpointError):
        return None
