"""Technique registry: construct redundancy-elimination techniques by
name, wired to the active :class:`~repro.config.GpuConfig`.

This is the single construction path the harness, the CLI and the
:class:`~repro.engine.session.RenderSession` all share — signature-buffer
compare distance and exact-mode signing both flow from here, so an
ablation config (``signature_compare_distance=1``) changes every
signature buffer consistently.
"""

from __future__ import annotations

from ..config import GpuConfig
from ..core import RenderingElimination
from ..errors import ReproError
from ..techniques import (
    CombinedElimination,
    FragmentMemoization,
    Technique,
    TransactionElimination,
)

#: Technique registry keyed by the names used throughout the benchmarks.
TECHNIQUES = ("baseline", "re", "te", "memo", "re+te")


def make_technique(name: str, config: GpuConfig, exact: bool = False):
    """Instantiate a technique by registry name.

    ``exact=True`` routes Rendering Elimination's signature computation
    through the bit-exact hardware unit models (slow; tests and small
    runs only).  It is ignored by techniques without a Signature Unit.
    """
    distance = config.signature_compare_distance
    if name == "baseline":
        return Technique()
    if name == "re":
        return RenderingElimination(
            config, exact=exact, compare_distance=distance
        )
    if name == "te":
        return TransactionElimination(config, compare_distance=distance)
    if name == "memo":
        return FragmentMemoization(config)
    if name == "re+te":
        return CombinedElimination(
            config, compare_distance=distance, exact=exact
        )
    raise ReproError(f"unknown technique {name!r}; choose from {TECHNIQUES}")
