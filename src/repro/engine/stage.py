"""The uniform Stage protocol and per-frame FrameContext.

The simulated pipeline of Fig. 4 is a fixed graph of *stateful* hardware
blocks.  Each block is a :class:`Stage`: constructed once when the GPU
is built, reused for every frame, with an explicit per-frame lifecycle
(``begin_frame`` / work / ``end_frame``).  Stage *stats* counters are
cumulative over the stage's lifetime; per-frame figures come from the
:class:`~repro.engine.stats.StatsRegistry` snapshot-delta, so a stage
never resets its counters mid-run.

:class:`FrameContext` threads the per-frame inputs (command stream,
parameter buffer, clear color, frame index) through the graph instead of
ad-hoc locals, and collects the frame's tile-skip decisions.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class FrameContext:
    """Per-frame state threaded through the stage graph."""

    frame_index: int
    commands: object = None          # CommandStream for this frame
    clear_color: tuple = None
    parameter_buffer: object = None  # ParameterBuffer (stable across frames)
    skipped_tile_ids: list = dataclasses.field(default_factory=list)


class Stage:
    """Base class for persistent pipeline stages.

    Subclasses set :attr:`metrics_group` (the dotted-key prefix their
    counters register under) and expose a dataclass ``stats`` attribute
    whose int fields are the stage's cumulative activity counters.
    """

    #: Dotted-key prefix for this stage's counters (e.g. ``"vertex"``).
    metrics_group: str = None

    def register_metrics(self, registry) -> None:
        """Register this stage's counters once, at GPU construction."""
        if self.metrics_group is not None:
            registry.register_counters(self.metrics_group, self.stats)

    def begin_frame(self, ctx: FrameContext = None) -> None:
        """Reset per-frame working state (never the stats counters)."""

    def end_frame(self, ctx: FrameContext = None) -> None:
        """Frame teardown hook; default no-op."""

    def reset(self) -> None:
        """Zero the cumulative counters and per-frame working state,
        returning the stage to its just-constructed statistics state."""
        stats = getattr(self, "stats", None)
        if stats is not None:
            for field in dataclasses.fields(stats):
                setattr(stats, field.name, field.default)
        self.begin_frame(None)
