"""RenderSession: an owned, resumable simulation run.

Bundles the pieces a benchmark run needs — a :class:`~repro.pipeline.Gpu`
with its technique, a :class:`~repro.timing.TimingModel`, an
:class:`~repro.power.EnergyModel`, and the per-frame
:class:`FrameMetrics` accumulated so far — behind a frame-at-a-time
:meth:`RenderSession.run` loop.

The session is *checkpointable*: :meth:`RenderSession.checkpoint`
captures every piece of cross-frame state (framebuffer banks, signature
buffers, technique state, DRAM pressure, traffic and cache totals, the
metrics rendered so far) into a versioned, pickle-free state dict, and
:meth:`RenderSession.from_checkpoint` rebuilds a session that continues
bit-identically — the acceptance test renders frames ``k..N`` after a
restore and compares FrameStats, per-tile CRCs and the final frame CRC
against an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from ..config import GpuConfig
from ..errors import CheckpointError
from ..pipeline import Gpu
from ..power import EnergyBreakdown, EnergyModel, technique_event_counts
from ..timing import CycleBreakdown, TimingModel
from ..workloads.games import build_scene
from .checkpoint import load_checkpoint, save_checkpoint
from .factory import make_technique


@dataclasses.dataclass
class FrameMetrics:
    """Per-frame digest of a rendered frame."""

    cycles: CycleBreakdown
    energy: EnergyBreakdown
    tiles_skipped: int
    flushes_suppressed: int
    fragments_rasterized: int
    fragments_shaded: int
    fragments_memoized: int
    traffic: dict
    geometry_overhead_cycles: int
    raster_overhead_cycles: int


def tile_color_crcs(config: GpuConfig, frame_colors: np.ndarray,
                    tile_rect) -> np.ndarray:
    """Per-tile CRC32 of a frame's RGBA8-quantized colors.

    The interior (full-sized) tiles are extracted with one reshape into a
    ``(ty, tx, size, size, 4)`` block array and CRC'd per contiguous
    block — zlib reads the buffer directly, no per-tile slice-and-copy.
    Edge tiles clipped by the screen keep the per-tile slicing path.
    The CRCs are byte-for-byte those of the sliced reference (regression
    tested against it).
    """
    quantized = (np.clip(frame_colors, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    size = config.tile_size
    tiles_x = config.tiles_x
    tiles_y = config.tiles_y
    full_x = config.screen_width // size
    full_y = config.screen_height // size
    crcs = np.empty(config.num_tiles, dtype=np.uint32)

    if full_x and full_y:
        blocks = np.ascontiguousarray(
            quantized[: full_y * size, : full_x * size]
            .reshape(full_y, size, full_x, size, 4)
            .swapaxes(1, 2)
        )
        crc32 = zlib.crc32
        for ty in range(full_y):
            row = blocks[ty]
            base = ty * tiles_x
            for tx in range(full_x):
                crcs[base + tx] = crc32(row[tx])

    if full_x < tiles_x or full_y < tiles_y:
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                if tx < full_x and ty < full_y:
                    continue
                tile_id = ty * tiles_x + tx
                x0, y0, x1, y1 = tile_rect(tile_id)
                crcs[tile_id] = zlib.crc32(
                    np.ascontiguousarray(quantized[y0:y1, x0:x1]).tobytes()
                )
    return crcs


# ----------------------------------------------------------------------
# Breakdown (de)serialization for checkpoints: plain dicts of floats,
# which round-trip exactly through the JSON codec (repr preserves every
# bit of a finite double).
# ----------------------------------------------------------------------

def _cycles_to_dict(cycles: CycleBreakdown) -> dict:
    return {
        "geometry_cycles": cycles.geometry_cycles,
        "raster_cycles": cycles.raster_cycles,
        "geometry_parts": dict(cycles.geometry_parts),
        "raster_parts": dict(cycles.raster_parts),
    }


def _cycles_from_dict(data: dict) -> CycleBreakdown:
    return CycleBreakdown(
        geometry_cycles=data["geometry_cycles"],
        raster_cycles=data["raster_cycles"],
        geometry_parts=dict(data["geometry_parts"]),
        raster_parts=dict(data["raster_parts"]),
    )


def _energy_to_dict(energy: EnergyBreakdown) -> dict:
    return {
        "gpu_dynamic_nj": energy.gpu_dynamic_nj,
        "gpu_static_nj": energy.gpu_static_nj,
        "dram_dynamic_nj": energy.dram_dynamic_nj,
        "dram_static_nj": energy.dram_static_nj,
        "technique_nj": energy.technique_nj,
        "parts": dict(energy.parts),
    }


def _energy_from_dict(data: dict) -> EnergyBreakdown:
    return EnergyBreakdown(
        gpu_dynamic_nj=data["gpu_dynamic_nj"],
        gpu_static_nj=data["gpu_static_nj"],
        dram_dynamic_nj=data["dram_dynamic_nj"],
        dram_static_nj=data["dram_static_nj"],
        technique_nj=data["technique_nj"],
        parts=dict(data["parts"]),
    )


def _metrics_to_dict(metrics: FrameMetrics) -> dict:
    return {
        "cycles": _cycles_to_dict(metrics.cycles),
        "energy": _energy_to_dict(metrics.energy),
        "tiles_skipped": metrics.tiles_skipped,
        "flushes_suppressed": metrics.flushes_suppressed,
        "fragments_rasterized": metrics.fragments_rasterized,
        "fragments_shaded": metrics.fragments_shaded,
        "fragments_memoized": metrics.fragments_memoized,
        "traffic": dict(metrics.traffic),
        "geometry_overhead_cycles": metrics.geometry_overhead_cycles,
        "raster_overhead_cycles": metrics.raster_overhead_cycles,
    }


def _metrics_from_dict(data: dict) -> FrameMetrics:
    return FrameMetrics(
        cycles=_cycles_from_dict(data["cycles"]),
        energy=_energy_from_dict(data["energy"]),
        tiles_skipped=int(data["tiles_skipped"]),
        flushes_suppressed=int(data["flushes_suppressed"]),
        fragments_rasterized=int(data["fragments_rasterized"]),
        fragments_shaded=int(data["fragments_shaded"]),
        fragments_memoized=int(data["fragments_memoized"]),
        traffic={k: int(v) for k, v in data["traffic"].items()},
        geometry_overhead_cycles=int(data["geometry_overhead_cycles"]),
        raster_overhead_cycles=int(data["raster_overhead_cycles"]),
    )


class RenderSession:
    """One benchmark x technique run, owned end to end.

    ``session.run()`` renders every remaining frame;
    ``session.run(until=k)`` stops after frame ``k-1`` so the caller can
    :meth:`checkpoint`.  ``RenderSession.from_checkpoint`` resumes.
    """

    def __init__(self, alias: str, technique: str = "baseline",
                 config: GpuConfig = None, num_frames: int = 50,
                 exact_signatures: bool = False, perf=None,
                 tracer=None, metrics=None, live=None) -> None:
        self.alias = alias
        self.technique_name = technique
        self.config = config if config is not None else GpuConfig.benchmark()
        self.num_frames = num_frames
        self.exact_signatures = exact_signatures
        self.scene = build_scene(alias)
        self.technique = make_technique(
            technique, self.config, exact=exact_signatures
        )
        self.gpu = Gpu(self.config, self.technique)
        self.gpu.perf = perf
        self.timing = TimingModel(self.config)
        self.energy_model = EnergyModel(self.config)
        self.metrics = None
        self.live = None
        self.attach_observability(tracer=tracer, metrics=metrics, live=live)

        self.frames: list = []          # FrameMetrics, one per frame
        self.frame_stats: list = []     # FrameStats, one per frame
        self._color_crcs: list = []     # (num_tiles,) uint32 per frame
        self._track_sigs = hasattr(self.technique, "current_signatures")
        self._input_sigs: list = [] if self._track_sigs else None
        self._events_before = technique_event_counts(self.technique)
        self.final_frame_crc = 0

    # Observability ------------------------------------------------------
    @property
    def tracer(self):
        """The GPU's tracer (falsy when tracing is disabled)."""
        return self.gpu.tracer

    def attach_observability(self, tracer=None, metrics=None,
                             header_fields: dict = None,
                             live=None) -> None:
        """Install a :class:`~repro.obs.Tracer`,
        :class:`~repro.obs.MetricsLog` and/or live-telemetry sink
        (:class:`~repro.obs.live.LiveSink`) on this session.

        The tracer receives the run's identity as trace metadata; the
        metrics log gets a header record describing the run (written
        once per log); the live sink receives a per-frame progress
        callback (falsy sinks cost one truthiness check per frame).
        ``header_fields`` adds caller context — the supervisor stamps
        attempt/retry ids this way so journals, traces and metrics logs
        correlate.  Passing ``None`` for any sink leaves it unchanged.
        """
        if tracer is not None:
            self.gpu.tracer = tracer or None
            if tracer:
                tracer.annotate(
                    alias=self.alias, technique=self.technique_name,
                    num_frames=self.num_frames,
                    config_digest=self.config.digest(),
                    **(header_fields or {}),
                )
        if live is not None:
            self.live = live or None
        if metrics is not None:
            self.metrics = metrics
            if metrics.header is None:
                metrics.write_header(
                    alias=self.alias, technique=self.technique_name,
                    num_frames=self.num_frames,
                    num_tiles=self.config.num_tiles,
                    tiles_x=self.config.tiles_x,
                    tiles_y=self.config.tiles_y,
                    tile_size=self.config.tile_size,
                    config_digest=self.config.digest(),
                    **(header_fields or {}),
                )

    # Warm reuse ---------------------------------------------------------
    def reset(self, num_frames: int = None) -> None:
        """Return this session to its just-constructed state so a warm
        engine pool (:mod:`repro.service.pool`) can reuse it for the
        next request instead of paying construction again.

        The contract — enforced by ``tests/engine/test_session_reuse.py``
        — is that a reset session renders *bit-identically* to a freshly
        constructed one: same per-tile frame CRCs, same golden skip
        counts, same end-of-run :class:`StatsRegistry` snapshot.  The
        GPU restores its pristine cross-frame state and zeroes stage
        counters (:meth:`~repro.pipeline.Gpu.reset`); the scene and the
        expensive constructions (stage graph, signature buffers, shared
        memos) stay warm.  Observability sinks are detached — each
        request attaches its own via :meth:`attach_observability`.

        ``num_frames`` optionally retargets the run length (the session
        identity — alias, technique, config — is fixed; the pool keys on
        it).
        """
        self.gpu.reset()
        self.gpu.perf = None
        self.gpu.tracer = None
        self.metrics = None
        self.live = None
        if num_frames is not None:
            self.num_frames = int(num_frames)
        self.frames = []
        self.frame_stats = []
        self._color_crcs = []
        if self._track_sigs:
            self._input_sigs = []
        self._events_before = technique_event_counts(self.technique)
        self.final_frame_crc = 0

    # Frame loop ---------------------------------------------------------
    @property
    def frames_rendered(self) -> int:
        return self.gpu.frame_index

    def run(self, until: int = None) -> int:
        """Render frames up to (exclusive) ``until`` — default: all
        remaining.  Returns the number of frames rendered by this call."""
        target = self.num_frames if until is None else min(until, self.num_frames)
        start = self.frames_rendered
        if target <= start:
            return 0
        for stream in self.scene.frames(target - start, start=start):
            self._render_one(stream)
        return target - start

    def run_checkpointed(self, stride: int, path, after_step=None) -> int:
        """Render every remaining frame, saving a checkpoint to ``path``
        each time ``stride`` more frames complete.

        The final frame is not checkpointed (the run is already done);
        every intermediate checkpoint is written atomically, so a
        process killed at any instant leaves a loadable checkpoint and a
        retry resumes bit-identically instead of starting over.

        ``after_step(frames_rendered)`` is invoked after each stride
        boundary, *after* its checkpoint is on disk — the supervisor
        uses it for progress reporting and deterministic fault
        injection.  ``stride <= 0`` renders everything in one step (one
        trailing ``after_step`` call, no checkpoints).  Returns the
        number of frames rendered by this call.
        """
        start = self.frames_rendered
        if stride is None or stride <= 0:
            stride = self.num_frames
        while self.frames_rendered < self.num_frames:
            self.run(until=min(self.num_frames, self.frames_rendered + stride))
            if path is not None and self.frames_rendered < self.num_frames:
                self.save(path)
            if after_step is not None:
                after_step(self.frames_rendered)
        return self.frames_rendered - start

    def _render_one(self, stream) -> None:
        metrics = self.metrics
        registry_before = (
            self.gpu.stats_registry.snapshot() if metrics is not None else None
        )
        stats = self.gpu.render_frame(stream, clear_color=self.scene.clear_color)
        cycles = self.timing.frame_cycles(stats)
        events_after = technique_event_counts(self.technique)
        frame_events = {
            key: events_after.get(key, 0) - self._events_before.get(key, 0)
            for key in events_after
        }
        self._events_before = events_after
        energy = self.energy_model.frame_energy(stats, cycles, frame_events)

        self.frames.append(FrameMetrics(
            cycles=cycles,
            energy=energy,
            tiles_skipped=stats.raster.tiles_skipped,
            flushes_suppressed=stats.raster.flushes_suppressed,
            fragments_rasterized=stats.raster.fragments_rasterized,
            fragments_shaded=stats.fragment.fragments_shaded,
            fragments_memoized=stats.fragment.fragments_memoized,
            traffic=dict(stats.traffic),
            geometry_overhead_cycles=stats.technique_geometry_stall_cycles,
            raster_overhead_cycles=stats.technique_raster_overhead_cycles,
        ))
        self.frame_stats.append(stats)
        self._color_crcs.append(tile_color_crcs(
            self.config, stats.frame_colors, self.gpu.framebuffer.tile_rect
        ))
        if self._track_sigs:
            self._input_sigs.append(self.technique.current_signatures())
        self.final_frame_crc = zlib.crc32(stats.frame_colors.tobytes())
        if metrics is not None:
            from ..obs.metrics import frame_record

            energy = self.frames[-1].energy
            metrics.sample(**frame_record(
                stats, cycles, energy,
                self.gpu.stats_registry.delta(registry_before),
            ))
        live = self.live
        if live:
            live.frame_done(
                self.frames_rendered, self.num_frames,
                tiles_skipped=stats.raster.tiles_skipped,
                fragments_shaded=stats.fragment.fragments_shaded,
                fragments_rasterized=stats.raster.fragments_rasterized,
            )

    # Result views -------------------------------------------------------
    @property
    def color_crcs(self) -> np.ndarray:
        """(frames_rendered, num_tiles) uint32 matrix of tile CRCs."""
        if not self._color_crcs:
            return np.empty((0, self.config.num_tiles), dtype=np.uint32)
        return np.stack(self._color_crcs)

    @property
    def input_sigs(self):
        """(frames_rendered, num_tiles) uint32 signatures, RE runs only."""
        if self._input_sigs is None:
            return None
        if not self._input_sigs:
            return np.empty((0, self.config.num_tiles), dtype=np.uint32)
        return np.stack(self._input_sigs)

    # Checkpointing ------------------------------------------------------
    def checkpoint(self) -> dict:
        """Versioned state dict capturing the run so far."""
        return {
            "session": {
                "alias": self.alias,
                "technique": self.technique_name,
                "num_frames": self.num_frames,
                "exact_signatures": self.exact_signatures,
                "config": self.config.to_dict(),
            },
            "gpu": self.gpu.state_dict(),
            "events_before": dict(self._events_before),
            "frames": [_metrics_to_dict(m) for m in self.frames],
            "color_crcs": [crcs for crcs in self._color_crcs],
            "input_sigs": (
                [sigs for sigs in self._input_sigs]
                if self._input_sigs is not None else None
            ),
            "final_frame_crc": self.final_frame_crc,
        }

    def save(self, path) -> None:
        save_checkpoint(self.checkpoint(), path)

    def restore(self, state: dict) -> None:
        """Load :meth:`checkpoint` output into this session in place."""
        meta = state["session"]
        if meta["alias"] != self.alias or meta["technique"] != self.technique_name:
            raise CheckpointError(
                f"checkpoint is for {meta['alias']!r}/{meta['technique']!r}, "
                f"session is {self.alias!r}/{self.technique_name!r}"
            )
        self.gpu.load_state_dict(state["gpu"])
        self._events_before = {
            key: int(value) for key, value in state["events_before"].items()
        }
        self.frames = [_metrics_from_dict(d) for d in state["frames"]]
        self.frame_stats = []  # raw FrameStats are not checkpointed
        self._color_crcs = [
            np.asarray(row, dtype=np.uint32) for row in state["color_crcs"]
        ]
        if state["input_sigs"] is not None and self._track_sigs:
            self._input_sigs = [
                np.asarray(row, dtype=np.uint32)
                for row in state["input_sigs"]
            ]
        self.final_frame_crc = int(state["final_frame_crc"])

    @classmethod
    def from_checkpoint(cls, source, config: GpuConfig = None,
                        perf=None, tracer=None,
                        metrics=None, live=None) -> "RenderSession":
        """Rebuild a session from a checkpoint file path or state dict.

        ``config`` defaults to the configuration stored in the
        checkpoint, so a resumed run simulates the same hardware.
        ``tracer``/``metrics`` attach observability sinks to the resumed
        session (sinks are host-side and never checkpointed).
        """
        state = source if isinstance(source, dict) else load_checkpoint(source)
        meta = state["session"]
        if config is None:
            config = GpuConfig.from_dict(meta["config"])
        session = cls(
            meta["alias"], meta["technique"], config=config,
            num_frames=int(meta["num_frames"]),
            exact_signatures=bool(meta["exact_signatures"]), perf=perf,
            tracer=tracer, metrics=metrics, live=live,
        )
        session.restore(state)
        return session
