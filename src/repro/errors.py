"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.config.GpuConfig`."""


class PipelineError(ReproError):
    """A malformed command stream or an internal pipeline invariant breach."""


class ShaderError(PipelineError):
    """A shader program received inputs it cannot process."""


class TraceError(ReproError):
    """A trace file could not be parsed or replayed."""


class HashingError(ReproError):
    """Invalid input to one of the CRC/hash units (e.g. bad block length)."""


class CheckpointError(ReproError):
    """A render-session checkpoint could not be serialized or restored."""


class WorkloadError(ReproError):
    """A declarative workload (DSL scene file) could not be used:
    unknown alias, unreadable file, or a registry collision."""


class WorkloadValidationError(WorkloadError):
    """A DSL scene document failed schema validation.

    Carries the offending key path (``nodes[2].rect``), the 1-based
    line in the source document when the parser could attribute one,
    and the source path — all three also baked into ``str(exc)`` so a
    bare print is actionable.
    """

    def __init__(self, message: str, path: str = None, line: int = None,
                 source=None) -> None:
        self.key_path = path
        self.line = line
        self.source = str(source) if source is not None else None
        where = ""
        if self.source is not None:
            where = self.source
        if line is not None:
            where = f"{where or '<document>'}:{line}"
        prefix = f"{where}: " if where else ""
        keypart = f"{path}: " if path else ""
        super().__init__(f"{prefix}{keypart}{message}")


class SupervisionError(ReproError):
    """A supervised harness run had cells fail after exhausting retries,
    or a fault-injection / supervision policy spec was invalid."""


class FleetError(ReproError):
    """A distributed-sweep (fleet) failure: unknown fleet id, a corrupt
    claim/done record, or a fleet whose points cannot all complete."""


class ServiceError(ReproError):
    """A render-service failure: malformed job spec, dead daemon,
    protocol violation, or a job that exhausted its retries."""


class AdmissionError(ServiceError):
    """A job the service *refused to accept* — backpressure, not a
    crash.  Subclasses say which admission-control limit tripped; the
    job was never queued and retrying later is legitimate."""


class BackpressureError(AdmissionError):
    """The daemon's bounded job queue is full; resubmit later."""


class TenantError(AdmissionError):
    """An invalid tenant id, or a tenant over its concurrency cap."""
