"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause without swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.config.GpuConfig`."""


class PipelineError(ReproError):
    """A malformed command stream or an internal pipeline invariant breach."""


class ShaderError(PipelineError):
    """A shader program received inputs it cannot process."""


class TraceError(ReproError):
    """A trace file could not be parsed or replayed."""


class HashingError(ReproError):
    """Invalid input to one of the CRC/hash units (e.g. bad block length)."""


class CheckpointError(ReproError):
    """A render-session checkpoint could not be serialized or restored."""


class SupervisionError(ReproError):
    """A supervised harness run had cells fail after exhausting retries,
    or a fault-injection / supervision policy spec was invalid."""
