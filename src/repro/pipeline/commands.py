"""The GPU command stream.

Applications talk to the GPU in two vocabularies (Section II): *state*
commands that configure the pipeline (shader, textures, constants) and
*drawcalls* that push a vertex stream through it with the current state.

Two command flavours matter specifically to Rendering Elimination
(Section III-E):

* :class:`SetConstants` — frequent, cheap, and *included* in tile
  signatures; every animation in the workloads is a constants change.
* :class:`UploadShader` / :class:`UploadTexture` — the infrequent API
  events (``glShaderSource`` / ``glTexImage2D``) that change global data
  *not* covered by signatures; the driver disables RE for any frame that
  contains one.

:class:`SetTexture` merely *binds* an already-uploaded texture and does
not disable RE; binding changes do flow into the signature indirectly
because workloads encode texture selection in their drawcall constants.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..errors import PipelineError
from ..geometry.primitives import VertexBuffer
from ..shaders.program import ShaderProgram, validate_constants
from ..textures.texture import Texture


@dataclasses.dataclass(frozen=True)
class SetShader:
    """Bind an already-uploaded shader program."""

    program: ShaderProgram


@dataclasses.dataclass(frozen=True)
class UploadShader:
    """Upload *new* shader code (glShaderSource): disables RE this frame."""

    program: ShaderProgram


@dataclasses.dataclass(frozen=True)
class SetTexture:
    """Bind an already-uploaded texture to a texture unit."""

    unit: int
    texture: Texture


@dataclasses.dataclass(frozen=True)
class UploadTexture:
    """Upload new texel data (glTexImage2D): disables RE this frame."""

    unit: int
    texture: Texture


class SetConstants:
    """Upload the drawcall constants ("uniforms") block."""

    def __init__(self, values) -> None:
        self.values = validate_constants(values)

    def __repr__(self) -> str:
        return f"SetConstants({self.values[:4]}...)"


@dataclasses.dataclass(frozen=True)
class Draw:
    """A drawcall: run the bound state over a vertex buffer."""

    buffer: VertexBuffer
    cull_backfaces: bool = False
    depth_test: bool = True
    depth_write: bool = True


Command = typing.Union[
    SetShader, UploadShader, SetTexture, UploadTexture, SetConstants, Draw
]

_COMMAND_TYPES = (
    SetShader, UploadShader, SetTexture, UploadTexture, SetConstants, Draw
)


class CommandStream:
    """An ordered list of commands for one frame."""

    def __init__(self, commands=None) -> None:
        self._commands: list = []
        for command in commands or []:
            self.append(command)

    def append(self, command: Command) -> "CommandStream":
        if not isinstance(command, _COMMAND_TYPES):
            raise PipelineError(f"not a GPU command: {command!r}")
        self._commands.append(command)
        return self

    # Convenience builders -------------------------------------------------
    def set_shader(self, program: ShaderProgram) -> "CommandStream":
        return self.append(SetShader(program))

    def set_texture(self, unit: int, texture: Texture) -> "CommandStream":
        return self.append(SetTexture(unit, texture))

    def set_constants(self, values) -> "CommandStream":
        return self.append(SetConstants(np.asarray(values)))

    def draw(self, buffer: VertexBuffer, **flags) -> "CommandStream":
        return self.append(Draw(buffer, **flags))

    def __iter__(self):
        return iter(self._commands)

    def __len__(self) -> int:
        return len(self._commands)

    @property
    def num_drawcalls(self) -> int:
        return sum(1 for c in self._commands if isinstance(c, Draw))

    @property
    def has_uploads(self) -> bool:
        """True when the frame contains a shader/texture upload — the
        condition under which the driver disables RE (Section III-E)."""
        return any(
            isinstance(c, (UploadShader, UploadTexture)) for c in self._commands
        )
