"""Tile Scheduler + Raster Pipeline: render tiles one at a time.

For each tile the scheduler fetches the tile's primitive data from the
Parameter Buffer (through the Tile Cache and L2 — a primitive binned to
many tiles is re-fetched per tile, and the 128-KB Tile Cache is what
makes those re-fetches cheap), then runs the classic raster sequence:
rasterize, early-Z, fragment shade, blend, and finally flush the on-chip
Color Buffer to the Frame Buffer in DRAM.

Technique hooks:

* ``should_skip_tile(tile_id)`` — consulted *before* any raster work;
  Rendering Elimination answers True for redundant tiles, which bypasses
  the entire sequence including the flush (Fig. 3).
* ``should_flush_tile(tile_id, colors)`` — consulted after rendering;
  Transaction Elimination answers False for tiles whose color signature
  matched, saving only the flush traffic.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from ..memory.cache import Cache
from ..memory.dram import Dram
from .blending import BlendStage
from .depth import DepthStage
from .fragment_stage import FragmentStage
from .framebuffer import FrameBuffer, TileBuffers
from .rasterizer import rasterize
from .tiling import TILE_POINTER_BYTES, ParameterBuffer


@dataclasses.dataclass
class RasterStats:
    tiles_scheduled: int = 0
    tiles_rendered: int = 0
    tiles_skipped: int = 0        # bypassed whole pipeline (RE)
    flushes_suppressed: int = 0   # rendered but not written back (TE)
    fragments_rasterized: int = 0
    interp_attr_fragments: int = 0   # fragments x attributes interpolated
    prim_tile_pairs: int = 0
    pb_bytes_fetched: int = 0
    flush_bytes: int = 0
    stall_cycles: int = 0


class RasterPipeline:
    """Renders a frame's tiles from a filled Parameter Buffer."""

    def __init__(self, config: GpuConfig, tile_cache: Cache, l2_cache: Cache,
                 dram: Dram, framebuffer: FrameBuffer,
                 fragment_stage: FragmentStage) -> None:
        self.config = config
        self.tile_cache = tile_cache
        self.l2 = l2_cache
        self.dram = dram
        self.framebuffer = framebuffer
        self.fragment_stage = fragment_stage
        self.depth_stage = DepthStage()
        self.blend_stage = BlendStage()
        self.buffers = TileBuffers(config.tile_size)
        self.stats = RasterStats()

    def _fetch_tile_primitives(self, tile_id: int,
                               parameter_buffer: ParameterBuffer) -> list:
        """Simulate Parameter-Buffer reads for one tile's polygon list."""
        prims = parameter_buffer.tile_primitives(tile_id)
        for prim in prims:
            nbytes = prim.parameter_buffer_bytes() + TILE_POINTER_BYTES
            start_line = prim.pb_offset // self.tile_cache.line_bytes
            end_line = (
                prim.pb_offset + prim.parameter_buffer_bytes() - 1
            ) // self.tile_cache.line_bytes
            for line in range(start_line, end_line + 1):
                if self.tile_cache.access(line):
                    continue
                if self.l2.access(line + (1 << 40)):  # PB region in L2 space
                    continue
                self.stats.stall_cycles += self.dram.read(
                    self.tile_cache.line_bytes, "primitives"
                )
            self.stats.pb_bytes_fetched += nbytes
        return prims

    def render_tile(self, tile_id: int, parameter_buffer: ParameterBuffer,
                    clear_color) -> np.ndarray:
        """Render one tile; returns its final on-chip colors (h, w, 4)."""
        rect = self.framebuffer.tile_rect(tile_id)
        self.buffers.clear(color=clear_color)
        prims = self._fetch_tile_primitives(tile_id, parameter_buffer)
        x0, y0, x1, y1 = rect

        for prim in prims:
            self.stats.prim_tile_pairs += 1
            batch = rasterize(prim, rect)
            if batch.count == 0:
                continue
            self.stats.fragments_rasterized += batch.count
            self.stats.interp_attr_fragments += (
                batch.count * prim.num_attributes
            )
            local_xs = batch.xs - x0
            local_ys = batch.ys - y0
            pass_mask = self.depth_stage.test(
                self.buffers.depth, local_xs, local_ys, batch.depth,
                depth_test=prim.state.depth_test,
                depth_write=prim.state.depth_write,
            )
            if not pass_mask.any():
                continue
            colors = self.fragment_stage.shade(batch, pass_mask)
            self.blend_stage.blend(
                self.buffers.color,
                local_xs[pass_mask], local_ys[pass_mask], colors,
                alpha=prim.state.shader.uses_alpha_blend,
            )
        self.stats.tiles_rendered += 1
        return self.buffers.color[: y1 - y0, : x1 - x0]

    def flush_tile(self, tile_id: int, tile_colors: np.ndarray) -> None:
        nbytes = self.framebuffer.write_tile(tile_id, tile_colors)
        self.stats.flush_bytes += nbytes
        self.stats.stall_cycles += self.dram.write(nbytes, "colors")
