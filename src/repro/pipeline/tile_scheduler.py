"""Tile Scheduler + Raster Pipeline: render tiles one at a time.

For each tile the scheduler fetches the tile's primitive data from the
Parameter Buffer (through the Tile Cache and L2 — a primitive binned to
many tiles is re-fetched per tile, and the 128-KB Tile Cache is what
makes those re-fetches cheap), then runs the classic raster sequence:
rasterize, early-Z, fragment shade, blend, and finally flush the on-chip
Color Buffer to the Frame Buffer in DRAM.

Technique hooks:

* ``should_skip_tile(tile_id)`` — consulted *before* any raster work;
  Rendering Elimination answers True for redundant tiles, which bypasses
  the entire sequence including the flush (Fig. 3).
* ``should_flush_tile(tile_id, colors)`` — consulted after rendering;
  Transaction Elimination answers False for tiles whose color signature
  matched, saving only the flush traffic.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from ..engine.stage import Stage
from ..memory.cache import Cache
from ..memory.dram import Dram
from .blending import BlendStage
from .depth import DepthStage
from .fragment_stage import FragmentStage
from .framebuffer import FrameBuffer, TileBuffers
from .rasterizer import RasterMemo, TiledRaster, rasterize
from .tiling import TILE_POINTER_BYTES, ParameterBuffer

#: Parameter-Buffer lines live in their own L2 address region.
_PB_L2_OFFSET = 1 << 40


class TileMemo:
    """Cross-frame memo of whole-tile render results, keyed by content.

    A tile's colors and every activity counter it produces are a pure
    function of its primitive list (screen positions, depths, attributes,
    bound state), the tile rect and the clear color.  Frame-coherent
    workloads re-render identical tiles every frame; on a hit the memo
    re-applies the recorded stat deltas and replays the recorded texture
    line streams through the live cache hierarchy, so cache state, DRAM
    pressure and all counters evolve exactly as a recomputation.  Purely
    an execution-speed cache — the scalar reference path never uses it —
    bounded by retained colors + replay lines with LRU eviction.

    Entries pin their shader objects: shader ``id`` participates in the
    key, so the ids must stay unrecycled while an entry lives.
    """

    def __init__(self, element_budget: int = 24_000_000) -> None:
        self.element_budget = element_budget
        self._entries: dict = {}
        self._retained = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            # Re-insert to mark as most recently used.
            del self._entries[key]
            self._entries[key] = entry
        else:
            self.misses += 1
        return entry

    def put(self, key: tuple, entry: tuple, cost: int) -> None:
        entries = self._entries
        entries[key] = entry + (cost,)
        self._retained += cost
        while self._retained > self.element_budget and len(entries) > 1:
            evicted = entries.pop(next(iter(entries)))
            self._retained -= evicted[-1]


#: Process-wide tile memo: keys are content-stable (tile rect included),
#: so hits are exact across independent Gpu instances.
_SHARED_TILE_MEMO = TileMemo()


def shared_tile_memo() -> TileMemo:
    """The process-wide :class:`TileMemo` used by batched-mode GPUs."""
    return _SHARED_TILE_MEMO


@dataclasses.dataclass
class RasterStats:
    tiles_scheduled: int = 0
    tiles_rendered: int = 0
    tiles_skipped: int = 0        # bypassed whole pipeline (RE)
    flushes_suppressed: int = 0   # rendered but not written back (TE)
    fragments_rasterized: int = 0
    interp_attr_fragments: int = 0   # fragments x attributes interpolated
    prim_tile_pairs: int = 0
    pb_bytes_fetched: int = 0
    flush_bytes: int = 0
    stall_cycles: int = 0


class RasterPipeline(Stage):
    """Renders a frame's tiles from a filled Parameter Buffer."""

    metrics_group = "raster"

    def __init__(self, config: GpuConfig, tile_cache: Cache, l2_cache: Cache,
                 dram: Dram, framebuffer: FrameBuffer,
                 fragment_stage: FragmentStage, batched: bool = True,
                 raster_memo: RasterMemo = None,
                 tile_memo: TileMemo = None) -> None:
        self.config = config
        self.tile_cache = tile_cache
        self.l2 = l2_cache
        self.dram = dram
        self.framebuffer = framebuffer
        self.fragment_stage = fragment_stage
        self.depth_stage = DepthStage()
        self.blend_stage = BlendStage()
        self.buffers = TileBuffers(config.tile_size)
        self.stats = RasterStats()
        # Batched mode rasterizes each primitive once for the whole
        # screen and slices per tile (bit-identical to per-tile calls;
        # see rasterizer.TiledRaster).  The scalar path remains the
        # reference semantics and never touches the memo.
        self.batched = batched
        self._memo = raster_memo
        self._tile_memo = tile_memo
        self._screen_rect = (0, 0, config.screen_width, config.screen_height)
        self._tiles_x = config.tiles_x
        self._frame_rasters: dict = {}
        self._state_keys: dict = {}

    def register_metrics(self, registry) -> None:
        """Register raster counters plus the owned depth/blend stages."""
        super().register_metrics(registry)
        self.depth_stage.register_metrics(registry)
        self.blend_stage.register_metrics(registry)

    def reset(self) -> None:
        """Counter reset cascades to the owned depth/blend stages, the
        same ownership :meth:`register_metrics` declares."""
        super().reset()
        self.depth_stage.reset()
        self.blend_stage.reset()

    def begin_frame(self, ctx=None) -> None:
        """Drop the per-frame ``id()``-keyed memo dicts.  Fresh dicts,
        not ``.clear()``: entries are keyed by primitive/state object
        identity, and ids can be recycled once a frame's objects die."""
        self._frame_rasters = {}
        self._state_keys = {}
        self.depth_stage.begin_frame(ctx)
        self.blend_stage.begin_frame(ctx)

    def _tile_fragments(self, prim, tile_id: int):
        """Batched-path fragments of ``prim`` inside ``tile_id``."""
        tiled = self._frame_rasters.get(id(prim))
        if tiled is None:
            if self._memo is not None:
                tiled = self._memo.get(prim, self._screen_rect)
            else:
                tiled = TiledRaster(
                    rasterize(prim, self._screen_rect),
                    self.config.tile_size, self._tiles_x,
                )
            self._frame_rasters[id(prim)] = tiled
        return tiled.tile(prim, tile_id)

    def _fetch_tile_primitives(self, tile_id: int,
                               parameter_buffer: ParameterBuffer) -> list:
        """Simulate Parameter-Buffer reads for one tile's polygon list."""
        prims = parameter_buffer.tile_primitives(tile_id)
        line_bytes = self.tile_cache.line_bytes
        lines = []
        nbytes = 0
        for prim in prims:
            pb_bytes = prim.parameter_buffer_bytes()
            nbytes += pb_bytes + TILE_POINTER_BYTES
            start_line = prim.pb_offset // line_bytes
            end_line = (prim.pb_offset + pb_bytes - 1) // line_bytes
            lines.extend(range(start_line, end_line + 1))
        # Drive the whole tile's line stream through the hierarchy in
        # one run per cache: each cache still sees the identical access
        # sequence, so hit/miss state and counts match the per-line loop.
        tile_misses = self.tile_cache.access_run(lines)
        if tile_misses:
            l2_misses = self.l2.access_run(
                [line + _PB_L2_OFFSET for line in tile_misses]
            )
            if l2_misses:
                self.stats.stall_cycles += self.dram.read_run(
                    len(l2_misses), line_bytes, "primitives"
                )
        self.stats.pb_bytes_fetched += nbytes
        return prims

    def _state_key(self, state) -> tuple:
        """Content key of a DrawState's shading-relevant bindings, cached
        per state instance for the pipeline's lifetime (one frame)."""
        key = self._state_keys.get(id(state))
        if key is None:
            key = (
                id(state.shader),
                tuple(
                    t.content_token if t is not None else None
                    for t in state.textures
                ),
                state.constants_bytes(),
                state.depth_test,
                state.depth_write,
            )
            self._state_keys[id(state)] = key
        return key

    def _tile_key(self, prims: list, rect: tuple, clear_color) -> tuple:
        parts = [rect, np.asarray(clear_color, dtype=np.float32).tobytes()]
        for prim in prims:
            parts.append(prim.screen.tobytes() + prim.depth.tobytes())
            parts.append(prim.attribute_bytes())
            parts.append(self._state_key(prim.state))
        return tuple(parts)

    #: Counter fields snapshotted around a tile render; the delta is what
    #: a TileMemo hit re-applies.  Texture cache accesses and texture
    #: stall cycles are excluded — those come from replaying the recorded
    #: line streams through the live caches.
    def _stats_snapshot(self) -> tuple:
        rs, ds = self.stats, self.depth_stage.stats
        fs, bs = self.fragment_stage.stats, self.blend_stage.stats
        return (
            rs.prim_tile_pairs, rs.fragments_rasterized,
            rs.interp_attr_fragments,
            ds.fragments_tested, ds.fragments_passed, ds.fragments_culled,
            fs.fragments_shaded, fs.fragments_memoized,
            fs.shader_instructions, fs.texture_fetches,
            bs.fragments_blended, bs.alpha_blends,
        )

    def _apply_stats_delta(self, delta: tuple) -> None:
        rs, ds = self.stats, self.depth_stage.stats
        fs, bs = self.fragment_stage.stats, self.blend_stage.stats
        rs.prim_tile_pairs += delta[0]
        rs.fragments_rasterized += delta[1]
        rs.interp_attr_fragments += delta[2]
        ds.fragments_tested += delta[3]
        ds.fragments_passed += delta[4]
        ds.fragments_culled += delta[5]
        fs.fragments_shaded += delta[6]
        fs.fragments_memoized += delta[7]
        fs.shader_instructions += delta[8]
        fs.texture_fetches += delta[9]
        bs.fragments_blended += delta[10]
        bs.alpha_blends += delta[11]

    def render_tile(self, tile_id: int, parameter_buffer: ParameterBuffer,
                    clear_color) -> np.ndarray:
        """Render one tile; returns its final on-chip colors (h, w, 4)."""
        rect = self.framebuffer.tile_rect(tile_id)
        prims = self._fetch_tile_primitives(tile_id, parameter_buffer)
        x0, y0, x1, y1 = rect

        # Whole-tile memo (batched mode only; disabled whenever a
        # stateful memo filter must observe every batch).
        memo = (
            self._tile_memo
            if self.batched and self.fragment_stage.memo_filter is None
            else None
        )
        key = None
        if memo is not None:
            key = self._tile_key(prims, rect, clear_color)
            entry = memo.get(key)
            if entry is not None:
                colors, delta, traffic, _pins, _cost = entry
                self._apply_stats_delta(delta)
                replay = self.fragment_stage.replay_texture_lines
                for raw_count, lines in traffic:
                    replay(raw_count, lines)
                self.stats.tiles_rendered += 1
                return colors
            self.fragment_stage.traffic_log = []

        self.buffers.clear(color=clear_color)
        snapshot = self._stats_snapshot() if memo is not None else None

        batched = self.batched
        for prim in prims:
            self.stats.prim_tile_pairs += 1
            if batched:
                batch = self._tile_fragments(prim, tile_id)
            else:
                batch = rasterize(prim, rect)
            if batch.count == 0:
                continue
            self.stats.fragments_rasterized += batch.count
            self.stats.interp_attr_fragments += (
                batch.count * prim.num_attributes
            )
            local_xs = batch.xs - x0
            local_ys = batch.ys - y0
            pass_mask = self.depth_stage.test(
                self.buffers.depth, local_xs, local_ys, batch.depth,
                depth_test=prim.state.depth_test,
                depth_write=prim.state.depth_write,
            )
            if not pass_mask.any():
                continue
            colors = self.fragment_stage.shade(batch, pass_mask)
            self.blend_stage.blend(
                self.buffers.color,
                local_xs[pass_mask], local_ys[pass_mask], colors,
                alpha=prim.state.shader.uses_alpha_blend,
            )
        self.stats.tiles_rendered += 1
        colors = self.buffers.color[: y1 - y0, : x1 - x0]
        if memo is not None:
            after = self._stats_snapshot()
            delta = tuple(b - a for a, b in zip(snapshot, after))
            traffic = tuple(self.fragment_stage.traffic_log)
            self.fragment_stage.traffic_log = None
            colors = colors.copy()
            pins = tuple({id(p.state.shader): p.state.shader
                          for p in prims}.values())
            cost = colors.size + sum(len(lines) for _, lines in traffic)
            memo.put(key, (colors, delta, traffic, pins), cost)
        return colors

    def flush_tile(self, tile_id: int, tile_colors: np.ndarray) -> None:
        nbytes = self.framebuffer.write_tile(tile_id, tile_colors)
        self.stats.flush_bytes += nbytes
        self.stats.stall_cycles += self.dram.write(nbytes, "colors")
