"""Top-level GPU: the full Tile-Based Rendering pipeline of Fig. 4.

The pipeline is a *stage graph*: every hardware block (command
processor, vertex stage, primitive assembly, polygon list builder,
raster pipeline, fragment stage) is a persistent
:class:`~repro.engine.stage.Stage` constructed once in
:meth:`Gpu.__init__` and reused across frames, mirroring the fixed
hardware of a real TBR GPU.  Per-frame state travels in a
:class:`~repro.engine.stage.FrameContext`; per-frame statistics come
from a :class:`~repro.engine.stats.StatsRegistry` snapshot-delta over
the stages' cumulative counters.

:meth:`Gpu.render_frame` runs one frame's command stream through the
Geometry Pipeline and then the Raster Pipeline tile by tile, returning a
:class:`FrameStats` with every activity count the timing and power
models consume, plus the rendered frame for functional verification.

The installed :class:`~repro.techniques.base.Technique` decides which
tiles are skipped (Rendering Elimination), which flushes are suppressed
(Transaction Elimination), and which fragments would have been memoized.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np

from ..config import GpuConfig
from ..engine.stage import FrameContext
from ..engine.stats import StatsRegistry
from ..memory.cache import Cache
from ..memory.dram import Dram
from ..memory.traffic import ALL_STREAMS, TrafficCounters
from ..techniques.base import Technique
from .blending import BlendStats
from .command_processor import CommandProcessor
from .commands import CommandStream
from .depth import DepthStats
from .fragment_stage import FragmentStage, FragmentStats, shared_shade_memo
from .framebuffer import DEFAULT_CLEAR_COLOR, FrameBuffer
from .primitive_assembly import AssemblyStats, PrimitiveAssembly
from .rasterizer import shared_raster_memo
from .tile_scheduler import RasterPipeline, RasterStats, shared_tile_memo
from .tiling import PolygonListBuilder, TilingStats
from .vertex_stage import VertexStage, VertexStageStats

#: FrameStats dataclass field -> (registry group, stats dataclass).
_STAT_GROUPS = (
    ("vertex", "vertex", VertexStageStats),
    ("assembly", "assembly", AssemblyStats),
    ("tiling", "tiling", TilingStats),
    ("raster", "raster", RasterStats),
    ("depth", "depth", DepthStats),
    ("fragment", "fragment", FragmentStats),
    ("blend", "blend", BlendStats),
)


@dataclasses.dataclass
class FrameStats:
    """Everything measured while rendering one frame."""

    frame_index: int = 0
    # Geometry side
    drawcalls: int = 0
    constant_uploads: int = 0
    vertex: VertexStageStats = dataclasses.field(default_factory=VertexStageStats)
    assembly: AssemblyStats = dataclasses.field(default_factory=AssemblyStats)
    tiling: TilingStats = dataclasses.field(default_factory=TilingStats)
    geometry_stall_cycles: int = 0
    technique_geometry_stall_cycles: int = 0
    # Raster side
    raster: RasterStats = dataclasses.field(default_factory=RasterStats)
    depth: DepthStats = dataclasses.field(default_factory=DepthStats)
    fragment: FragmentStats = dataclasses.field(default_factory=FragmentStats)
    blend: BlendStats = dataclasses.field(default_factory=BlendStats)
    technique_raster_overhead_cycles: int = 0
    # Memory
    traffic: dict = dataclasses.field(default_factory=dict)
    cache_accesses: dict = dataclasses.field(default_factory=dict)
    cache_misses: dict = dataclasses.field(default_factory=dict)
    # Technique bookkeeping
    technique_name: str = "baseline"
    re_disabled: bool = False
    skipped_tile_ids: tuple = ()
    # Functional output
    frame_colors: np.ndarray = None

    @property
    def tiles_total(self) -> int:
        return self.raster.tiles_scheduled

    @property
    def fragments_shaded(self) -> int:
        return self.fragment.fragments_shaded

    def metric(self, key: str):
        """Resolve a registry-style dotted key against this frame.

        The same keys the :class:`~repro.engine.stats.StatsRegistry`
        registers (``"vertex.shader_instructions"``,
        ``"traffic.texels"``, ``"cache.tile.misses"``), plus
        ``"command.*"`` for the top-level geometry counters and
        ``"technique.*"`` for the installed technique's overheads — the
        vocabulary the timing and energy models consume.
        """
        group, _, rest = key.partition(".")
        if group == "command":
            return getattr(self, rest)
        if group == "traffic":
            return self.traffic.get(rest, 0)
        if group == "cache":
            name, _, kind = rest.partition(".")
            table = (
                self.cache_accesses if kind == "accesses"
                else self.cache_misses
            )
            return table.get(name, 0)
        if group == "technique":
            return getattr(self, f"technique_{rest}")
        return getattr(getattr(self, group), rest)


class Gpu:
    """A simulated Mali-450-class TBR GPU."""

    def __init__(self, config: GpuConfig, technique: Technique = None,
                 batched: bool = True) -> None:
        self.config = config
        self.technique = technique if technique is not None else Technique()
        self.traffic = TrafficCounters()
        self.dram = Dram(config, self.traffic)
        self.vertex_cache = Cache(config.vertex_cache)
        self.texture_cache = Cache(config.texture_cache)
        self.tile_cache = Cache(config.tile_cache)
        self.l2_cache = Cache(config.l2_cache)
        self.caches = {
            "vertex": self.vertex_cache,
            "texture": self.texture_cache,
            "tile": self.tile_cache,
            "l2": self.l2_cache,
        }
        self.framebuffer = FrameBuffer(config)
        self.frame_index = 0
        # Batched raster path: full-screen rasterization sliced per tile,
        # with a cross-frame content memo (bit-identical to the scalar
        # per-tile path; see rasterizer.TiledRaster / RasterMemo).
        self.batched = batched
        screen_rect = (0, 0, config.screen_width, config.screen_height)
        self._raster_memo = (
            shared_raster_memo(config.tile_size, config.tiles_x, screen_rect)
            if batched else None
        )
        self._shade_memo = shared_shade_memo() if batched else None
        self._tile_memo = shared_tile_memo() if batched else None

        # --- Persistent stage graph (constructed once, reused) --------
        self.command_processor = CommandProcessor()
        self.vertex_stage = VertexStage(self.vertex_cache, self.dram)
        self.assembly = PrimitiveAssembly(
            config.screen_width, config.screen_height
        )
        self.plb = PolygonListBuilder(
            config, self.dram, listeners=(self.technique,)
        )
        self.fragment_stage = FragmentStage(
            self.texture_cache, self.l2_cache, self.dram
        )
        self.fragment_stage.shade_memo = self._shade_memo
        memo_filter = getattr(self.technique, "memo_filter", None)
        if callable(memo_filter):
            self.fragment_stage.memo_filter = memo_filter
        self.raster = RasterPipeline(
            config, self.tile_cache, self.l2_cache, self.dram,
            self.framebuffer, self.fragment_stage, batched=batched,
            raster_memo=self._raster_memo, tile_memo=self._tile_memo,
        )
        self.stages = (
            self.command_processor, self.vertex_stage, self.assembly,
            self.plb, self.raster, self.fragment_stage,
        )

        # --- Metric registry ------------------------------------------
        self.stats_registry = StatsRegistry()
        for stage in self.stages:
            stage.register_metrics(self.stats_registry)
        for stream in ALL_STREAMS:
            self.stats_registry.register(
                f"traffic.{stream}",
                (lambda counters=self.traffic, s=stream: counters.bytes(s)),
            )
        for name, cache in self.caches.items():
            self.stats_registry.register(
                f"cache.{name}.accesses",
                (lambda stats=cache.stats: stats.accesses),
            )
            self.stats_registry.register(
                f"cache.{name}.misses",
                (lambda stats=cache.stats: stats.misses),
            )

        # Optional repro.perf.PerfRecorder; None keeps the hot path free
        # of timing overhead.
        self.perf = None
        # Optional repro.obs.Tracer; None (or the falsy null tracer)
        # keeps the hot path at one truthiness check per decision.
        self.tracer = None
        self.technique.attach(self)

        # Pristine cross-frame state, captured once so :meth:`reset` can
        # return a used engine to its just-constructed state (the warm
        # engine pool in :mod:`repro.service` rests on this).  Deep-copied
        # on capture and on restore so no render ever aliases into it.
        self._pristine_state = copy.deepcopy(self.state_dict())

    # ------------------------------------------------------------------
    def render_frame(self, commands: CommandStream,
                     clear_color=DEFAULT_CLEAR_COLOR) -> FrameStats:
        """Render one frame; returns its statistics and final colors."""
        ctx = FrameContext(
            frame_index=self.frame_index,
            commands=commands,
            clear_color=clear_color,
            parameter_buffer=self.plb.parameter_buffer,
        )

        # Frame-boundary cache invalidation: the Parameter Buffer is
        # rewritten in place every frame (stale lines must not hit), and
        # the reuse distance of vertex/texel data between frames is an
        # entire frame -- far beyond on-chip capacity for real content
        # (Section III's premise).  On-chip buffers therefore start each
        # frame cold, as they would on hardware rendering real scenes.
        self.tile_cache.flush()
        self.l2_cache.flush()
        self.texture_cache.flush()
        self.vertex_cache.flush()

        before = self.stats_registry.snapshot()
        for stage in self.stages:
            stage.begin_frame(ctx)

        perf = self.perf
        tracer = self.tracer
        if tracer:
            tracer.begin("frame", frame=self.frame_index,
                         technique=self.technique.name)
        self.technique.begin_frame(self.frame_index, commands.has_uploads)

        # --- Geometry Pipeline ---------------------------------------
        geometry_timer = perf.stage("geometry") if perf else None
        if geometry_timer:
            geometry_timer.__enter__()
        if tracer:
            tracer.begin("geometry")
        for invocation in self.command_processor.process(commands):
            if tracer:
                tracer.begin("vertex")
            shaded = self.vertex_stage.run(invocation)
            if tracer:
                tracer.end("vertex")
                tracer.begin("assembly")
            primitives = self.assembly.assemble(invocation, shaded)
            if tracer:
                tracer.end("assembly")
                tracer.begin("binning")
            self.plb.bin_drawcall(invocation.state, primitives)
            if tracer:
                tracer.end("binning")

        self.technique.on_geometry_complete()
        if tracer:
            stall = self.technique.geometry_stall_cycles()
            if stall:
                tracer.instant("ot_queue_stall", cycles=stall)
            for tile_id, dropped, avoided in self.plb.occlusion_events:
                tracer.instant(
                    "tile_occluded", tile=tile_id,
                    prims_culled=dropped, fragments_avoided=avoided,
                )
            tracer.end("geometry")
        if geometry_timer:
            geometry_timer.__exit__(None, None, None)

        # --- Raster Pipeline ------------------------------------------
        raster_timer = perf.stage("raster") if perf else None
        if raster_timer:
            raster_timer.__enter__()
        if tracer:
            tracer.begin("raster")
        raster = self.raster
        skipped = ctx.skipped_tile_ids
        for tile_id in range(self.config.num_tiles):
            raster.stats.tiles_scheduled += 1
            if self.technique.should_skip_tile(tile_id):
                raster.stats.tiles_skipped += 1
                skipped.append(tile_id)
                if tracer:
                    tracer.instant("tile_skip", tile=tile_id)
                continue
            if tracer:
                tracer.begin("tile", tile=tile_id)
            tile_colors = raster.render_tile(
                tile_id, ctx.parameter_buffer, ctx.clear_color
            )
            if self.technique.should_flush_tile(tile_id, tile_colors):
                raster.flush_tile(tile_id, tile_colors)
            else:
                raster.stats.flushes_suppressed += 1
                if tracer:
                    tracer.instant("flush_suppressed", tile=tile_id)
                # The Frame Buffer already holds identical colors; the
                # functional write is still performed so the simulated
                # output stays exact even if the technique is wrong --
                # only the DRAM traffic is suppressed.
                self.framebuffer.write_tile(tile_id, tile_colors)
            if tracer:
                tracer.end("tile")

        self.technique.end_frame()
        if tracer:
            tracer.end("raster")
        if raster_timer:
            raster_timer.__exit__(None, None, None)
        for stage in self.stages:
            stage.end_frame(ctx)

        # --- Collect: generic snapshot-delta over the registry ---------
        stats = self._assemble_stats(ctx, before)
        if tracer:
            tracer.counter("tiles", {
                "skipped": stats.raster.tiles_skipped,
                "rendered": stats.raster.tiles_rendered,
            })
            tracer.counter("fragments", {
                "shaded": stats.fragment.fragments_shaded,
            })
            tracer.end("frame")
        if perf:
            perf.count("frames")
            perf.count("fragments_rasterized",
                       stats.raster.fragments_rasterized, stage="raster")
            perf.count("fragments_shaded", stats.fragment.fragments_shaded,
                       stage="raster")
            perf.count("tiles_rendered", stats.raster.tiles_rendered,
                       stage="raster")
            perf.count("tiles_skipped", stats.raster.tiles_skipped,
                       stage="raster")

        stats.frame_colors = self.framebuffer.snapshot_back()
        self.framebuffer.swap()
        self.frame_index += 1
        return stats

    def _assemble_stats(self, ctx: FrameContext, before: dict) -> FrameStats:
        """Build a frame's :class:`FrameStats` from the registry delta."""
        registry = self.stats_registry
        delta = registry.delta(before)
        stats = FrameStats(frame_index=ctx.frame_index)
        stats.technique_name = self.technique.name
        stats.drawcalls = delta["command.drawcalls"]
        stats.constant_uploads = delta["command.constant_uploads"]
        for field_name, group, cls in _STAT_GROUPS:
            setattr(stats, field_name, registry.group_delta(group, cls, delta))
        stats.traffic = {
            stream: delta[f"traffic.{stream}"] for stream in ALL_STREAMS
        }
        for name in self.caches:
            stats.cache_accesses[name] = delta[f"cache.{name}.accesses"]
            stats.cache_misses[name] = delta[f"cache.{name}.misses"]
        stats.technique_geometry_stall_cycles = (
            self.technique.geometry_stall_cycles()
        )
        stats.technique_raster_overhead_cycles = (
            self.technique.raster_overhead_cycles()
        )
        stats.skipped_tile_ids = tuple(ctx.skipped_tile_ids)
        stats.re_disabled = getattr(self.technique, "disabled_this_frame", False)
        return stats

    # ------------------------------------------------------------------
    # Checkpoint support (see repro.engine.session / repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Cross-frame state a restored GPU needs to continue
        bit-identically.

        Stage counters are deliberately absent: per-frame stats are
        registry snapshot-*deltas*, so absolute counter values never
        influence a future frame.  Cache contents are likewise absent —
        every cache is flushed at the next frame boundary anyway (only
        the flush's writeback count differs, which no FrameStats field
        records).  What does carry across frames: the framebuffer banks,
        the DRAM pressure recurrence, traffic totals, cache hit/miss
        totals, and the technique's signature/memo state.
        """
        return {
            "frame_index": self.frame_index,
            "batched": self.batched,
            "framebuffer": self.framebuffer.state_dict(),
            "dram": self.dram.state_dict(),
            "traffic": self.traffic.state_dict(),
            "caches": {
                name: cache.state_dict()
                for name, cache in self.caches.items()
            },
            "technique": self.technique.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.frame_index = int(state["frame_index"])
        self.framebuffer.load_state_dict(state["framebuffer"])
        self.dram.load_state_dict(state["dram"])
        self.traffic.load_state_dict(state["traffic"])
        for name, cache in self.caches.items():
            cache.load_state_dict(state["caches"][name])
        self.technique.load_state_dict(state["technique"])

    # ------------------------------------------------------------------
    # Warm reuse (see repro.service.pool.WarmEnginePool)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return this engine to its just-constructed state.

        The reuse contract the warm engine pool depends on: a reset
        engine must render *bit-identically* to a freshly constructed
        one — same frame CRCs, same skip decisions, same StatsRegistry
        snapshots (regression-tested in
        ``tests/engine/test_session_reuse.py``).  Two halves:

        * :meth:`load_state_dict` with the pristine capture restores
          every piece of cross-frame state (framebuffer banks, DRAM
          pressure, traffic/cache totals, technique signature history);
        * :meth:`~repro.engine.stage.Stage.reset` zeroes each stage's
          cumulative counters, which are deliberately outside
          :meth:`state_dict` (per-frame stats are snapshot-deltas) but
          *are* visible in end-of-run registry snapshots.

        The shared raster/shade/tile memos are left warm on purpose:
        they are content-keyed, so hits change wall-clock only, never
        output — that cross-request warmth is the service's payoff.
        """
        self.load_state_dict(copy.deepcopy(self._pristine_state))
        for stage in self.stages:
            stage.reset()
