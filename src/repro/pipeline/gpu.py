"""Top-level GPU: the full Tile-Based Rendering pipeline of Fig. 4.

:meth:`Gpu.render_frame` runs one frame's command stream through the
Geometry Pipeline (command processing, vertex shading, primitive
assembly, tiling) and then the Raster Pipeline tile by tile, returning a
:class:`FrameStats` with every activity count the timing and power
models consume, plus the rendered frame for functional verification.

The installed :class:`~repro.techniques.base.Technique` decides which
tiles are skipped (Rendering Elimination), which flushes are suppressed
(Transaction Elimination), and which fragments would have been memoized.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from ..memory.cache import Cache
from ..memory.dram import Dram
from ..memory.traffic import TrafficCounters
from ..techniques.base import Technique
from .blending import BlendStats
from .command_processor import CommandProcessor
from .commands import CommandStream
from .depth import DepthStats
from .fragment_stage import FragmentStage, FragmentStats, shared_shade_memo
from .framebuffer import DEFAULT_CLEAR_COLOR, FrameBuffer
from .primitive_assembly import AssemblyStats, PrimitiveAssembly
from .rasterizer import shared_raster_memo
from .tile_scheduler import RasterPipeline, RasterStats, shared_tile_memo
from .tiling import PolygonListBuilder, TilingStats
from .vertex_stage import VertexStage, VertexStageStats


@dataclasses.dataclass
class FrameStats:
    """Everything measured while rendering one frame."""

    frame_index: int = 0
    # Geometry side
    drawcalls: int = 0
    constant_uploads: int = 0
    vertex: VertexStageStats = dataclasses.field(default_factory=VertexStageStats)
    assembly: AssemblyStats = dataclasses.field(default_factory=AssemblyStats)
    tiling: TilingStats = dataclasses.field(default_factory=TilingStats)
    geometry_stall_cycles: int = 0
    technique_geometry_stall_cycles: int = 0
    # Raster side
    raster: RasterStats = dataclasses.field(default_factory=RasterStats)
    depth: DepthStats = dataclasses.field(default_factory=DepthStats)
    fragment: FragmentStats = dataclasses.field(default_factory=FragmentStats)
    blend: BlendStats = dataclasses.field(default_factory=BlendStats)
    technique_raster_overhead_cycles: int = 0
    # Memory
    traffic: dict = dataclasses.field(default_factory=dict)
    cache_accesses: dict = dataclasses.field(default_factory=dict)
    cache_misses: dict = dataclasses.field(default_factory=dict)
    # Technique bookkeeping
    technique_name: str = "baseline"
    re_disabled: bool = False
    skipped_tile_ids: tuple = ()
    # Functional output
    frame_colors: np.ndarray = None

    @property
    def tiles_total(self) -> int:
        return self.raster.tiles_scheduled

    @property
    def fragments_shaded(self) -> int:
        return self.fragment.fragments_shaded


class Gpu:
    """A simulated Mali-450-class TBR GPU."""

    def __init__(self, config: GpuConfig, technique: Technique = None,
                 batched: bool = True) -> None:
        self.config = config
        self.technique = technique if technique is not None else Technique()
        self.traffic = TrafficCounters()
        self.dram = Dram(config, self.traffic)
        self.vertex_cache = Cache(config.vertex_cache)
        self.texture_cache = Cache(config.texture_cache)
        self.tile_cache = Cache(config.tile_cache)
        self.l2_cache = Cache(config.l2_cache)
        self.framebuffer = FrameBuffer(config)
        self.frame_index = 0
        # Batched raster path: full-screen rasterization sliced per tile,
        # with a cross-frame content memo (bit-identical to the scalar
        # per-tile path; see rasterizer.TiledRaster / RasterMemo).
        self.batched = batched
        screen_rect = (0, 0, config.screen_width, config.screen_height)
        self._raster_memo = (
            shared_raster_memo(config.tile_size, config.tiles_x, screen_rect)
            if batched else None
        )
        self._shade_memo = shared_shade_memo() if batched else None
        self._tile_memo = shared_tile_memo() if batched else None
        # Optional repro.perf.PerfRecorder; None keeps the hot path free
        # of timing overhead.
        self.perf = None
        self.technique.attach(self)

    # ------------------------------------------------------------------
    def render_frame(self, commands: CommandStream,
                     clear_color=DEFAULT_CLEAR_COLOR) -> FrameStats:
        """Render one frame; returns its statistics and final colors."""
        stats = FrameStats(frame_index=self.frame_index)
        stats.technique_name = self.technique.name

        # Frame-boundary cache invalidation: the Parameter Buffer is
        # rewritten in place every frame (stale lines must not hit), and
        # the reuse distance of vertex/texel data between frames is an
        # entire frame -- far beyond on-chip capacity for real content
        # (Section III's premise).  On-chip buffers therefore start each
        # frame cold, as they would on hardware rendering real scenes.
        self.tile_cache.flush()
        self.l2_cache.flush()
        self.texture_cache.flush()
        self.vertex_cache.flush()

        traffic_before = dict(self.traffic.as_dict())
        caches = {
            "vertex": self.vertex_cache,
            "texture": self.texture_cache,
            "tile": self.tile_cache,
            "l2": self.l2_cache,
        }
        cache_before = {
            name: (cache.stats.accesses, cache.stats.misses)
            for name, cache in caches.items()
        }

        # --- Geometry Pipeline ---------------------------------------
        command_processor = CommandProcessor()
        vertex_stage = VertexStage(self.vertex_cache, self.dram)
        assembly = PrimitiveAssembly(
            self.config.screen_width, self.config.screen_height
        )
        plb = PolygonListBuilder(
            self.config, self.dram, listeners=(self.technique,)
        )
        fragment_stage = FragmentStage(
            self.texture_cache, self.l2_cache, self.dram
        )
        memo_filter = getattr(self.technique, "memo_filter", None)
        if callable(memo_filter):
            fragment_stage.memo_filter = memo_filter
        fragment_stage.shade_memo = self._shade_memo
        raster = RasterPipeline(
            self.config, self.tile_cache, self.l2_cache, self.dram,
            self.framebuffer, fragment_stage, batched=self.batched,
            raster_memo=self._raster_memo, tile_memo=self._tile_memo,
        )

        perf = self.perf
        self.technique.begin_frame(self.frame_index, commands.has_uploads)

        geometry_timer = perf.stage("geometry") if perf else None
        if geometry_timer:
            geometry_timer.__enter__()
        plb.begin_frame()
        for invocation in command_processor.process(commands):
            shaded = vertex_stage.run(invocation)
            primitives = assembly.assemble(invocation, shaded)
            plb.bin_drawcall(invocation.state, primitives)

        self.technique.on_geometry_complete()
        if geometry_timer:
            geometry_timer.__exit__(None, None, None)

        # --- Raster Pipeline ------------------------------------------
        raster_timer = perf.stage("raster") if perf else None
        if raster_timer:
            raster_timer.__enter__()
        skipped = []
        for tile_id in range(self.config.num_tiles):
            raster.stats.tiles_scheduled += 1
            if self.technique.should_skip_tile(tile_id):
                raster.stats.tiles_skipped += 1
                skipped.append(tile_id)
                continue
            tile_colors = raster.render_tile(
                tile_id, plb.parameter_buffer, clear_color
            )
            if self.technique.should_flush_tile(tile_id, tile_colors):
                raster.flush_tile(tile_id, tile_colors)
            else:
                raster.stats.flushes_suppressed += 1
                # The Frame Buffer already holds identical colors; the
                # functional write is still performed so the simulated
                # output stays exact even if the technique is wrong --
                # only the DRAM traffic is suppressed.
                self.framebuffer.write_tile(tile_id, tile_colors)

        self.technique.end_frame()
        if raster_timer:
            raster_timer.__exit__(None, None, None)
        if perf:
            perf.count("frames")
            perf.count("fragments_rasterized",
                       raster.stats.fragments_rasterized)
            perf.count("fragments_shaded",
                       fragment_stage.stats.fragments_shaded)
            perf.count("tiles_rendered", raster.stats.tiles_rendered)
            perf.count("tiles_skipped", raster.stats.tiles_skipped)

        # --- Collect ----------------------------------------------------
        stats.drawcalls = command_processor.stats.drawcalls
        stats.constant_uploads = command_processor.stats.constant_uploads
        stats.vertex = vertex_stage.stats
        stats.assembly = assembly.stats
        stats.tiling = plb.stats
        stats.raster = raster.stats
        stats.depth = raster.depth_stage.stats
        stats.fragment = fragment_stage.stats
        stats.blend = raster.blend_stage.stats
        stats.technique_geometry_stall_cycles = (
            self.technique.geometry_stall_cycles()
        )
        stats.technique_raster_overhead_cycles = (
            self.technique.raster_overhead_cycles()
        )
        stats.skipped_tile_ids = tuple(skipped)
        stats.re_disabled = getattr(self.technique, "disabled_this_frame", False)

        traffic_after = self.traffic.as_dict()
        stats.traffic = {
            stream: traffic_after[stream] - traffic_before.get(stream, 0)
            for stream in traffic_after
        }
        for name, cache in caches.items():
            before_acc, before_miss = cache_before[name]
            stats.cache_accesses[name] = cache.stats.accesses - before_acc
            stats.cache_misses[name] = cache.stats.misses - before_miss

        stats.frame_colors = self.framebuffer.snapshot_back()
        self.framebuffer.swap()
        self.frame_index += 1
        return stats
