"""Primitive Assembly: triangles out of shaded vertices, clipped and
culled, mapped to screen space.

The screen-space convention: pixel (0, 0) is top-left; NDC y is flipped
so +y in clip space points up on screen, matching OpenGL.  Depth maps
from NDC [-1, 1] to [0, 1] with smaller values closer.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.stage import Stage
from ..geometry import clipping
from ..geometry.primitives import Primitive


@dataclasses.dataclass
class AssemblyStats:
    triangles_in: int = 0
    triangles_out: int = 0
    culled_near: int = 0
    culled_backface: int = 0
    culled_viewport: int = 0
    culled_degenerate: int = 0


class PrimitiveAssembly(Stage):
    """Assemble, clip and cull one drawcall's triangles."""

    metrics_group = "assembly"

    def __init__(self, screen_width: int, screen_height: int) -> None:
        self.width = screen_width
        self.height = screen_height
        self.stats = AssemblyStats()
        self._next_prim_id = 0

    def begin_frame(self, ctx=None) -> None:
        self._next_prim_id = 0

    def assemble(self, invocation, shaded) -> list:
        """Returns the surviving :class:`Primitive` list for a drawcall."""
        indices = invocation.buffer.indices
        clip_all = shaded.clip
        primitives = []
        self.stats.triangles_in += len(indices)

        # Vectorized screen mapping for all vertices once.
        w = clip_all[:, 3:4]
        safe_w = np.where(np.abs(w) < clipping.W_EPSILON, 1.0, w)
        ndc = clip_all[:, :3] / safe_w
        screen_x = (ndc[:, 0] + 1.0) * 0.5 * self.width
        screen_y = (1.0 - (ndc[:, 1] + 1.0) * 0.5) * self.height
        depth = (ndc[:, 2] + 1.0) * 0.5
        screen_all = np.stack([screen_x, screen_y], axis=1).astype(np.float32)

        if not len(indices):
            return primitives

        # Vectorized culling over all triangles at once; every test is
        # the same elementwise arithmetic the per-triangle versions in
        # repro.geometry.clipping perform, so the surviving set (and
        # each cull counter) is identical to the scalar loop.
        tri_w = clip_all[:, 3][indices]                      # (m, 3)
        near_ok = np.all(tri_w > clipping.W_EPSILON, axis=1)
        tri_screen = screen_all[indices]                     # (m, 3, 2)
        tri_sx = tri_screen[:, :, 0]
        tri_sy = tri_screen[:, :, 1]
        sx_min = tri_sx.min(axis=1)
        sx_max = tri_sx.max(axis=1)
        sy_min = tri_sy.min(axis=1)
        sy_max = tri_sy.max(axis=1)
        vp_ok = ~(
            (sx_max < 0) | (sx_min >= self.width)
            | (sy_max < 0) | (sy_min >= self.height)
        )
        # Signed area in float32 (matching Primitive.signed_area2's
        # scalar float32 arithmetic), compared in float64 as the scalar
        # clipping helpers do.
        x0, y0 = tri_screen[:, 0, 0], tri_screen[:, 0, 1]
        x1, y1 = tri_screen[:, 1, 0], tri_screen[:, 1, 1]
        x2, y2 = tri_screen[:, 2, 0], tri_screen[:, 2, 1]
        area2 = (
            (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0)
        ).astype(np.float64)
        degenerate = np.abs(area2) < 1e-9
        backfacing = area2 <= 0.0

        reached_vp = near_ok
        reached_area = reached_vp & vp_ok
        keep = reached_area & ~degenerate
        self.stats.culled_near += int(np.count_nonzero(~near_ok))
        self.stats.culled_viewport += int(np.count_nonzero(reached_vp & ~vp_ok))
        self.stats.culled_degenerate += int(
            np.count_nonzero(reached_area & degenerate)
        )
        if invocation.cull_backfaces:
            self.stats.culled_backface += int(
                np.count_nonzero(keep & backfacing)
            )
            keep &= ~backfacing

        # Integer pixel bounds, precomputed for the binner.
        bx0 = np.floor(sx_min).astype(np.int64)
        by0 = np.floor(sy_min).astype(np.int64)
        bx1 = np.ceil(sx_max).astype(np.int64) + 1
        by1 = np.ceil(sy_max).astype(np.int64) + 1

        clip_f32 = clip_all.astype(np.float32)
        depth_f32 = depth.astype(np.float32)
        varying_items = list(shaded.varyings.items())
        state = invocation.state
        for i in np.nonzero(keep)[0]:
            tri = indices[i]
            varyings = {name: values[tri] for name, values in varying_items}
            prim = Primitive(
                screen=tri_screen[i],
                depth=depth_f32[tri],
                clip=clip_f32[tri],
                varyings=varyings,
                state=state,
                prim_id=self._next_prim_id,
            )
            prim._bounds = (
                int(bx0[i]), int(by0[i]), int(bx1[i]), int(by1[i])
            )
            self._next_prim_id += 1
            self.stats.triangles_out += 1
            primitives.append(prim)
        return primitives
