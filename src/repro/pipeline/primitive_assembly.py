"""Primitive Assembly: triangles out of shaded vertices, clipped and
culled, mapped to screen space.

The screen-space convention: pixel (0, 0) is top-left; NDC y is flipped
so +y in clip space points up on screen, matching OpenGL.  Depth maps
from NDC [-1, 1] to [0, 1] with smaller values closer.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..geometry import clipping
from ..geometry.primitives import Primitive


@dataclasses.dataclass
class AssemblyStats:
    triangles_in: int = 0
    triangles_out: int = 0
    culled_near: int = 0
    culled_backface: int = 0
    culled_viewport: int = 0
    culled_degenerate: int = 0


class PrimitiveAssembly:
    """Assemble, clip and cull one drawcall's triangles."""

    def __init__(self, screen_width: int, screen_height: int) -> None:
        self.width = screen_width
        self.height = screen_height
        self.stats = AssemblyStats()
        self._next_prim_id = 0

    def assemble(self, invocation, shaded) -> list:
        """Returns the surviving :class:`Primitive` list for a drawcall."""
        indices = invocation.buffer.indices
        clip_all = shaded.clip
        primitives = []
        self.stats.triangles_in += len(indices)

        # Vectorized screen mapping for all vertices once.
        w = clip_all[:, 3:4]
        safe_w = np.where(np.abs(w) < clipping.W_EPSILON, 1.0, w)
        ndc = clip_all[:, :3] / safe_w
        screen_x = (ndc[:, 0] + 1.0) * 0.5 * self.width
        screen_y = (1.0 - (ndc[:, 1] + 1.0) * 0.5) * self.height
        depth = (ndc[:, 2] + 1.0) * 0.5
        screen_all = np.stack([screen_x, screen_y], axis=1).astype(np.float32)

        for tri in indices:
            clip = clip_all[tri]
            if not clipping.near_plane_ok(clip):
                self.stats.culled_near += 1
                continue
            screen = screen_all[tri]
            if not clipping.viewport_overlaps(screen, self.width, self.height):
                self.stats.culled_viewport += 1
                continue
            varyings = {
                name: values[tri] for name, values in shaded.varyings.items()
            }
            prim = Primitive(
                screen=screen,
                depth=depth[tri].astype(np.float32),
                clip=clip.astype(np.float32),
                varyings=varyings,
                state=invocation.state,
                prim_id=self._next_prim_id,
            )
            area2 = prim.signed_area2()
            if clipping.is_degenerate(area2):
                self.stats.culled_degenerate += 1
                continue
            if invocation.cull_backfaces and clipping.is_backfacing(area2):
                self.stats.culled_backface += 1
                continue
            self._next_prim_id += 1
            self.stats.triangles_out += 1
            primitives.append(prim)
        return primitives
