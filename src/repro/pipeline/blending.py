"""Blending unit: merge shaded colors into the on-chip Color Buffer."""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.stage import Stage


@dataclasses.dataclass
class BlendStats:
    fragments_blended: int = 0
    alpha_blends: int = 0


class BlendStage(Stage):
    """Writes fragment colors into a tile-local color array."""

    metrics_group = "blend"

    def __init__(self) -> None:
        self.stats = BlendStats()

    def blend(self, color_tile: np.ndarray, local_xs: np.ndarray,
              local_ys: np.ndarray, colors: np.ndarray,
              alpha: bool = False) -> None:
        """REPLACE or SRC_ALPHA/ONE_MINUS_SRC_ALPHA blending.

        Within one fragment batch each pixel appears at most once (the
        rasterizer's fill rule guarantees it), so vectorized writes are
        race-free.
        """
        count = len(local_xs)
        self.stats.fragments_blended += count
        if count == 0:
            return
        if not alpha:
            color_tile[local_ys, local_xs] = colors
            return
        self.stats.alpha_blends += count
        src_alpha = colors[:, 3:4]
        dst = color_tile[local_ys, local_xs]
        out = colors * src_alpha + dst * (1.0 - src_alpha)
        out[:, 3] = np.clip(src_alpha[:, 0] + dst[:, 3] * (1.0 - src_alpha[:, 0]), 0.0, 1.0)
        color_tile[local_ys, local_xs] = out
