"""On-chip tile buffers and the double-buffered Frame Buffer.

:class:`TileBuffers` models the 1-KB on-chip Color Buffer and Depth
Buffer a TBR GPU renders into; :class:`FrameBuffer` models the two
full-screen buffers in system memory (Front displayed, Back rendered,
swapped each frame — Section IV-C), which is why Rendering Elimination
compares a tile's signature against the frame *two* back by default.
"""

from __future__ import annotations

import numpy as np

from ..config import GpuConfig
from ..errors import PipelineError

DEFAULT_CLEAR_COLOR = (0.0, 0.0, 0.0, 1.0)
DEFAULT_CLEAR_DEPTH = 1.0


class TileBuffers:
    """One tile's on-chip color and depth arrays."""

    def __init__(self, tile_size: int) -> None:
        self.tile_size = tile_size
        self.color = np.zeros((tile_size, tile_size, 4), dtype=np.float32)
        self.depth = np.ones((tile_size, tile_size), dtype=np.float32)

    def clear(self, color=DEFAULT_CLEAR_COLOR,
              depth: float = DEFAULT_CLEAR_DEPTH) -> None:
        self.color[:] = np.asarray(color, dtype=np.float32)
        self.depth[:] = depth


class FrameBuffer:
    """Double-buffered full-screen color storage in system memory."""

    def __init__(self, config: GpuConfig) -> None:
        self.config = config
        shape = (config.screen_height, config.screen_width, 4)
        self._buffers = [
            np.zeros(shape, dtype=np.float32),
            np.zeros(shape, dtype=np.float32),
        ]
        self._back = 0

    @property
    def back(self) -> np.ndarray:
        """The buffer the GPU is currently rendering into."""
        return self._buffers[self._back]

    @property
    def front(self) -> np.ndarray:
        """The buffer the display is reading."""
        return self._buffers[1 - self._back]

    def swap(self) -> None:
        self._back = 1 - self._back

    def tile_rect(self, tile_id: int) -> tuple:
        """Pixel rect (x0, y0, x1, y1) of a tile, clipped to the screen
        (edge tiles may be partial)."""
        if not (0 <= tile_id < self.config.num_tiles):
            raise PipelineError(f"tile id {tile_id} out of range")
        size = self.config.tile_size
        tx = tile_id % self.config.tiles_x
        ty = tile_id // self.config.tiles_x
        x0, y0 = tx * size, ty * size
        x1 = min(x0 + size, self.config.screen_width)
        y1 = min(y0 + size, self.config.screen_height)
        return x0, y0, x1, y1

    def tile_pixels(self, tile_id: int) -> int:
        x0, y0, x1, y1 = self.tile_rect(tile_id)
        return (x1 - x0) * (y1 - y0)

    def write_tile(self, tile_id: int, tile_color: np.ndarray) -> int:
        """Flush a tile's on-chip colors into the Back buffer; returns
        the bytes written (RGBA8 per pixel)."""
        x0, y0, x1, y1 = self.tile_rect(tile_id)
        h, w = y1 - y0, x1 - x0
        self.back[y0:y1, x0:x1] = tile_color[:h, :w]
        return h * w * 4

    def read_tile(self, tile_id: int, buffer: str = "back") -> np.ndarray:
        x0, y0, x1, y1 = self.tile_rect(tile_id)
        source = self.back if buffer == "back" else self.front
        return source[y0:y1, x0:x1].copy()

    def snapshot_back(self) -> np.ndarray:
        """Copy of the just-rendered frame (call before :meth:`swap`)."""
        return self.back.copy()

    def state_dict(self) -> dict:
        return {
            "buffers": [buf.copy() for buf in self._buffers],
            "back": self._back,
        }

    def load_state_dict(self, state: dict) -> None:
        for buf, saved in zip(self._buffers, state["buffers"]):
            buf[:] = saved
        self._back = int(state["back"])
