"""Command Processor: parses the command stream into draw invocations.

Walks a frame's :class:`~repro.pipeline.commands.CommandStream`,
maintains the bound pipeline state, and yields one
:class:`DrawInvocation` per drawcall.  Each invocation snapshots the
state into a :class:`~repro.geometry.primitives.DrawState` (the pipeline
state is "held constant during a drawcall invocation").

``constants_version`` increments on every :class:`SetConstants`, which is
what tells the Signature Unit to re-sign the constants block and clear
its per-drawcall tile bitmap.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.stage import Stage
from ..errors import PipelineError
from ..geometry.primitives import DrawState
from .commands import (
    CommandStream,
    Draw,
    SetConstants,
    SetShader,
    SetTexture,
    UploadShader,
    UploadTexture,
)


@dataclasses.dataclass
class DrawInvocation:
    """One drawcall with its snapshotted state and raster flags."""

    state: DrawState
    buffer: "object"
    cull_backfaces: bool
    depth_test: bool
    depth_write: bool


@dataclasses.dataclass
class CommandProcessorStats:
    commands_parsed: int = 0
    drawcalls: int = 0
    constant_uploads: int = 0
    shader_uploads: int = 0
    texture_uploads: int = 0


class CommandProcessor(Stage):
    """Stateful front end of the Geometry Pipeline."""

    metrics_group = "command"

    def __init__(self) -> None:
        self.stats = CommandProcessorStats()
        self.begin_frame()

    def begin_frame(self, ctx=None) -> None:
        """Drop the bound pipeline state: nothing carries across a frame
        boundary (each frame's command stream rebinds from scratch)."""
        self._shader = None
        self._constants = None
        self._textures: dict = {}
        self._constants_version = 0
        self._drawcall_id = 0
        self.frame_had_upload = False

    def process(self, stream: CommandStream):
        """Yield a :class:`DrawInvocation` per drawcall in ``stream``."""
        self.frame_had_upload = stream.has_uploads
        for command in stream:
            self.stats.commands_parsed += 1
            if isinstance(command, (SetShader, UploadShader)):
                self._shader = command.program
                if isinstance(command, UploadShader):
                    self.stats.shader_uploads += 1
            elif isinstance(command, (SetTexture, UploadTexture)):
                self._textures[command.unit] = command.texture
                if isinstance(command, UploadTexture):
                    self.stats.texture_uploads += 1
            elif isinstance(command, SetConstants):
                self._constants = command.values
                self._constants_version += 1
                self.stats.constant_uploads += 1
            elif isinstance(command, Draw):
                yield self._invoke(command)
            else:  # pragma: no cover - CommandStream validates types
                raise PipelineError(f"unknown command {command!r}")

    def _invoke(self, command: Draw) -> DrawInvocation:
        if self._shader is None:
            raise PipelineError("drawcall with no shader bound")
        if self._constants is None:
            raise PipelineError("drawcall with no constants uploaded")
        max_units = max(self._textures, default=-1) + 1
        textures = tuple(self._textures.get(u) for u in range(max_units))
        if self._shader.texture_fetches > 0 and (
            not textures or textures[0] is None
        ):
            raise PipelineError(
                f"shader {self._shader.name!r} samples a texture but none "
                "is bound to unit 0"
            )
        state = DrawState(
            shader=self._shader,
            constants=np.array(self._constants, dtype=np.float32),
            textures=textures,
            drawcall_id=self._drawcall_id,
            constants_version=self._constants_version,
            depth_test=command.depth_test,
            depth_write=command.depth_write,
            cull_backfaces=command.cull_backfaces,
        )
        self._drawcall_id += 1
        self.stats.drawcalls += 1
        return DrawInvocation(
            state=state,
            buffer=command.buffer,
            cull_backfaces=command.cull_backfaces,
            depth_test=command.depth_test,
            depth_write=command.depth_write,
        )
