"""Early Depth Test stage.

Operates on the per-tile on-chip depth buffer before fragment shading,
discarding fragments occluded by previously processed geometry (LESS
comparison).  Fragments culled here never reach the fragment processors
— the effect that produces the paper's "equal colors, different inputs"
tiles when a moving object is hidden behind opaque geometry.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.stage import Stage
from .kernels import early_z_test


@dataclasses.dataclass
class DepthStats:
    fragments_tested: int = 0
    fragments_passed: int = 0
    fragments_culled: int = 0


class DepthStage(Stage):
    """Early-Z over one tile's depth buffer."""

    metrics_group = "depth"

    def __init__(self) -> None:
        self.stats = DepthStats()

    def test(self, depth_tile: np.ndarray, local_xs: np.ndarray,
             local_ys: np.ndarray, depth: np.ndarray,
             depth_test: bool = True, depth_write: bool = True) -> np.ndarray:
        """Run the early-Z test; returns the pass mask.

        ``depth_tile`` is the tile-local depth array, updated in place
        for passing fragments when ``depth_write`` is set.
        """
        count = len(local_xs)
        self.stats.fragments_tested += count
        if not depth_test:
            mask = np.ones(count, dtype=bool)
            if depth_write:
                depth_tile[local_ys, local_xs] = depth
            self.stats.fragments_passed += count
            return mask

        mask = early_z_test(depth_tile, local_xs, local_ys, depth,
                            depth_write)
        passed = int(mask.sum())
        self.stats.fragments_passed += passed
        self.stats.fragments_culled += count - passed
        return mask
