"""Vertex Fetcher + Vertex Processors.

Fetches the drawcall's vertex attributes through the vertex cache
(misses go to DRAM on the "vertices" stream) and runs the bound vertex
shader over the whole vertex buffer in one vectorized call — one
invocation per vertex, as the hardware's single vertex processor would
issue them.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.stage import Stage
from ..geometry.vec import homogenize
from ..memory.cache import Cache, line_addresses
from ..memory.dram import Dram


@dataclasses.dataclass
class VertexStageStats:
    vertices_fetched: int = 0
    vertices_shaded: int = 0
    shader_instructions: int = 0
    fetch_bytes: int = 0
    stall_cycles: int = 0

    def reset(self) -> None:
        self.vertices_fetched = 0
        self.vertices_shaded = 0
        self.shader_instructions = 0
        self.fetch_bytes = 0
        self.stall_cycles = 0


@dataclasses.dataclass
class ShadedVertices:
    """Output of the vertex stage for one drawcall."""

    clip: np.ndarray      # (n, 4) clip-space positions
    varyings: dict        # name -> (n, k)


class VertexStage(Stage):
    """Vertex fetch and shading for one drawcall at a time."""

    metrics_group = "vertex"

    def __init__(self, vertex_cache: Cache, dram: Dram) -> None:
        self.cache = vertex_cache
        self.dram = dram
        self.stats = VertexStageStats()

    def run(self, invocation) -> ShadedVertices:
        buffer = invocation.buffer
        state = invocation.state

        # Fetch: every referenced vertex is read once per drawcall; the
        # cache model sees the line-granular address stream.
        used = np.unique(invocation.buffer.indices)
        addresses = buffer.vertex_addresses(used)
        per_vertex = buffer.vertex_bytes()
        # A vertex may straddle cache lines; touch both end lines.
        all_addrs = np.concatenate([addresses, addresses + per_vertex - 1])
        misses = self.cache.access_many(
            line_addresses(np.sort(all_addrs), self.cache.line_bytes)
        )
        self.stats.stall_cycles += self.dram.read(
            misses * self.cache.line_bytes, "vertices"
        )

        self.stats.vertices_fetched += len(used)
        self.stats.fetch_bytes += len(used) * per_vertex

        # Shade.
        positions = homogenize(buffer.positions)
        clip, varyings = state.shader.run_vertex(
            positions, buffer.attributes, state.constants
        )
        self.stats.vertices_shaded += buffer.num_vertices
        self.stats.shader_instructions += (
            buffer.num_vertices * state.shader.vertex_instructions
        )
        return ShadedVertices(clip=clip, varyings=varyings)
