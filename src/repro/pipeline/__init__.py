"""The Tile-Based Rendering pipeline (Section II baseline architecture)."""

from .command_processor import CommandProcessor, DrawInvocation
from .commands import (
    CommandStream,
    Draw,
    SetConstants,
    SetShader,
    SetTexture,
    UploadShader,
    UploadTexture,
)
from .framebuffer import DEFAULT_CLEAR_COLOR, FrameBuffer, TileBuffers
from .gpu import FrameStats, Gpu
from .rasterizer import FragmentBatch, rasterize
from .tiling import ParameterBuffer, PolygonListBuilder

__all__ = [
    "CommandProcessor",
    "DrawInvocation",
    "CommandStream",
    "Draw",
    "SetConstants",
    "SetShader",
    "SetTexture",
    "UploadShader",
    "UploadTexture",
    "DEFAULT_CLEAR_COLOR",
    "FrameBuffer",
    "TileBuffers",
    "FrameStats",
    "Gpu",
    "FragmentBatch",
    "rasterize",
    "ParameterBuffer",
    "PolygonListBuilder",
]
