"""Raster inner-loop kernels: numpy reference plus an optional compiled
backend.

The two hottest inner loops of the functional raster path — the
edge-function coverage grid of :func:`repro.pipeline.rasterizer.rasterize`
and the early-Z compare/update of
:class:`repro.pipeline.depth.DepthStage` — are factored out here behind a
backend switch:

* ``numpy`` (default) — the vectorized reference implementations, the
  exact expressions the pre-kernel pipeline evaluated;
* ``compiled`` — numba ``njit`` loops when numba is importable, falling
  back to the numpy implementations otherwise (the flag is always safe
  to pass; environments without numba just keep the reference path).

Both backends are required to be **bit-identical**: every arithmetic
operation is elementwise IEEE float64/float32 in the same order, with no
fastmath and no reassociation, so frame-buffer CRCs, fragment counts and
every simulated counter are independent of the backend.  The selection
is still recorded in run manifests (see
:func:`backend_record` / :mod:`repro.obs.store`) so ``repro diff`` can
warn rather than silently compare runs that exercised different code
paths.

Selection is process-wide.  :func:`set_raster_backend` also exports the
choice through the ``REPRO_RASTER_BACKEND`` environment variable, so
worker processes forked or spawned by the parallel harness and the
supervisor inherit it; a fresh process reads the variable at import.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigError

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "HAVE_NUMBA",
    "active_backend",
    "available_backends",
    "backend_record",
    "early_z_test",
    "edge_coverage",
    "requested_backend",
    "set_raster_backend",
]

#: Environment variable carrying the backend choice into worker processes.
BACKEND_ENV_VAR = "REPRO_RASTER_BACKEND"

#: Accepted ``--raster-backend`` values.
BACKENDS = ("numpy", "compiled")

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: The requested backend; ``None`` until first resolved from the
#: environment (or set explicitly via :func:`set_raster_backend`).
_REQUESTED = None


def available_backends() -> tuple:
    """Backends :func:`set_raster_backend` accepts (both always valid:
    ``compiled`` degrades to the numpy reference without numba)."""
    return BACKENDS


def set_raster_backend(name: str) -> str:
    """Select the raster kernel backend for this process and (via the
    environment) any worker processes it launches.  Returns the name."""
    global _REQUESTED
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown raster backend {name!r}: choose from {BACKENDS}"
        )
    _REQUESTED = name
    os.environ[BACKEND_ENV_VAR] = name
    return name


def requested_backend() -> str:
    """The backend in effect: explicit selection, else the environment,
    else ``numpy``.  An unknown environment value raises, loudly —
    silently falling back would un-record the user's intent."""
    global _REQUESTED
    if _REQUESTED is None:
        name = os.environ.get(BACKEND_ENV_VAR) or "numpy"
        if name not in BACKENDS:
            raise ConfigError(
                f"{BACKEND_ENV_VAR}={name!r}: choose from {BACKENDS}"
            )
        _REQUESTED = name
    return _REQUESTED


def active_backend() -> str:
    """What actually executes: ``"compiled"`` only when requested *and*
    numba imported; otherwise ``"numpy"``."""
    if requested_backend() == "compiled" and HAVE_NUMBA:
        return "compiled"
    return "numpy"


def backend_record() -> dict:
    """The backend provenance run manifests record: what was asked for
    and whether the jit actually ran (`repro diff` compares this)."""
    return {
        "requested": requested_backend(),
        "active": active_backend(),
        "numba": HAVE_NUMBA,
    }


def _use_jit() -> bool:
    return requested_backend() == "compiled" and HAVE_NUMBA


# ----------------------------------------------------------------------
# Edge-function coverage grid
# ----------------------------------------------------------------------

def _edge_coverage_numpy(v0x, v0y, v1x, v1y, v2x, v2y,
                         x0, y0, x1, y1, t0, t1, t2):
    # Open grids broadcast through the edge functions (cheaper than a
    # full meshgrid materialization).
    px = np.arange(x0, x1, dtype=np.float64)[None, :] + 0.5
    py = np.arange(y0, y1, dtype=np.float64)[:, None] + 0.5

    # w0 opposes v0 (edge v1->v2), w1 opposes v1, w2 opposes v2.
    w0 = (v2x - v1x) * (py - v1y) - (v2y - v1y) * (px - v1x)
    w1 = (v0x - v2x) * (py - v2y) - (v0y - v2y) * (px - v2x)
    w2 = (v1x - v0x) * (py - v0y) - (v1y - v0y) * (px - v0x)

    inside = np.ones_like(w0, dtype=bool)
    for w, top_left in ((w0, t0), (w1, t1), (w2, t2)):
        if top_left:
            inside &= w >= 0
        else:
            inside &= w > 0
    return w0, w1, w2, inside


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _edge_coverage_jit(v0x, v0y, v1x, v1y, v2x, v2y,
                           x0, y0, x1, y1, t0, t1, t2):
        height = y1 - y0
        width = x1 - x0
        w0 = np.empty((height, width), dtype=np.float64)
        w1 = np.empty((height, width), dtype=np.float64)
        w2 = np.empty((height, width), dtype=np.float64)
        inside = np.empty((height, width), dtype=np.bool_)
        for iy in range(height):
            py = np.float64(y0 + iy) + 0.5
            for ix in range(width):
                px = np.float64(x0 + ix) + 0.5
                a = (v2x - v1x) * (py - v1y) - (v2y - v1y) * (px - v1x)
                b = (v0x - v2x) * (py - v2y) - (v0y - v2y) * (px - v2x)
                c = (v1x - v0x) * (py - v0y) - (v1y - v0y) * (px - v0x)
                w0[iy, ix] = a
                w1[iy, ix] = b
                w2[iy, ix] = c
                ok = (a >= 0.0) if t0 else (a > 0.0)
                if ok:
                    ok = (b >= 0.0) if t1 else (b > 0.0)
                if ok:
                    ok = (c >= 0.0) if t2 else (c > 0.0)
                inside[iy, ix] = ok
        return w0, w1, w2, inside


def edge_coverage(v0x, v0y, v1x, v1y, v2x, v2y,
                  x0, y0, x1, y1, t0, t1, t2):
    """Edge functions + fill-rule coverage over a pixel grid.

    Vertices are a positively-oriented screen-space triangle; the grid
    is the half-open pixel box ``[x0, x1) x [y0, y1)`` sampled at
    half-integer centers.  ``t0``/``t1``/``t2`` say whether each
    opposing edge is top-left (inclusive ``>= 0``) under the fill rule.
    Returns ``(w0, w1, w2, inside)`` — float64 edge values and the
    boolean coverage mask, identical between backends because both
    evaluate the same elementwise float64 expressions.
    """
    if _use_jit():  # pragma: no cover - exercised only with numba
        return _edge_coverage_jit(
            v0x, v0y, v1x, v1y, v2x, v2y,
            x0, y0, x1, y1, t0, t1, t2,
        )
    return _edge_coverage_numpy(
        v0x, v0y, v1x, v1y, v2x, v2y, x0, y0, x1, y1, t0, t1, t2,
    )


# ----------------------------------------------------------------------
# Early-Z compare/update
# ----------------------------------------------------------------------

def _early_z_numpy(depth_tile, local_xs, local_ys, depth, depth_write):
    stored = depth_tile[local_ys, local_xs]
    mask = depth < stored
    if depth_write and mask.any():
        depth_tile[local_ys[mask], local_xs[mask]] = depth[mask]
    return mask


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _early_z_jit(depth_tile, local_xs, local_ys, depth, depth_write):
        count = len(local_xs)
        mask = np.empty(count, dtype=np.bool_)
        for i in range(count):
            passed = depth[i] < depth_tile[local_ys[i], local_xs[i]]
            mask[i] = passed
            if depth_write and passed:
                depth_tile[local_ys[i], local_xs[i]] = depth[i]
        return mask


def early_z_test(depth_tile, local_xs, local_ys, depth, depth_write):
    """LESS depth test over one fragment batch; returns the pass mask
    and (with ``depth_write``) updates ``depth_tile`` in place.

    A batch holds one primitive's fragments inside one tile, so under
    the single-coverage fill rule no pixel repeats within it — the
    vectorized compare-then-scatter and the sequential loop are
    therefore the same function, bit for bit.
    """
    if _use_jit():  # pragma: no cover - exercised only with numba
        return _early_z_jit(
            depth_tile, local_xs, local_ys, depth, depth_write,
        )
    return _early_z_numpy(depth_tile, local_xs, local_ys, depth, depth_write)
