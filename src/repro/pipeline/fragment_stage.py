"""Fragment Processors: shade surviving fragments and fetch textures.

Shading is vectorized per (primitive, tile) batch — functionally one
shader invocation per fragment, costed as such by the timing model.
Texture fetches flow through the texture cache, then the L2, then DRAM
on the "texels" stream; the cache model sees the line-granular address
stream in fetch order, so texel locality (or its absence) is measured,
not assumed.

A technique may install a fragment *memo filter* (Fragment Memoization,
Section V-A): the filter observes each batch's shading inputs and
reports how many fragments its LUT would have reused.  Colors are always
computed functionally — the filter only affects the activity counters —
which mirrors the paper's evaluation where memoization changes work, not
(measurably) output.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.stage import Stage
from ..errors import PipelineError
from ..memory.cache import Cache, line_address_list
from ..memory.dram import Dram
from ..textures.sampler import sample_nearest


@dataclasses.dataclass
class FragmentStats:
    fragments_shaded: int = 0
    fragments_memoized: int = 0
    shader_instructions: int = 0
    texture_fetches: int = 0
    texture_cache_accesses: int = 0
    stall_cycles: int = 0


class ShadeMemo:
    """Cross-frame memo of exact shade results, keyed by content.

    Shading one (primitive, tile) batch is a pure function of the
    shader, the bound constants and textures, the primitive's
    post-transform attributes and the masked fragment set; frame-coherent
    workloads resubmit identical batches every frame.  The memo stores
    the computed colors plus the texel address stream, so on a hit the
    texture-cache simulation still runs on the identical addresses —
    every activity counter and cache state stays bit-identical to a
    recomputation.  Purely an execution-speed cache, bounded by retained
    fragments with LRU eviction.
    """

    def __init__(self, fragment_budget: int = 2_000_000) -> None:
        self.fragment_budget = fragment_budget
        self._entries: dict = {}
        self._retained_fragments = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            # Re-insert to mark as most recently used.
            del self._entries[key]
            self._entries[key] = entry
        else:
            self.misses += 1
        return entry

    def put(self, key: tuple, entry: tuple, count: int) -> None:
        entries = self._entries
        entries[key] = entry
        self._retained_fragments += count
        while (self._retained_fragments > self.fragment_budget
               and len(entries) > 1):
            evicted_colors = entries.pop(next(iter(entries)))[0]
            self._retained_fragments -= len(evicted_colors)


#: Process-wide shade memo: keys are content-stable, so hits are exact
#: even across independent Gpu instances (the suite renders the same
#: frames once per technique).
_SHARED_SHADE_MEMO = ShadeMemo()


def shared_shade_memo() -> ShadeMemo:
    """The process-wide :class:`ShadeMemo` used by batched-mode GPUs."""
    return _SHARED_SHADE_MEMO


class FragmentStage(Stage):
    """Shades fragment batches with texture-cache simulation."""

    metrics_group = "fragment"

    def __init__(self, texture_cache: Cache, l2_cache: Cache,
                 dram: Dram) -> None:
        self.texture_cache = texture_cache
        self.l2 = l2_cache
        self.dram = dram
        self.stats = FragmentStats()
        self.memo_filter = None  # optional technique hook
        self.shade_memo = None   # optional cross-frame ShadeMemo
        # When a list, every texture line stream driven through the
        # hierarchy is also appended as ``(raw_access_count, lines)`` so
        # the tile scheduler's TileMemo can replay it verbatim later.
        self.traffic_log = None

    def begin_frame(self, ctx=None) -> None:
        self.traffic_log = None

    def shade(self, batch, pass_mask: np.ndarray) -> tuple:
        """Shade the fragments of ``batch`` selected by ``pass_mask``.

        Returns ``(local_xs_unused, colors)`` where colors has one row
        per passing fragment, in batch order.
        """
        prim = batch.prim
        state = prim.state
        count = int(np.count_nonzero(pass_mask))
        if count == 0:
            return np.empty((0, 4), dtype=np.float32)

        bary = batch.bary[pass_mask]
        xs = batch.xs[pass_mask]
        ys = batch.ys[pass_mask]

        # Cross-frame shade memo (exact): disabled whenever a technique's
        # memo filter is installed, since the filter is stateful and must
        # observe every batch.
        memo = self.shade_memo if self.memo_filter is None else None
        key = None
        if memo is not None:
            key = (
                id(state.shader),
                tuple(
                    t.content_token if t is not None else None
                    for t in state.textures
                ),
                state.constants_bytes(),
                prim.attribute_bytes(),
                bary.tobytes(),
                xs.tobytes(),
                ys.tobytes(),
            )
            entry = memo.get(key)
            if entry is not None:
                colors, addresses, fetch_count = entry[:3]
                self.stats.texture_fetches += fetch_count
                self.stats.fragments_shaded += count
                self.stats.shader_instructions += (
                    count * state.shader.fragment_instructions
                )
                if addresses is not None:
                    self._simulate_texture_traffic(addresses)
                return colors

        fetches_before = self.stats.texture_fetches
        varyings = {
            name: (bary @ values.astype(np.float32)).astype(np.float32)
            for name, values in prim.varyings.items()
        }
        screen = np.empty((count, 2), dtype=np.float32)
        screen[:, 0] = xs
        screen[:, 1] = ys
        varyings["_screen"] = screen

        fetch_addresses = []

        def fetch(unit: int, uv: np.ndarray) -> np.ndarray:
            if unit >= len(state.textures) or state.textures[unit] is None:
                raise PipelineError(
                    f"shader {state.shader.name!r} fetched unbound unit {unit}"
                )
            result = sample_nearest(state.textures[unit], uv)
            fetch_addresses.append(result.addresses)
            self.stats.texture_fetches += len(uv)
            return result.colors

        colors = state.shader.run_fragment(varyings, state.constants, fetch)
        if len(colors) != count:
            raise PipelineError(
                f"shader {state.shader.name!r} returned {len(colors)} colors "
                f"for {count} fragments"
            )

        # Memoization hook: decides how many of these fragments would
        # have been reused instead of shaded.
        memoized = 0
        if self.memo_filter is not None:
            memoized = self.memo_filter(prim, varyings)
        shaded = count - memoized
        self.stats.fragments_shaded += shaded
        self.stats.fragments_memoized += memoized
        self.stats.shader_instructions += (
            shaded * state.shader.fragment_instructions
        )

        # Texture traffic: memoized fragments skip their fetches too; we
        # scale the simulated address stream by the shaded fraction.
        addresses = None
        if fetch_addresses:
            addresses = np.concatenate(fetch_addresses)
            if memoized and count:
                keep = max(0, int(round(len(addresses) * shaded / count)))
                addresses = addresses[:keep]
            self._simulate_texture_traffic(addresses)
        if memo is not None:
            # The entry pins the shader object so its id (part of the
            # key) cannot be recycled for a different shader.
            memo.put(
                key,
                (colors, addresses,
                 self.stats.texture_fetches - fetches_before, state.shader),
                count,
            )
        return colors

    def _simulate_texture_traffic(self, addresses: np.ndarray) -> None:
        """Drive a texel byte-address stream through texture cache, L2
        and DRAM.  Batched run per cache level: each cache sees the same
        access sequence as a per-line loop, so state and stats are
        identical."""
        lines = line_address_list(addresses, self.texture_cache.line_bytes)
        if self.traffic_log is not None:
            self.traffic_log.append((len(addresses), lines))
        self.replay_texture_lines(len(addresses), lines)

    def replay_texture_lines(self, raw_count: int, lines: list) -> None:
        """Run one recorded (or fresh) line stream through texture cache,
        L2 and DRAM — the state- and stats-mutating tail of
        :meth:`_simulate_texture_traffic`."""
        self.stats.texture_cache_accesses += raw_count
        tex_misses = self.texture_cache.access_run(lines)
        if tex_misses:
            l2_misses = self.l2.access_run(tex_misses)
            if l2_misses:
                self.stats.stall_cycles += self.dram.read_run(
                    len(l2_misses), self.l2.line_bytes, "texels"
                )
