"""Fragment Processors: shade surviving fragments and fetch textures.

Shading is vectorized per (primitive, tile) batch — functionally one
shader invocation per fragment, costed as such by the timing model.
Texture fetches flow through the texture cache, then the L2, then DRAM
on the "texels" stream; the cache model sees the line-granular address
stream in fetch order, so texel locality (or its absence) is measured,
not assumed.

A technique may install a fragment *memo filter* (Fragment Memoization,
Section V-A): the filter observes each batch's shading inputs and
reports how many fragments its LUT would have reused.  Colors are always
computed functionally — the filter only affects the activity counters —
which mirrors the paper's evaluation where memoization changes work, not
(measurably) output.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import PipelineError
from ..memory.cache import Cache, line_addresses
from ..memory.dram import Dram
from ..textures.sampler import sample_nearest


@dataclasses.dataclass
class FragmentStats:
    fragments_shaded: int = 0
    fragments_memoized: int = 0
    shader_instructions: int = 0
    texture_fetches: int = 0
    texture_cache_accesses: int = 0
    stall_cycles: int = 0


class FragmentStage:
    """Shades fragment batches with texture-cache simulation."""

    def __init__(self, texture_cache: Cache, l2_cache: Cache,
                 dram: Dram) -> None:
        self.texture_cache = texture_cache
        self.l2 = l2_cache
        self.dram = dram
        self.stats = FragmentStats()
        self.memo_filter = None  # optional technique hook

    def shade(self, batch, pass_mask: np.ndarray) -> tuple:
        """Shade the fragments of ``batch`` selected by ``pass_mask``.

        Returns ``(local_xs_unused, colors)`` where colors has one row
        per passing fragment, in batch order.
        """
        prim = batch.prim
        state = prim.state
        count = int(pass_mask.sum())
        if count == 0:
            return np.empty((0, 4), dtype=np.float32)

        bary = batch.bary[pass_mask]
        varyings = {
            name: (bary @ values.astype(np.float32)).astype(np.float32)
            for name, values in prim.varyings.items()
        }
        screen = np.stack(
            [batch.xs[pass_mask], batch.ys[pass_mask]], axis=1
        ).astype(np.float32)
        varyings["_screen"] = screen

        fetch_addresses = []

        def fetch(unit: int, uv: np.ndarray) -> np.ndarray:
            if unit >= len(state.textures) or state.textures[unit] is None:
                raise PipelineError(
                    f"shader {state.shader.name!r} fetched unbound unit {unit}"
                )
            result = sample_nearest(state.textures[unit], uv)
            fetch_addresses.append(result.addresses)
            self.stats.texture_fetches += len(uv)
            return result.colors

        colors = state.shader.run_fragment(varyings, state.constants, fetch)
        if len(colors) != count:
            raise PipelineError(
                f"shader {state.shader.name!r} returned {len(colors)} colors "
                f"for {count} fragments"
            )

        # Memoization hook: decides how many of these fragments would
        # have been reused instead of shaded.
        memoized = 0
        if self.memo_filter is not None:
            memoized = self.memo_filter(prim, varyings)
        shaded = count - memoized
        self.stats.fragments_shaded += shaded
        self.stats.fragments_memoized += memoized
        self.stats.shader_instructions += (
            shaded * state.shader.fragment_instructions
        )

        # Texture traffic: memoized fragments skip their fetches too; we
        # scale the simulated address stream by the shaded fraction.
        if fetch_addresses:
            addresses = np.concatenate(fetch_addresses)
            if memoized and count:
                keep = max(0, int(round(len(addresses) * shaded / count)))
                addresses = addresses[:keep]
            self.stats.texture_cache_accesses += len(addresses)
            for line in line_addresses(addresses, self.texture_cache.line_bytes):
                if self.texture_cache.access(int(line)):
                    continue
                if self.l2.access(int(line)):
                    continue
                self.stats.stall_cycles += self.dram.read(
                    self.l2.line_bytes, "texels"
                )
        return colors
