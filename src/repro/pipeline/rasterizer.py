"""Rasterizer: primitives to fragments via vectorized edge functions.

Coverage uses the top-left fill rule so that triangles sharing an edge
(every quad's diagonal in the 2D workloads) cover each pixel exactly
once — double-shading would both inflate fragment counts and break alpha
blending.

Coordinates are y-down screen space with pixel centers at half-integers.
Triangles are oriented to positive signed area before testing, so the
rule is applied uniformly regardless of submitted winding.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..geometry.primitives import Primitive
from .kernels import edge_coverage

#: Strict margin for the full-tile coverage test: an edge function must
#: clear every corner pixel center by at least this much before a
#: primitive counts as covering the tile.  Coverage then holds at every
#: interior center under *either* fill-rule inclusivity, so occlusion
#: culling never depends on top-left tie-breaking.
_COVER_EPS = 1e-6


@dataclasses.dataclass
class FragmentBatch:
    """Fragments one primitive produced inside one tile."""

    prim: Primitive
    xs: np.ndarray        # (m,) int32 absolute pixel x
    ys: np.ndarray        # (m,) int32 absolute pixel y
    depth: np.ndarray     # (m,) float32 interpolated depth
    bary: np.ndarray      # (m, 3) float32 barycentric weights

    @property
    def count(self) -> int:
        return len(self.xs)

    def interpolate(self, values: np.ndarray) -> np.ndarray:
        """Interpolate per-vertex ``(3, k)`` values to ``(m, k)``."""
        return (self.bary @ np.asarray(values, dtype=np.float32)).astype(
            np.float32
        )


def _edge(ax, ay, bx, by, px, py):
    """Signed edge function: positive when p is left of a->b (y-down)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _is_top_left(ax, ay, bx, by) -> bool:
    """Top-left rule for a positively-oriented triangle in y-down space:
    'top' edges run right-to-left horizontally; 'left' edges go upward
    (decreasing y)."""
    dx = bx - ax
    dy = by - ay
    if dy == 0:
        return dx < 0
    return dy < 0


def iteration_bounds(prim: Primitive, rect: tuple):
    """The half-open pixel box :func:`rasterize` iterates for ``prim``
    inside ``rect``, or ``None`` when it is empty.

    A pixel can only be covered when its center ``x + 0.5`` lies within
    the triangle's coordinate range, so the box keeps exactly the pixels
    with ``min <= x + 0.5 <= max`` per axis — every excluded pixel
    center sits strictly outside the bounding box and would fail some
    edge test strictly, making the tightening coverage-neutral.
    """
    v0x, v0y = float(prim.screen[0, 0]), float(prim.screen[0, 1])
    v1x, v1y = float(prim.screen[1, 0]), float(prim.screen[1, 1])
    v2x, v2y = float(prim.screen[2, 0]), float(prim.screen[2, 1])
    x0 = max(rect[0], int(np.ceil(min(v0x, v1x, v2x) - 0.5)))
    y0 = max(rect[1], int(np.ceil(min(v0y, v1y, v2y) - 0.5)))
    x1 = min(rect[2], int(np.floor(max(v0x, v1x, v2x) - 0.5)) + 1)
    y1 = min(rect[3], int(np.floor(max(v0y, v1y, v2y) - 0.5)) + 1)
    if x1 <= x0 or y1 <= y0:
        return None
    return x0, y0, x1, y1


def covers_rect(prim: Primitive, rect: tuple) -> bool:
    """Whether ``prim`` covers every pixel center of the half-open pixel
    box ``rect = (x0, y0, x1, y1)``.

    Tests the three (positively-oriented) edge functions at the four
    corner pixel centers only: edge functions are affine in screen
    space, so their minimum over the rectangle of centers is attained at
    a corner.  Requiring ``w >= _COVER_EPS`` at all corners therefore
    guarantees strict interiority at every center, independent of the
    top-left tie-breaking that :func:`rasterize` applies on ``w == 0``.
    """
    v0x, v0y = float(prim.screen[0, 0]), float(prim.screen[0, 1])
    v1x, v1y = float(prim.screen[1, 0]), float(prim.screen[1, 1])
    v2x, v2y = float(prim.screen[2, 0]), float(prim.screen[2, 1])
    area2 = _edge(v0x, v0y, v1x, v1y, v2x, v2y)
    if area2 < 0:
        v1x, v1y, v2x, v2y = v2x, v2y, v1x, v1y
        area2 = -area2
    if area2 == 0:
        return False
    lox, loy = rect[0] + 0.5, rect[1] + 0.5
    hix, hiy = rect[2] - 0.5, rect[3] - 0.5
    if hix < lox or hiy < loy:
        return False
    for ax, ay, bx, by in (
        (v1x, v1y, v2x, v2y),
        (v2x, v2y, v0x, v0y),
        (v0x, v0y, v1x, v1y),
    ):
        for px, py in ((lox, loy), (hix, loy), (lox, hiy), (hix, hiy)):
            if _edge(ax, ay, bx, by, px, py) < _COVER_EPS:
                return False
    return True


def coverage_mask(prim: Primitive, rect: tuple):
    """Boolean coverage of ``rect``'s pixels by ``prim``, or ``None``
    when it covers none of them.

    Evaluates the *same* oriented edge functions and fill rule as
    :func:`rasterize` at the same absolute pixel centers, so the mask is
    bit-exact with the fragments the rasterizer would emit — the
    occlusion pass ORs these masks across a tile to prove that a set of
    tessellated opaque primitives jointly covers every pixel center.
    """
    v0x, v0y = float(prim.screen[0, 0]), float(prim.screen[0, 1])
    v1x, v1y = float(prim.screen[1, 0]), float(prim.screen[1, 1])
    v2x, v2y = float(prim.screen[2, 0]), float(prim.screen[2, 1])
    area2 = _edge(v0x, v0y, v1x, v1y, v2x, v2y)
    if area2 < 0:
        v1x, v1y, v2x, v2y = v2x, v2y, v1x, v1y
        area2 = -area2
    if area2 == 0:
        return None
    bounds = iteration_bounds(prim, rect)
    if bounds is None:
        return None
    x0, y0, x1, y1 = bounds
    _, _, _, inside = edge_coverage(
        v0x, v0y, v1x, v1y, v2x, v2y,
        x0, y0, x1, y1,
        _is_top_left(v1x, v1y, v2x, v2y),
        _is_top_left(v2x, v2y, v0x, v0y),
        _is_top_left(v0x, v0y, v1x, v1y),
    )
    if not inside.any():
        return None
    mask = np.zeros((rect[3] - rect[1], rect[2] - rect[0]), dtype=bool)
    mask[y0 - rect[1]:y1 - rect[1], x0 - rect[0]:x1 - rect[0]] = inside
    return mask


def rasterize(prim: Primitive, rect: tuple) -> FragmentBatch:
    """Rasterize ``prim`` within ``rect = (x0, y0, x1, y1)`` (pixels,
    half-open).  Returns a possibly-empty :class:`FragmentBatch`."""
    v0x, v0y = float(prim.screen[0, 0]), float(prim.screen[0, 1])
    v1x, v1y = float(prim.screen[1, 0]), float(prim.screen[1, 1])
    v2x, v2y = float(prim.screen[2, 0]), float(prim.screen[2, 1])

    area2 = _edge(v0x, v0y, v1x, v1y, v2x, v2y)
    order = (0, 1, 2)
    if area2 < 0:
        # Reorder to positive orientation so one fill rule applies.
        v1x, v1y, v2x, v2y = v2x, v2y, v1x, v1y
        area2 = -area2
        order = (0, 2, 1)
    if area2 == 0:
        return _empty_batch(prim)

    # Clip the iteration region to the pixels whose centers can fall
    # inside the triangle's bounding box.
    bounds = iteration_bounds(prim, rect)
    if bounds is None:
        return _empty_batch(prim)
    x0, y0, x1, y1 = bounds

    # w0 opposes v0 (edge v1->v2), w1 opposes v1, w2 opposes v2.
    w0, w1, w2, inside = edge_coverage(
        v0x, v0y, v1x, v1y, v2x, v2y,
        x0, y0, x1, y1,
        _is_top_left(v1x, v1y, v2x, v2y),
        _is_top_left(v2x, v2y, v0x, v0y),
        _is_top_left(v0x, v0y, v1x, v1y),
    )

    if not inside.any():
        return _empty_batch(prim)

    lam0 = (w0[inside] / area2).astype(np.float32)
    lam1 = (w1[inside] / area2).astype(np.float32)
    lam2 = (w2[inside] / area2).astype(np.float32)

    # Write barycentrics straight into original-vertex order, undoing
    # the orientation swap via ``order``.
    bary = np.empty((len(lam0), 3), dtype=np.float32)
    bary[:, order[0]] = lam0
    bary[:, order[1]] = lam1
    bary[:, order[2]] = lam2

    ys_grid, xs_grid = np.nonzero(inside)
    xs = (xs_grid + x0).astype(np.int32)
    ys = (ys_grid + y0).astype(np.int32)
    # Elementwise interpolation (not a matmul): per-pixel float32 values
    # are then independent of the batch shape, so rasterizing the full
    # screen and slicing per tile is bit-identical to per-tile calls.
    d = prim.depth.astype(np.float32)
    depth = bary[:, 0] * d[0] + bary[:, 1] * d[1] + bary[:, 2] * d[2]
    return FragmentBatch(prim=prim, xs=xs, ys=ys, depth=depth, bary=bary)


def _empty_batch(prim: Primitive) -> FragmentBatch:
    return FragmentBatch(
        prim=prim,
        xs=np.empty(0, np.int32),
        ys=np.empty(0, np.int32),
        depth=np.empty(0, np.float32),
        bary=np.empty((0, 3), np.float32),
    )


class TiledRaster:
    """One primitive's full-screen raster output, sliceable per tile.

    The batched raster path rasterizes each primitive *once* against the
    whole screen and hands tiles their slice of the fragment arrays.
    Because every per-pixel quantity in :func:`rasterize` is computed
    elementwise from absolute pixel coordinates, each slice is bit-exact
    with what a per-tile :func:`rasterize` call would have produced, and
    the stable sort keeps fragments in row-major order within each tile.

    Holds no reference to the primitive: fragment geometry depends only
    on the screen positions and depths, so the same ``TiledRaster`` can
    serve look-alike primitives from later frames (see
    :class:`RasterMemo`).
    """

    __slots__ = ("xs", "ys", "depth", "bary", "fragment_count", "_slices",
                 "_order")

    def __init__(self, batch: FragmentBatch, tile_size: int,
                 tiles_x: int) -> None:
        self.xs = batch.xs
        self.ys = batch.ys
        self.depth = batch.depth
        self.bary = batch.bary
        self.fragment_count = len(batch.xs)
        if self.fragment_count == 0:
            self._order = None
            self._slices = {}
            return
        tile_ids = (
            (batch.ys // tile_size).astype(np.int64) * tiles_x
            + batch.xs // tile_size
        )
        # Stable sort: fragments of one tile keep their original
        # row-major order.
        order = np.argsort(tile_ids, kind="stable")
        sorted_ids = tile_ids[order]
        unique, starts = np.unique(sorted_ids, return_index=True)
        ends = np.append(starts[1:], len(sorted_ids))
        self._order = order
        self._slices = {
            int(tid): (int(lo), int(hi))
            for tid, lo, hi in zip(unique, starts, ends)
        }

    def tile(self, prim: Primitive, tile_id: int) -> FragmentBatch:
        """The fragments of ``prim`` that fall inside ``tile_id``."""
        bounds = self._slices.get(tile_id)
        if bounds is None:
            return _empty_batch(prim)
        idx = self._order[bounds[0]:bounds[1]]
        return FragmentBatch(
            prim=prim,
            xs=self.xs[idx],
            ys=self.ys[idx],
            depth=self.depth[idx],
            bary=self.bary[idx],
        )


class RasterMemoStore:
    """Retained-fragment accounting shared by every :class:`RasterMemo`
    bound to it.

    Entries from all bound memos live in one insertion-ordered dict, so
    the fragment budget and its LRU eviction apply *globally*: a
    long-lived process sweeping many screen geometries can no longer pin
    one full-budget memo per configuration (the former unbounded
    ``_SHARED_RASTER_MEMOS`` leak) — cold configurations age out as hot
    ones insert.
    """

    def __init__(self, fragment_budget: int = 4_000_000) -> None:
        self.fragment_budget = fragment_budget
        self._entries: "dict[tuple, TiledRaster]" = {}
        self._retained_fragments = 0
        self.evictions = 0

    @property
    def retained_fragments(self) -> int:
        return self._retained_fragments

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        entries = self._entries
        tiled = entries.get(key)
        if tiled is not None:
            # Re-insert to mark as most recently used.
            del entries[key]
            entries[key] = tiled
        return tiled

    def put(self, key: tuple, tiled: TiledRaster) -> None:
        entries = self._entries
        self._retained_fragments += tiled.fragment_count
        entries[key] = tiled
        while (self._retained_fragments > self.fragment_budget
               and len(entries) > 1):
            evicted = entries.pop(next(iter(entries)))
            self._retained_fragments -= evicted.fragment_count
            self.evictions += 1


class RasterMemo:
    """Cross-frame raster memo, keyed by primitive *content*.

    Frame-coherent workloads resubmit geometrically identical primitives
    every frame; their coverage and barycentrics are pure functions of
    the screen-space positions and depths, so the rasterization can be
    reused.  Entries live in a :class:`RasterMemoStore` (private unless
    one is passed in) whose retained-fragment budget evicts LRU-first.
    Purely an execution-speed cache: it changes no simulated state, and
    the scalar reference path never consults it.
    """

    def __init__(self, tile_size: int, tiles_x: int,
                 fragment_budget: int = 4_000_000,
                 store: RasterMemoStore = None) -> None:
        self.tile_size = tile_size
        self.tiles_x = tiles_x
        self.store = (store if store is not None
                      else RasterMemoStore(fragment_budget))
        self.hits = 0
        self.misses = 0

    def _key(self, prim: Primitive, screen_rect: tuple) -> tuple:
        # The grid geometry and clip rect are part of the key: memos
        # sharing one store must never hand each other fragments tiled
        # for a different grid or clipped to a different screen.
        return (self.tile_size, self.tiles_x, screen_rect,
                prim.screen.tobytes() + prim.depth.tobytes())

    def get(self, prim: Primitive, screen_rect: tuple) -> TiledRaster:
        """The primitive's :class:`TiledRaster`, computed or reused."""
        key = self._key(prim, screen_rect)
        tiled = self.store.get(key)
        if tiled is not None:
            self.hits += 1
            return tiled
        self.misses += 1
        tiled = TiledRaster(
            rasterize(prim, screen_rect), self.tile_size, self.tiles_x
        )
        self.store.put(key, tiled)
        return tiled


#: Process-wide fragment pool behind every shared memo: one budget, one
#: LRU order, however many (tile grid, screen rect) configurations the
#: process touches.
_SHARED_RASTER_STORE = RasterMemoStore()

#: Process-wide raster memos, one per (tile grid, screen rect): content
#: keys make hits exact across independent Gpu instances of equal
#: configuration.  All of them share ``_SHARED_RASTER_STORE``, so the
#: per-config memo objects (cheap counters + a store reference) are the
#: only thing retained per configuration.
_SHARED_RASTER_MEMOS: dict = {}


def shared_raster_memo(tile_size: int, tiles_x: int,
                       screen_rect: tuple) -> RasterMemo:
    """The process-wide :class:`RasterMemo` for one screen geometry."""
    key = (tile_size, tiles_x, screen_rect)
    memo = _SHARED_RASTER_MEMOS.get(key)
    if memo is None:
        memo = RasterMemo(tile_size, tiles_x, store=_SHARED_RASTER_STORE)
        _SHARED_RASTER_MEMOS[key] = memo
    return memo
