"""Rasterizer: primitives to fragments via vectorized edge functions.

Coverage uses the top-left fill rule so that triangles sharing an edge
(every quad's diagonal in the 2D workloads) cover each pixel exactly
once — double-shading would both inflate fragment counts and break alpha
blending.

Coordinates are y-down screen space with pixel centers at half-integers.
Triangles are oriented to positive signed area before testing, so the
rule is applied uniformly regardless of submitted winding.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..geometry.primitives import Primitive


@dataclasses.dataclass
class FragmentBatch:
    """Fragments one primitive produced inside one tile."""

    prim: Primitive
    xs: np.ndarray        # (m,) int32 absolute pixel x
    ys: np.ndarray        # (m,) int32 absolute pixel y
    depth: np.ndarray     # (m,) float32 interpolated depth
    bary: np.ndarray      # (m, 3) float32 barycentric weights

    @property
    def count(self) -> int:
        return len(self.xs)

    def interpolate(self, values: np.ndarray) -> np.ndarray:
        """Interpolate per-vertex ``(3, k)`` values to ``(m, k)``."""
        return (self.bary @ np.asarray(values, dtype=np.float32)).astype(
            np.float32
        )


def _edge(ax, ay, bx, by, px, py):
    """Signed edge function: positive when p is left of a->b (y-down)."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _is_top_left(ax, ay, bx, by) -> bool:
    """Top-left rule for a positively-oriented triangle in y-down space:
    'top' edges run right-to-left horizontally; 'left' edges go upward
    (decreasing y)."""
    dx = bx - ax
    dy = by - ay
    if dy == 0:
        return dx < 0
    return dy < 0


def rasterize(prim: Primitive, rect: tuple) -> FragmentBatch:
    """Rasterize ``prim`` within ``rect = (x0, y0, x1, y1)`` (pixels,
    half-open).  Returns a possibly-empty :class:`FragmentBatch`."""
    v0x, v0y = float(prim.screen[0, 0]), float(prim.screen[0, 1])
    v1x, v1y = float(prim.screen[1, 0]), float(prim.screen[1, 1])
    v2x, v2y = float(prim.screen[2, 0]), float(prim.screen[2, 1])

    area2 = _edge(v0x, v0y, v1x, v1y, v2x, v2y)
    order = (0, 1, 2)
    if area2 < 0:
        # Reorder to positive orientation so one fill rule applies.
        v1x, v1y, v2x, v2y = v2x, v2y, v1x, v1y
        area2 = -area2
        order = (0, 2, 1)
    if area2 == 0:
        return _empty_batch(prim)

    # Clip the iteration region to the triangle's bounding box.
    x0 = max(rect[0], int(np.floor(min(v0x, v1x, v2x))))
    y0 = max(rect[1], int(np.floor(min(v0y, v1y, v2y))))
    x1 = min(rect[2], int(np.ceil(max(v0x, v1x, v2x))) + 1)
    y1 = min(rect[3], int(np.ceil(max(v0y, v1y, v2y))) + 1)
    if x1 <= x0 or y1 <= y0:
        return _empty_batch(prim)

    # Open grids broadcast through the edge functions (cheaper than a
    # full meshgrid materialization).
    px = np.arange(x0, x1, dtype=np.float64)[None, :] + 0.5
    py = np.arange(y0, y1, dtype=np.float64)[:, None] + 0.5

    # w0 opposes v0 (edge v1->v2), w1 opposes v1, w2 opposes v2.
    w0 = _edge(v1x, v1y, v2x, v2y, px, py)
    w1 = _edge(v2x, v2y, v0x, v0y, px, py)
    w2 = _edge(v0x, v0y, v1x, v1y, px, py)

    inside = np.ones_like(w0, dtype=bool)
    for w, (ax, ay, bx, by) in (
        (w0, (v1x, v1y, v2x, v2y)),
        (w1, (v2x, v2y, v0x, v0y)),
        (w2, (v0x, v0y, v1x, v1y)),
    ):
        if _is_top_left(ax, ay, bx, by):
            inside &= w >= 0
        else:
            inside &= w > 0

    if not inside.any():
        return _empty_batch(prim)

    lam0 = (w0[inside] / area2).astype(np.float32)
    lam1 = (w1[inside] / area2).astype(np.float32)
    lam2 = (w2[inside] / area2).astype(np.float32)
    bary_oriented = np.stack([lam0, lam1, lam2], axis=1)

    # Undo the orientation swap so barycentrics index the original verts.
    bary = np.empty_like(bary_oriented)
    for oriented_index, original_index in enumerate(order):
        bary[:, original_index] = bary_oriented[:, oriented_index]

    ys_grid, xs_grid = np.nonzero(inside)
    xs = (xs_grid + x0).astype(np.int32)
    ys = (ys_grid + y0).astype(np.int32)
    depth = (bary @ prim.depth.astype(np.float32)).astype(np.float32)
    return FragmentBatch(prim=prim, xs=xs, ys=ys, depth=depth, bary=bary)


def _empty_batch(prim: Primitive) -> FragmentBatch:
    return FragmentBatch(
        prim=prim,
        xs=np.empty(0, np.int32),
        ys=np.empty(0, np.int32),
        depth=np.empty(0, np.float32),
        bary=np.empty((0, 3), np.float32),
    )
