"""Tiling Engine: the Polygon List Builder and the Parameter Buffer.

The Polygon List Builder (PLB) sorts each assembled primitive into the
screen tiles its bounding box overlaps and stores its attributes in the
Parameter Buffer, a main-memory region written through DRAM.  Binning is
conservative (bounding-box): a primitive may be listed in a tile its
edges never actually cross.  That conservatism is *shared* by the
Signature Unit — it observes exactly the (primitive, tiles) pairs emitted
here — so Rendering Elimination stays correct: a tile's signature covers
a superset of what the rasterizer will consume for that tile, and the
superset is the same function of the frame's geometry every frame.

Listeners (the RE Signature Unit, or nothing for the baseline) receive
``on_draw_state(state)`` before a drawcall's primitives and
``on_primitive(prim, tile_ids)`` per binned primitive — the same events
the paper's hardware taps.
"""

from __future__ import annotations

import dataclasses

from ..config import GpuConfig
from ..engine.stage import Stage
from ..geometry.primitives import Primitive
from ..memory.dram import Dram

#: Bytes of the per-tile polygon-list pointer entry written per
#: (primitive, tile) pair.
TILE_POINTER_BYTES = 4


@dataclasses.dataclass
class TilingStats:
    primitives_binned: int = 0
    tile_entries: int = 0          # (primitive, tile) pairs
    parameter_bytes_written: int = 0
    stall_cycles: int = 0


class ParameterBuffer:
    """Per-tile polygon lists plus the primitives' attribute storage."""

    def __init__(self, num_tiles: int) -> None:
        self.bins: list = [[] for _ in range(num_tiles)]

    def insert(self, prim: Primitive, tile_ids) -> None:
        for tile_id in tile_ids:
            self.bins[tile_id].append(prim)

    def tile_primitives(self, tile_id: int) -> list:
        return self.bins[tile_id]

    def tile_bytes(self, tile_id: int) -> int:
        """Bytes the Tile Scheduler fetches to render this tile."""
        return sum(
            prim.parameter_buffer_bytes() + TILE_POINTER_BYTES
            for prim in self.bins[tile_id]
        )

    def occupied_tiles(self):
        """Tile ids that contain at least one primitive, in raster order."""
        return [i for i, bin_ in enumerate(self.bins) if bin_]

    def clear(self) -> None:
        for bin_ in self.bins:
            bin_.clear()


class PolygonListBuilder(Stage):
    """Bins primitives into tiles and feeds the Parameter Buffer."""

    metrics_group = "tiling"

    def __init__(self, config: GpuConfig, dram: Dram, listeners=()) -> None:
        self.config = config
        self.dram = dram
        self.listeners = list(listeners)
        self.parameter_buffer = ParameterBuffer(config.num_tiles)
        self.stats = TilingStats()
        self._pb_cursor = 0

    def overlapped_tiles(self, prim: Primitive) -> list:
        """Tile ids whose area intersects the primitive's bounding box,
        clamped to the screen."""
        x0, y0, x1, y1 = prim.bounds()
        size = self.config.tile_size
        tx0 = max(0, x0 // size)
        ty0 = max(0, y0 // size)
        tx1 = min(self.config.tiles_x - 1, (x1 - 1) // size)
        ty1 = min(self.config.tiles_y - 1, (y1 - 1) // size)
        if tx1 < tx0 or ty1 < ty0:
            return []
        return [
            ty * self.config.tiles_x + tx
            for ty in range(ty0, ty1 + 1)
            for tx in range(tx0, tx1 + 1)
        ]

    def bin_drawcall(self, state, primitives) -> None:
        """Sort one drawcall's primitives into tiles."""
        for listener in self.listeners:
            listener.on_draw_state(state)
        for prim in primitives:
            tile_ids = self.overlapped_tiles(prim)
            if not tile_ids:
                continue
            prim.pb_offset = self._pb_cursor
            self._pb_cursor += prim.parameter_buffer_bytes()
            self.parameter_buffer.insert(prim, tile_ids)
            nbytes = (
                prim.parameter_buffer_bytes()
                + TILE_POINTER_BYTES * len(tile_ids)
            )
            self.stats.stall_cycles += self.dram.write(nbytes, "parameter_write")
            self.stats.primitives_binned += 1
            self.stats.tile_entries += len(tile_ids)
            self.stats.parameter_bytes_written += nbytes
            for listener in self.listeners:
                listener.on_primitive(prim, tile_ids)

    def begin_frame(self, ctx=None) -> None:
        self.parameter_buffer.clear()
        self._pb_cursor = 0
