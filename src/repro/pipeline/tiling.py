"""Tiling Engine: the Polygon List Builder and the Parameter Buffer.

The Polygon List Builder (PLB) sorts each assembled primitive into the
screen tiles its bounding box overlaps and stores its attributes in the
Parameter Buffer, a main-memory region written through DRAM.  Binning is
conservative (bounding-box): a primitive may be listed in a tile its
edges never actually cross.  That conservatism is *shared* by the
Signature Unit — it observes exactly the (primitive, tiles) pairs emitted
here — so Rendering Elimination stays correct: a tile's signature covers
a superset of what the rasterizer will consume for that tile, and the
superset is the same function of the frame's geometry every frame.

Listeners (the RE Signature Unit, or nothing for the baseline) receive
``on_draw_state(state)`` before a drawcall's primitives and
``on_primitive(prim, tile_ids)`` per binned primitive — the same events
the paper's hardware taps.  Occlusion culling (below) truncates bins
only *after* the listeners have observed a primitive, so signatures are
computed over the identical (primitive, tiles) stream whether or not
culling is enabled.

When ``GpuConfig.occlusion_culling`` is set, the PLB additionally runs
an opaque-tile occlusion pass per binned primitive: a primitive that
(a) fully covers a tile's pixel centers (four-corner edge-function
test, :func:`repro.pipeline.rasterizer.covers_rect`), (b) is opaque
(no alpha blending) and depth-writing, and (c) is depth-safe —
guaranteed to pass the LESS test at every covered pixel, either because
it doesn't depth-test at all or because its maximum vertex depth clears
the running minimum of everything written beneath it by a margin —
replaces the whole tile bin.  Everything previously listed for the tile
is unreachable behind it: the occluder rewrites every color (opaque =
REPLACE blend) and every depth, so the tile's end state is bit-identical
with or without the buried primitives (argued in full in DESIGN.md).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from ..engine.stage import Stage
from ..geometry.primitives import Primitive
from ..memory.dram import Dram
from .framebuffer import DEFAULT_CLEAR_DEPTH
from .rasterizer import coverage_mask, covers_rect, iteration_bounds

#: Bytes of the per-tile polygon-list pointer entry written per
#: (primitive, tile) pair.
TILE_POINTER_BYTES = 4

#: Slack the occlusion pass demands between an occluder's maximum vertex
#: depth and the running minimum written beneath it.  float32
#: interpolation of depths in [0, 1] errs by ~1e-7 per fragment; a 1e-5
#: margin makes the depth-safety proof immune to that rounding, at the
#: cost of (only) forgoing culls between nearly coplanar layers.
OCCLUSION_DEPTH_MARGIN = 1e-5


@dataclasses.dataclass
class TilingStats:
    primitives_binned: int = 0
    tile_entries: int = 0          # (primitive, tile) pairs
    parameter_bytes_written: int = 0
    stall_cycles: int = 0
    # Occlusion-culling pass (zero unless GpuConfig.occlusion_culling)
    tiles_fully_covered: int = 0   # distinct tiles per frame, summed
    prims_occlusion_culled: int = 0
    fragments_avoided: int = 0     # raster-iteration pixels not visited


class ParameterBuffer:
    """Per-tile polygon lists plus the primitives' attribute storage."""

    def __init__(self, num_tiles: int) -> None:
        self.bins: list = [[] for _ in range(num_tiles)]

    def insert(self, prim: Primitive, tile_ids) -> None:
        for tile_id in tile_ids:
            self.bins[tile_id].append(prim)

    def tile_primitives(self, tile_id: int) -> list:
        return self.bins[tile_id]

    def tile_bytes(self, tile_id: int) -> int:
        """Bytes the Tile Scheduler fetches to render this tile."""
        return sum(
            prim.parameter_buffer_bytes() + TILE_POINTER_BYTES
            for prim in self.bins[tile_id]
        )

    def occupied_tiles(self):
        """Tile ids that contain at least one primitive, in raster order."""
        return [i for i, bin_ in enumerate(self.bins) if bin_]

    def truncate_bin(self, tile_id: int, keep_from: int) -> list:
        """Drop the bin entries older than index ``keep_from`` (the
        first primitive of the occluding set); returns the dropped
        primitives, oldest first."""
        bin_ = self.bins[tile_id]
        dropped = bin_[:keep_from]
        if dropped:
            del bin_[:keep_from]
        return dropped

    def clear(self) -> None:
        for bin_ in self.bins:
            bin_.clear()


class PolygonListBuilder(Stage):
    """Bins primitives into tiles and feeds the Parameter Buffer."""

    metrics_group = "tiling"

    def __init__(self, config: GpuConfig, dram: Dram, listeners=()) -> None:
        self.config = config
        self.dram = dram
        self.listeners = list(listeners)
        self.parameter_buffer = ParameterBuffer(config.num_tiles)
        self.stats = TilingStats()
        self._pb_cursor = 0
        self.occlusion_culling = bool(
            getattr(config, "occlusion_culling", False)
        )
        #: Per-tile, per-pixel lower bound on any depth the prims
        #: inserted so far can have written there: the min over covering
        #: depth-writing prims' minimum vertex depth, seeded with the
        #: clear depth each frame.  Per-pixel (not a tile scalar) so
        #: that coplanar tessellated layers — whose triangles are
        #: disjoint and never depth-fight each other — can still
        #: qualify as occluders.
        self._depth_bounds: dict = {}
        self._covered_tiles: set = set()
        #: Per-tile accumulated coverage of the current occluding set:
        #: tile_id -> (bin index of the set's first member, bool mask).
        self._accum: dict = {}
        #: (tile_id, prims_dropped, fragments_avoided) per truncation
        #: this frame, for the tracer's instant events.
        self.occlusion_events: list = []

    def overlapped_tiles(self, prim: Primitive) -> list:
        """Tile ids whose area intersects the primitive's bounding box,
        clamped to the screen."""
        x0, y0, x1, y1 = prim.bounds()
        size = self.config.tile_size
        tx0 = max(0, x0 // size)
        ty0 = max(0, y0 // size)
        tx1 = min(self.config.tiles_x - 1, (x1 - 1) // size)
        ty1 = min(self.config.tiles_y - 1, (y1 - 1) // size)
        if tx1 < tx0 or ty1 < ty0:
            return []
        return [
            ty * self.config.tiles_x + tx
            for ty in range(ty0, ty1 + 1)
            for tx in range(tx0, tx1 + 1)
        ]

    def bin_drawcall(self, state, primitives) -> None:
        """Sort one drawcall's primitives into tiles."""
        for listener in self.listeners:
            listener.on_draw_state(state)
        for prim in primitives:
            tile_ids = self.overlapped_tiles(prim)
            if not tile_ids:
                continue
            prim.pb_offset = self._pb_cursor
            self._pb_cursor += prim.parameter_buffer_bytes()
            self.parameter_buffer.insert(prim, tile_ids)
            nbytes = (
                prim.parameter_buffer_bytes()
                + TILE_POINTER_BYTES * len(tile_ids)
            )
            self.stats.stall_cycles += self.dram.write(nbytes, "parameter_write")
            self.stats.primitives_binned += 1
            self.stats.tile_entries += len(tile_ids)
            self.stats.parameter_bytes_written += nbytes
            for listener in self.listeners:
                listener.on_primitive(prim, tile_ids)
            if self.occlusion_culling:
                self._occlusion_update(prim, tile_ids)

    def _tile_rect(self, tile_id: int) -> tuple:
        """Pixel rect (x0, y0, x1, y1) of a tile, clipped to the screen
        (matches ``FrameBuffer.tile_rect``)."""
        size = self.config.tile_size
        tx = tile_id % self.config.tiles_x
        ty = tile_id // self.config.tiles_x
        x0, y0 = tx * size, ty * size
        return (
            x0, y0,
            min(x0 + size, self.config.screen_width),
            min(y0 + size, self.config.screen_height),
        )

    def _depth_bound(self, tile_id: int, rect: tuple) -> np.ndarray:
        bound = self._depth_bounds.get(tile_id)
        if bound is None:
            bound = np.full(
                (rect[3] - rect[1], rect[2] - rect[0]),
                DEFAULT_CLEAR_DEPTH, dtype=np.float64,
            )
            self._depth_bounds[tile_id] = bound
        return bound

    def _occlusion_update(self, prim: Primitive, tile_ids) -> None:
        """Fold the just-inserted primitive into each tile's occluding
        set; truncate bins whose set now covers every pixel center, then
        fold the primitive's depths into the per-tile depth bounds."""
        state = prim.state
        if not state.depth_write:
            # Can neither occlude (must rewrite depth everywhere) nor
            # lower any stored depth — invisible to this pass.
            return
        min_depth = float(prim.depth.min())
        max_depth = float(prim.depth.max())
        opaque = not state.shader.uses_alpha_blend
        for tile_id in tile_ids:
            rect = self._tile_rect(tile_id)
            # Fast path: the four-corner edge test — full coverage
            # without evaluating the per-pixel mask.
            if covers_rect(prim, rect):
                mask = np.ones(
                    (rect[3] - rect[1], rect[2] - rect[0]), dtype=bool
                )
            else:
                mask = coverage_mask(prim, rect)
                if mask is None:
                    continue
            bound = self._depth_bound(tile_id, rect)
            if opaque:
                # Depth-safe: passes the LESS test at every pixel it
                # covers — no test at all, or strictly above everything
                # that can have been written beneath those pixels.
                depth_safe = (not state.depth_test) or (
                    max_depth + OCCLUSION_DEPTH_MARGIN
                    < float(bound[mask].min())
                )
                if depth_safe:
                    self._accumulate_occluder(prim, tile_id, rect, mask)
            np.minimum(bound, min_depth, out=bound, where=mask)

    def _accumulate_occluder(self, prim: Primitive, tile_id: int,
                             rect: tuple, mask: np.ndarray) -> None:
        """OR one qualifying opaque primitive's coverage into the tile's
        occluding set and truncate the bin once the set is complete."""
        bin_ = self.parameter_buffer.bins[tile_id]
        if mask.all():
            # A single full-cover primitive occludes on its own,
            # irrespective of any set accumulated so far — truncate
            # everything older than it.
            self._accum.pop(tile_id, None)
            self._complete_cover(tile_id, rect, len(bin_) - 1)
            return
        entry = self._accum.get(tile_id)
        if entry is None:
            # The set's first member is the primitive just appended.
            self._accum[tile_id] = [len(bin_) - 1, mask.copy()]
            return
        entry[1] |= mask
        if entry[1].all():
            del self._accum[tile_id]
            self._complete_cover(tile_id, rect, entry[0])

    def _complete_cover(self, tile_id: int, rect: tuple,
                        keep_from: int) -> None:
        """Record a fully-covered tile and drop the buried prefix."""
        if tile_id not in self._covered_tiles:
            self._covered_tiles.add(tile_id)
            self.stats.tiles_fully_covered += 1
        dropped = self.parameter_buffer.truncate_bin(tile_id, keep_from)
        if not dropped:
            return
        avoided = 0
        for buried in dropped:
            bounds = iteration_bounds(buried, rect)
            if bounds is not None:
                avoided += (
                    (bounds[2] - bounds[0]) * (bounds[3] - bounds[1])
                )
        self.stats.prims_occlusion_culled += len(dropped)
        self.stats.fragments_avoided += avoided
        self.occlusion_events.append((tile_id, len(dropped), avoided))

    def begin_frame(self, ctx=None) -> None:
        self.parameter_buffer.clear()
        self._pb_cursor = 0
        self._depth_bounds.clear()
        self._covered_tiles.clear()
        self._accum.clear()
        self.occlusion_events.clear()
