"""Parameter sweeps: run one workload across a grid of configurations.

The benchmark harness's generic sweep driver: takes a base
:class:`~repro.config.GpuConfig`, a dict of parameter lists, and a
metric extractor, and returns one row per configuration.  The ablation
benchmarks are hand-rolled instances of this pattern; the sweep driver
exposes it as a public API so downstream users can explore the design
space (tile size x OT-queue depth x compare distance x ...) without
writing loops.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from ..config import GpuConfig
from ..errors import ReproError
from .runner import RunResult, run_workload


@dataclasses.dataclass
class SweepPoint:
    """One configuration of a sweep and its run result."""

    parameters: dict
    run: RunResult

    def metric(self, name: str):
        """Common metrics by name, for quick tabulation."""
        metrics = {
            "total_cycles": self.run.total_cycles,
            "total_energy_nj": self.run.total_energy_nj,
            "fragments_shaded": self.run.fragments_shaded,
            "tiles_skipped": self.run.tiles_skipped,
            "skipped_fraction": self.run.skipped_fraction(),
            "traffic_bytes": self.run.total_traffic_bytes,
        }
        if name not in metrics:
            raise ReproError(
                f"unknown metric {name!r}; choose from {sorted(metrics)}"
            )
        return metrics[name]


def _sweep_point(payload: tuple) -> RunResult:
    """Worker body for parallel sweeps (module-level for pickling)."""
    (label, alias, technique, config, num_frames, technique_params,
     trace_path, metrics_path) = payload
    from . import parallel

    live = None
    if parallel._LIVE_CHANNEL is not None:
        from ..obs.live import ChannelLiveSink

        live = ChannelLiveSink(parallel._LIVE_CHANNEL, label)
    return run_workload(
        alias, technique, config=config, num_frames=num_frames,
        trace_path=trace_path, metrics_path=metrics_path, live=live,
        **(technique_params or {}),
    )


def point_tag(alias: str, technique: str, assignment: dict) -> str:
    """Human-readable identity of one sweep point, used to name its
    per-point artifacts: ``cde-re-tile_size=8-ot_queue_entries=16``."""
    parts = [f"{name}={value}" for name, value in assignment.items()]
    return "-".join([alias, technique] + parts)


def _check_assignments(alias: str, technique: str,
                       assignments: typing.Sequence) -> list:
    """Per-point tags, with duplicate / sanitized-collision detection.

    Two parameter points that would fan out to the same artifact name —
    literal duplicates in a ``--set`` list, or distinct values whose
    sanitized forms coincide — would silently overwrite each other's
    trace/metrics files (and collapse to one cell under the supervisor),
    so both raise up front.
    """
    from .parallel import sanitize_component

    tags = [point_tag(alias, technique, a) for a in assignments]
    seen: dict = {}
    for tag, assignment in zip(tags, assignments):
        key = sanitize_component(tag)
        if key in seen:
            kind = ("duplicate parameter point"
                    if seen[key] == assignment else
                    "parameter points with colliding sanitized names")
            raise ReproError(
                f"{kind}: {seen[key]!r} vs {assignment!r} "
                f"(both map to {key!r}); deduplicate the --set values"
            )
        seen[key] = assignment
    return tags


def expand_grid(alias: str, technique: str, parameters: dict,
                base_config: GpuConfig = None,
                num_frames: int = 8) -> list:
    """Expand a parameter grid into ``(assignment, config, tag)`` triples.

    The single source of truth for how a sweep spec becomes concrete
    points: :func:`sweep` runs the triples directly, and the fleet
    (:mod:`repro.fleet.points`) derives its content-addressed point ids
    from the same expansion — which is what makes a fleet's points
    byte-identical to the equivalent single-host sweep.  Grid order
    follows ``itertools.product`` over ``parameters`` in insertion
    order; unknown config fields, duplicate points and sanitized-name
    collisions raise up front.
    """
    base_config = base_config or GpuConfig.small()
    names = list(parameters)
    for name in names:
        if not hasattr(base_config, name):
            raise ReproError(f"GpuConfig has no parameter {name!r}")

    assignments = []
    configs = []
    for values in itertools.product(*(parameters[n] for n in names)):
        assignment = dict(zip(names, values))
        assignments.append(assignment)
        configs.append(dataclasses.replace(base_config, **assignment))

    tags = _check_assignments(alias, technique, assignments)
    return list(zip(assignments, configs, tags))


def sweep(alias: str, technique: str, parameters: dict,
          base_config: GpuConfig = None, num_frames: int = 8,
          technique_params: dict = None, processes: int = None,
          policy=None, journal_path=None, fault_spec=None,
          trace_path=None, metrics_path=None, live=None) -> list:
    """Run ``alias`` under ``technique`` for every combination of
    ``parameters`` (a mapping of GpuConfig field name -> list of values).

    Returns a list of :class:`SweepPoint` in grid order.  Example::

        points = sweep("cde", "re",
                       {"tile_size": [8, 16, 32],
                        "ot_queue_entries": [16, 64]})

    ``processes`` > 1 fans the grid across a process pool (each point is
    an independent simulation); the default runs serially and returns
    identical results.

    ``trace_path`` / ``metrics_path`` record per-point observability
    (:mod:`repro.obs`): each grid point writes its own trace / metrics
    log, the paths suffixed with the point's parameter assignment
    (``-tile_size=8-ot_queue_entries=16``); single-point sweeps use the
    paths verbatim.  Duplicate parameter points, or points whose
    sanitized names collide, raise up front instead of overwriting each
    other's artifacts.  ``live`` accepts a
    :class:`~repro.obs.live.LiveAggregator`: every point streams
    per-frame progress to it while the grid runs.

    Large sweep matrices are exactly the runs worth leaving unattended,
    so ``policy`` / ``journal_path`` / ``fault_spec`` route the grid
    through the fault-tolerant supervisor
    (:mod:`repro.harness.supervisor`) — per-point timeouts, bounded
    retries and checkpoint recovery — instead of the bare pool.  The
    supervised path does not support ``technique_params`` (those are
    per-call :func:`run_workload` extras a cell cannot carry).
    """
    base_config = base_config or GpuConfig.small()
    grid = expand_grid(alias, technique, parameters,
                       base_config=base_config, num_frames=num_frames)
    assignments = [assignment for assignment, _, _ in grid]
    configs = [config for _, config, _ in grid]
    tags = [tag for _, _, tag in grid]
    many = len(configs) > 1

    supervised = (
        policy is not None or journal_path is not None
        or fault_spec is not None
    )
    if supervised:
        if technique_params:
            raise ReproError(
                "supervised sweeps do not support technique_params"
            )
        from .parallel import Cell, run_cells

        # Points are tagged with their parameter assignment so per-point
        # artifacts carry the assignment instead of a bare index (a
        # single point keeps the base paths verbatim), and so identical
        # configs from duplicate --set values cannot collapse into one
        # cell (Cell is hashable; _check_assignments raised already).
        cells = [
            Cell(alias, technique, num_frames, config=config,
                 tag=tag if many else None)
            for config, tag in zip(configs, tags)
        ]
        results = run_cells(
            cells, config=base_config, processes=processes, policy=policy,
            journal_path=journal_path, fault_spec=fault_spec,
            trace_path=trace_path, metrics_path=metrics_path, live=live,
        )
        runs = [results[cell] for cell in cells]
    else:
        from .parallel import (
            Cell,
            _drain_live_queue,
            _pool_live_init,
            ensure_unique_paths,
            per_cell_path,
        )

        points = [
            Cell(alias, technique, num_frames, tag=tag if many else None)
            for tag in tags
        ]
        payloads = [
            (point.tag or f"{alias}/{technique}", alias, technique, config,
             num_frames, technique_params,
             per_cell_path(trace_path, point, index, many),
             per_cell_path(metrics_path, point, index, many))
            for index, (config, point) in enumerate(zip(configs, points))
        ]
        ensure_unique_paths([p[6] for p in payloads], "trace")
        ensure_unique_paths([p[7] for p in payloads], "metrics")
        if processes in (None, 0, 1) or len(payloads) <= 1:
            if live is not None:
                _pool_live_init(live)   # in-process: post straight to it
            try:
                runs = [_sweep_point(payload) for payload in payloads]
            finally:
                if live is not None:
                    _pool_live_init(None)
                    live.close()
        elif live is None:
            import multiprocessing

            workers = min(int(processes), len(payloads))
            with multiprocessing.Pool(workers) as pool:
                runs = pool.map(_sweep_point, payloads)
        else:
            import multiprocessing

            workers = min(int(processes), len(payloads))
            queue = multiprocessing.Queue()
            try:
                with multiprocessing.Pool(
                    workers, initializer=_pool_live_init, initargs=(queue,),
                ) as pool:
                    async_result = pool.map_async(_sweep_point, payloads)
                    while not async_result.ready():
                        _drain_live_queue(queue, live, timeout=0.1)
                        live.tick()
                    runs = async_result.get()
                _drain_live_queue(queue, live, timeout=0.0)
            finally:
                live.close()
                queue.close()

    return [
        SweepPoint(parameters=assignment, run=run)
        for assignment, run in zip(assignments, runs)
    ]


def tabulate(points: typing.Sequence, metric: str) -> list:
    """Rows of (parameter values..., metric) for reporting."""
    rows = []
    for point in points:
        rows.append(list(point.parameters.values()) + [point.metric(metric)])
    return rows
