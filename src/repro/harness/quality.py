"""Image-quality metrics for technique verification.

Rendering Elimination is only safe if signature matches imply equal
pixels; Section V argues CRC32 false positives are ~one per 4 billion
tiles and would be visually negligible anyway.  This module provides
the measurement side of that argument:

* :func:`psnr` / :func:`mse` — frame-level fidelity between a technique
  run and the baseline (infinite PSNR = bit-identical, the expected
  result for RE and TE);
* :func:`tile_errors` — per-tile maximum absolute error, to localize
  any divergence to the tile that caused it;
* :func:`compare_runs` — end-to-end: render a workload under two
  techniques and report the fidelity of every frame.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..config import GpuConfig
from ..pipeline import Gpu
from ..workloads.games import build_scene
from .runner import make_technique


def mse(reference: np.ndarray, image: np.ndarray) -> float:
    """Mean squared error over float [0, 1] RGBA images."""
    reference = np.asarray(reference, dtype=np.float64)
    image = np.asarray(image, dtype=np.float64)
    if reference.shape != image.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {image.shape}"
        )
    return float(np.mean((reference - image) ** 2))


def psnr(reference: np.ndarray, image: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    error = mse(reference, image)
    if error == 0.0:
        return math.inf
    return 10.0 * math.log10(1.0 / error)


def tile_errors(config: GpuConfig, reference: np.ndarray,
                image: np.ndarray) -> np.ndarray:
    """Per-tile maximum absolute channel error, shape ``(num_tiles,)``."""
    diff = np.abs(
        np.asarray(reference, np.float64) - np.asarray(image, np.float64)
    )
    errors = np.zeros(config.num_tiles, dtype=np.float64)
    size = config.tile_size
    for tile_id in range(config.num_tiles):
        tx = tile_id % config.tiles_x
        ty = tile_id // config.tiles_x
        region = diff[
            ty * size:min((ty + 1) * size, config.screen_height),
            tx * size:min((tx + 1) * size, config.screen_width),
        ]
        errors[tile_id] = region.max() if region.size else 0.0
    return errors


@dataclasses.dataclass
class FidelityReport:
    """Per-frame fidelity of a technique against the baseline."""

    alias: str
    technique: str
    frames: int
    min_psnr_db: float
    identical_frames: int
    worst_tile_error: float

    @property
    def lossless(self) -> bool:
        return self.identical_frames == self.frames


def compare_runs(alias: str, technique: str, config: GpuConfig = None,
                 num_frames: int = 6) -> FidelityReport:
    """Render ``alias`` under ``technique`` and the baseline in lockstep
    and measure output fidelity frame by frame."""
    config = config or GpuConfig.small()
    scene_a = build_scene(alias)
    scene_b = build_scene(alias)
    base_gpu = Gpu(config)
    tech_gpu = Gpu(config, make_technique(technique, config))

    min_psnr = math.inf
    identical = 0
    worst_tile = 0.0
    for stream_a, stream_b in zip(
        scene_a.frames(num_frames), scene_b.frames(num_frames)
    ):
        expected = base_gpu.render_frame(
            stream_a, clear_color=scene_a.clear_color
        ).frame_colors
        actual = tech_gpu.render_frame(
            stream_b, clear_color=scene_b.clear_color
        ).frame_colors
        value = psnr(expected, actual)
        min_psnr = min(min_psnr, value)
        if value == math.inf:
            identical += 1
        else:
            worst_tile = max(
                worst_tile, tile_errors(config, expected, actual).max()
            )
    return FidelityReport(
        alias=alias,
        technique=technique,
        frames=num_frames,
        min_psnr_db=min_psnr,
        identical_frames=identical,
        worst_tile_error=worst_tile,
    )
