"""Plain-text bar charts rendering experiment results like the paper's
figures.

The paper presents its evaluation as grouped/stacked bar charts (one
bar per game plus AVG).  These helpers produce equivalent ASCII charts
from :class:`~repro.harness.experiments.ExperimentResult` rows so the
regenerated figures can be eyeballed against the originals without a
plotting stack.
"""

from __future__ import annotations

import typing

#: Glyphs used for stacked segments, in series order.
SEGMENT_GLYPHS = ("█", "▒", "·", "~")

DEFAULT_WIDTH = 48


def hbar(value: float, scale: float, width: int = DEFAULT_WIDTH,
         glyph: str = "█") -> str:
    """One horizontal bar: ``value`` out of ``scale`` columns wide."""
    if scale <= 0:
        return ""
    cells = int(round(min(1.0, max(0.0, value / scale)) * width))
    return glyph * cells


def bar_chart(rows: typing.Sequence, value_index: int = 1,
              width: int = DEFAULT_WIDTH, unit: str = "",
              scale: float = None) -> str:
    """Single-series horizontal bar chart.

    ``rows`` are (label, ..., value, ...) sequences; ``value_index``
    picks the plotted column.  Scaled to the max value unless ``scale``
    is given (pass 1.0 for normalized figures).
    """
    values = [float(row[value_index]) for row in rows]
    top = scale if scale is not None else (max(values) if values else 1.0)
    label_width = max((len(str(row[0])) for row in rows), default=0)
    lines = []
    for row, value in zip(rows, values):
        bar = hbar(value, top, width)
        lines.append(
            f"{str(row[0]).ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:.3f}{unit}"
        )
    return "\n".join(lines)


def stacked_chart(rows: typing.Sequence, value_indices: typing.Sequence,
                  series_names: typing.Sequence, width: int = DEFAULT_WIDTH,
                  scale: float = None) -> str:
    """Stacked horizontal bars (e.g. geometry+raster cycles, Fig. 14a).

    Each row contributes one bar whose segments are the columns in
    ``value_indices``, drawn with distinct glyphs; a legend line maps
    glyphs to ``series_names``.
    """
    if len(value_indices) > len(SEGMENT_GLYPHS):
        raise ValueError(
            f"at most {len(SEGMENT_GLYPHS)} stacked series supported"
        )
    totals = [
        sum(float(row[i]) for i in value_indices) for row in rows
    ]
    top = scale if scale is not None else (max(totals) if totals else 1.0)
    label_width = max((len(str(row[0])) for row in rows), default=0)

    lines = []
    for row, total in zip(rows, totals):
        segments = ""
        consumed = 0
        for series, index in enumerate(value_indices):
            value = float(row[index])
            cells = int(round(min(1.0, value / top) * width)) if top else 0
            cells = min(cells, width - consumed)
            segments += SEGMENT_GLYPHS[series] * cells
            consumed += cells
        lines.append(
            f"{str(row[0]).ljust(label_width)} |{segments.ljust(width)}| "
            f"{total:.3f}"
        )
    legend = "  ".join(
        f"{SEGMENT_GLYPHS[i]} {name}" for i, name in enumerate(series_names)
    )
    lines.append(legend)
    return "\n".join(lines)


def chart_for(result, width: int = DEFAULT_WIDTH) -> str:
    """Best-effort chart for a known experiment result.

    Figures with stacked structure (14a/14b) get stacked bars; the rest
    get a single-series chart of their first numeric column.
    """
    if result.experiment_id in ("fig14a", "fig14b"):
        name_a, name_b = result.headers[3], result.headers[4]
        return stacked_chart(
            result.rows, (3, 4), (name_a, name_b), width=width, scale=1.0
        )
    if result.experiment_id == "fig15a":
        return stacked_chart(
            result.rows, (1, 2, 3),
            ("eq colors+inputs", "eq colors only", "different"),
            width=width, scale=100.0,
        )
    return bar_chart(result.rows, value_index=1, width=width)
