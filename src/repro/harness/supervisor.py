"""Supervised, fault-tolerant experiment orchestration.

:func:`supervise_cells` runs a matrix of independent harness cells the
way a production fleet would: every *attempt* of every cell executes in
its own child process, so a crashed or wedged simulation loses only that
cell — never the run.  The supervisor adds, on top of the bare process
pool in :mod:`repro.harness.parallel`:

* **per-cell wall-clock timeouts** — an attempt that exceeds
  ``SupervisorPolicy.timeout_s`` is terminated and treated like a crash;
* **bounded retry with exponential backoff** — a failed cell is retried
  up to ``max_retries`` times, waiting
  ``backoff_base_s * backoff_factor**(attempt-1)`` (capped at
  ``backoff_max_s``) between attempts;
* **crash detection** — a worker that dies without reporting (killed,
  segfault, ``os._exit``) is detected by its closed result pipe and
  exit code, and only its cell is rescheduled;
* **checkpoint recovery** — with ``checkpoint_stride > 0`` the worker
  saves a :class:`~repro.engine.session.RenderSession` checkpoint every
  ``stride`` frames (atomically; see
  :func:`repro.engine.checkpoint.save_checkpoint`), and a retried
  attempt resumes from the last checkpoint instead of starting over —
  the combined result is bit-identical to an uninterrupted run, down to
  per-tile CRCs;
* **an append-only JSONL run journal** — every attempt, retry, timeout,
  crash and recovery is a record in ``journal_path``, written only by
  the supervising parent (single writer, no interleaving).

Fault injection: recovery paths are themselves testable through a
deterministic hook.  A spec string — from the ``REPRO_FAULT_SPEC``
environment variable or the CLI's ``--inject-fault`` — of the form
``alias/technique:frame:kind[:times]`` makes the matching cell fail at
the first checkpoint-stride boundary at or after ``frame``, on its
first ``times`` attempts (default 1).  ``alias`` and/or ``technique``
may be ``*`` to match every cell — e.g. ``*/*:1:hang`` hangs the whole
fleet, exercising full-fleet stall detection:

* ``crash`` — the worker hard-exits (``os._exit``), simulating a kill;
* ``error`` — the worker raises an :class:`InjectedFault`;
* ``hang``  — the worker sleeps forever, tripping the timeout.

Because the fault fires *after* the boundary's checkpoint is on disk,
the retry demonstrably resumes mid-run rather than restarting.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import multiprocessing.connection
import os
import shutil
import tempfile
import time
import typing

import numpy as np

from ..config import GpuConfig
from ..engine.checkpoint import try_load_checkpoint
from ..engine.session import RenderSession
from ..errors import ReproError, SupervisionError
from .parallel import (
    Cell,
    cell_label,
    cell_seed,
    coerce_cells,
    ensure_unique_paths,
    per_cell_path,
)
from .runner import RunResult, result_from_session

__all__ = [
    "FAULT_ENV_VAR",
    "FAULT_KINDS",
    "CellOutcome",
    "FaultSpec",
    "InjectedFault",
    "RunJournal",
    "SupervisedRun",
    "SupervisorPolicy",
    "attempt_history",
    "supervise_cells",
]

#: Environment variable the supervisor reads a fault spec from when the
#: caller passes none (the CLI's ``--inject-fault`` takes precedence).
FAULT_ENV_VAR = "REPRO_FAULT_SPEC"

#: Supported fault kinds, in the spec's ``kind`` position.
FAULT_KINDS = ("crash", "error", "hang")

#: Exit code an injected ``crash`` fault dies with, so tests can tell a
#: deliberate kill from an accidental one in the journal.
CRASH_EXITCODE = 86


class InjectedFault(ReproError):
    """Raised inside a worker by an ``error``-kind injected fault."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Parsed ``alias/technique:frame:kind[:times]`` fault directive."""

    alias: str
    technique: str
    frame: int
    kind: str
    times: int = 1

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        parts = str(spec).split(":")
        if len(parts) not in (3, 4) or "/" not in parts[0]:
            raise SupervisionError(
                f"bad fault spec {spec!r}: expected "
                f"'alias/technique:frame:kind[:times]'"
            )
        alias, _, technique = parts[0].partition("/")
        kind = parts[2]
        if kind not in FAULT_KINDS:
            raise SupervisionError(
                f"bad fault kind {kind!r}: choose from {FAULT_KINDS}"
            )
        try:
            frame = int(parts[1])
            times = int(parts[3]) if len(parts) == 4 else 1
        except ValueError:
            raise SupervisionError(
                f"bad fault spec {spec!r}: frame and times must be integers"
            ) from None
        if frame < 0 or times < 1:
            raise SupervisionError(
                f"bad fault spec {spec!r}: frame must be >= 0, times >= 1"
            )
        return cls(alias, technique, frame, kind, times)

    def __str__(self) -> str:
        return f"{self.alias}/{self.technique}:{self.frame}:{self.kind}:{self.times}"

    def matches(self, cell: Cell) -> bool:
        """``*`` for alias and/or technique matches every cell — used to
        simulate fleet-wide faults (e.g. ``*/re:1:hang``)."""
        return (self.alias in ("*", cell.alias)
                and self.technique in ("*", cell.technique))

    def should_fire(self, attempt: int, frames_rendered: int) -> bool:
        """Fire at the first stride boundary at/after ``frame``, on the
        first ``times`` attempts."""
        return attempt <= self.times and frames_rendered >= self.frame


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Fault-tolerance knobs for one supervised run."""

    #: Per-attempt wall-clock limit in seconds; ``None`` = unlimited.
    timeout_s: float = None
    #: Retries after the first attempt (total attempts = retries + 1).
    max_retries: int = 2
    #: First backoff delay; grows by ``backoff_factor`` per failure.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: Frames between worker checkpoints; 0 disables mid-run checkpoints
    #: (retries then restart the cell from frame 0).
    checkpoint_stride: int = 0
    #: Parent poll granularity; bounds timeout-detection latency.
    poll_interval_s: float = 0.02

    def backoff(self, failed_attempt: int) -> float:
        """Delay before the attempt following ``failed_attempt`` (1-based)."""
        delay = self.backoff_base_s * self.backoff_factor ** (failed_attempt - 1)
        return min(self.backoff_max_s, delay)


class RunJournal:
    """Append-only JSONL journal of one supervised run.

    Records are flat JSON objects with an ``event`` name, a wall-clock
    ``ts``, and event-specific fields.  Only the supervising parent
    writes (one line per event, flushed immediately), so the file is
    valid JSONL even if the run is killed mid-write.  All records are
    also kept in memory on :attr:`records` for callers that never touch
    the filesystem.
    """

    def __init__(self, path=None) -> None:
        self.path = path
        self.records: list = []
        self._handle = open(path, "a", encoding="utf-8") if path else None

    def append(self, event: str, **fields) -> dict:
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read(path) -> list:
        """Parse a journal file back into its list of records."""
        records = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


#: Journal fields that are pure functions of the cell matrix, policy and
#: fault spec — the fields :func:`attempt_history` compares across runs.
_HISTORY_FIELDS = (
    "attempt", "resume_frame", "frames", "kind", "error",
    "final_frame_crc", "backoff_s",
)


def attempt_history(records_or_path) -> dict:
    """Deterministic per-cell event timeline of a journal.

    Returns ``{cell_label: [(event, attempt, resume_frame, ...), ...]}``
    keeping only fields that do not depend on wall-clock or scheduling
    (timestamps, exit codes and global interleaving are dropped), so a
    serial and a parallel run of the same matrix — same faults, same
    policy — produce *equal* histories.
    """
    records = records_or_path
    if not isinstance(records, list):
        records = RunJournal.read(records)
    history: dict = {}
    for record in records:
        cell = record.get("cell")
        if cell is None:
            continue
        entry = (record["event"],) + tuple(
            record.get(field) for field in _HISTORY_FIELDS
        )
        history.setdefault(cell, []).append(entry)
    return history


@dataclasses.dataclass
class CellOutcome:
    """Terminal state of one cell after supervision."""

    cell: Cell
    result: RunResult = None
    attempts: int = 0
    #: Frame the successful attempt resumed from (0 = rendered fresh).
    resumed_from_frame: int = 0
    #: Terminal failure description; ``None`` when the cell succeeded.
    failure: str = None

    @property
    def succeeded(self) -> bool:
        return self.result is not None


@dataclasses.dataclass
class SupervisedRun:
    """Everything a supervised run produced."""

    outcomes: dict                     # Cell -> CellOutcome
    records: list                      # journal records, in order
    journal_path: object = None

    def results(self) -> dict:
        """``{cell: RunResult}`` for the cells that succeeded."""
        return {
            cell: outcome.result
            for cell, outcome in self.outcomes.items() if outcome.succeeded
        }

    @property
    def failed(self) -> dict:
        """``{cell: CellOutcome}`` for the cells that exhausted retries."""
        return {
            cell: outcome
            for cell, outcome in self.outcomes.items() if not outcome.succeeded
        }

    def raise_on_failure(self) -> "SupervisedRun":
        if self.failed:
            raise SupervisionError(
                "supervised run failed for "
                + ", ".join(sorted(cell_label(c) for c in self.failed)),
                self,
            )
        return self


# ----------------------------------------------------------------------
# Worker side (child process)
# ----------------------------------------------------------------------

def _fire_fault(fault: FaultSpec) -> None:
    if fault.kind == "crash":
        os._exit(CRASH_EXITCODE)
    if fault.kind == "hang":
        while True:          # parent's timeout terminates us
            time.sleep(3600)
    raise InjectedFault(
        f"injected fault at frame boundary ({fault})"
    )


def _attempt_main(conn, cell: Cell, config: GpuConfig,
                  policy: SupervisorPolicy, attempt: int, ckpt_path,
                  fault: FaultSpec, trace_path=None,
                  metrics_path=None, live_enabled: bool = False) -> None:
    """Child body: run (or resume) one cell, reporting over ``conn``.

    Messages: ``("progress", frames_rendered)`` after every stride
    boundary (its checkpoint, if any, is already on disk), then exactly
    one of ``("ok", RunResult, resumed_from_frame)`` or
    ``("error", description)``.  A crash sends nothing — the parent
    reads the EOF and the exit code instead.  With ``live_enabled`` the
    same pipe also carries ``("telemetry", {...})`` records — one per
    rendered frame — which the parent routes to its
    :class:`~repro.obs.live.LiveAggregator`.

    Observability: ``trace_path`` records a Chrome trace for this
    attempt (rewritten per attempt, metadata stamped with the cell,
    attempt number and resume frame, so the journal's ``attempt_start``
    records correlate with the trace that survived); ``metrics_path`` is
    appended to across attempts — each attempt contributes its own
    stamped header and the frames it rendered, flushed per record so
    even a crashed attempt leaves its completed frames on disk.
    """
    np.random.seed(cell_seed(cell))
    tracer = metrics = None
    try:
        if trace_path is not None or metrics_path is not None:
            from ..obs import MetricsLog, TraceRecorder

            if trace_path is not None:
                tracer = TraceRecorder()
            if metrics_path is not None:
                metrics = MetricsLog(metrics_path, mode="a")

        state = try_load_checkpoint(ckpt_path)
        if state is not None:
            session = RenderSession.from_checkpoint(state)
            resumed_from = session.frames_rendered
        else:
            session = RenderSession(
                cell.alias, technique=cell.technique, config=config,
                num_frames=cell.num_frames,
                exact_signatures=cell.exact_signatures,
            )
            resumed_from = 0
        live_sink = None
        if live_enabled:
            from ..obs.live import ChannelLiveSink

            live_sink = ChannelLiveSink(
                conn, cell_label(cell), attempt=attempt,
            )
        if tracer is not None or metrics is not None or live_sink is not None:
            session.attach_observability(
                tracer=tracer, metrics=metrics, live=live_sink,
                header_fields={
                    "cell": cell_label(cell),
                    "attempt": attempt,
                    "resumed_from_frame": resumed_from,
                },
            )

        armed = fault is not None and fault.matches(cell)

        def after_step(frames_rendered: int) -> None:
            conn.send(("progress", frames_rendered))
            if armed and fault.should_fire(attempt, frames_rendered):
                _fire_fault(fault)

        session.run_checkpointed(
            policy.checkpoint_stride, ckpt_path, after_step
        )
        conn.send(("ok", result_from_session(session), resumed_from))
    except BaseException as exc:  # noqa: BLE001 - report, then die quietly
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        if tracer is not None:
            try:
                tracer.close_open_spans()
                tracer.write(trace_path)
            except OSError:      # pragma: no cover - best-effort artifact
                pass
        if metrics is not None:
            metrics.close()
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Supervisor side (parent process)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _CellState:
    """Parent-side bookkeeping for one cell across attempts."""

    cell: Cell
    config: GpuConfig
    ckpt_path: object = None
    trace_path: object = None
    metrics_path: object = None
    attempt: int = 0
    next_eligible: float = 0.0
    #: Last frame a checkpoint is known to exist for (this run).
    checkpoint_frame: int = 0


@dataclasses.dataclass
class _Active:
    """One in-flight attempt."""

    state: _CellState
    process: object
    conn: object
    deadline: float = None


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:                       # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


def supervise_cells(cells: typing.Sequence, config: GpuConfig = None,
                    policy: SupervisorPolicy = None, processes: int = None,
                    journal_path=None, fault_spec=None,
                    workdir=None, trace_path=None,
                    metrics_path=None, live=None,
                    progress_hook=None) -> SupervisedRun:
    """Run every cell under supervision; never raises for cell failures.

    ``processes`` bounds how many attempts run concurrently (default 1 —
    still fully supervised, one isolated worker at a time).  ``workdir``
    holds the per-cell recovery checkpoints; if omitted a temporary
    directory is used and removed afterwards.  In a caller-provided
    ``workdir``, checkpoints of cells that never succeed are *kept*, so
    re-running the same matrix resumes them; a successful cell's
    checkpoint is always deleted.

    ``trace_path`` / ``metrics_path`` enable observability
    (:mod:`repro.obs`) inside the workers: each attempt writes a Chrome
    trace stamped with its cell/attempt/resume-frame metadata and
    appends per-frame metrics records under its own stamped header, so
    the journal, the trace and the metrics log tell one correlated
    story.  With more than one cell the paths are suffixed per cell
    (see the journal's ``attempt_start`` records for the exact paths).

    ``fault_spec`` accepts a :class:`FaultSpec` or spec string; when
    ``None`` the ``REPRO_FAULT_SPEC`` environment variable is consulted.
    Inspect :attr:`SupervisedRun.failed` (or call
    :meth:`SupervisedRun.raise_on_failure`) for cells that exhausted
    their retries.

    ``live`` accepts a :class:`~repro.obs.live.LiveAggregator`: every
    worker then streams per-frame progress and key counters back over
    its result pipe, and the aggregator renders a periodic status table,
    writes its ``live.json`` heartbeat, and flags stalled workers —
    *before* the timeout kill fires, since its stall threshold is
    independent of (and should be below) ``policy.timeout_s``.

    ``progress_hook`` is a lower-level tap on the same stream: a
    callable invoked in the supervisor process for every progress /
    telemetry message (``hook(kind, payload)`` with kind ``"progress"``
    or ``"telemetry"``).  Fleet workers use it to renew their point
    lease per frame; passing a hook enables per-frame telemetry in the
    children even when no ``live`` aggregator is attached.  Hook
    exceptions propagate — a fleet worker that cannot renew its lease
    must not keep rendering.
    """
    cells = coerce_cells(cells)
    config = config or GpuConfig.benchmark()
    policy = policy or SupervisorPolicy()
    if fault_spec is None:
        fault_spec = os.environ.get(FAULT_ENV_VAR) or None
    fault = (
        FaultSpec.parse(fault_spec)
        if isinstance(fault_spec, str) else fault_spec
    )
    width = 1 if processes in (None, 0) else max(1, int(processes))
    width = min(width, len(cells)) if cells else 1

    own_workdir = workdir is None and policy.checkpoint_stride > 0
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-supervise-")
    if workdir is not None:
        os.makedirs(workdir, exist_ok=True)

    many = len(cells) > 1
    pending: list = []
    try:
        for index, cell in enumerate(cells):
            cell_config = cell.config or config
            ckpt_path = None
            if workdir is not None and policy.checkpoint_stride > 0:
                exact = "-exact" if cell.exact_signatures else ""
                ckpt_path = os.path.join(
                    workdir,
                    f"{cell.alias}-{cell.technique}-f{cell.num_frames}{exact}"
                    f"-{cell_config.digest()[:8]}.ckpt",
                )
            pending.append(_CellState(
                cell, cell_config, ckpt_path,
                trace_path=per_cell_path(trace_path, cell, index, many),
                metrics_path=per_cell_path(metrics_path, cell, index, many),
            ))
        ensure_unique_paths([s.trace_path for s in pending], "trace")
        ensure_unique_paths([s.metrics_path for s in pending], "metrics")
        ensure_unique_paths([s.ckpt_path for s in pending], "checkpoint")
    except ReproError:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        raise
    for state in pending:
        if state.metrics_path is not None:
            # Attempts append; start each supervised run from a clean log.
            open(state.metrics_path, "w", encoding="utf-8").close()

    ctx = _mp_context()
    journal = RunJournal(journal_path)
    journal.append(
        "run_start", cells=len(cells), processes=width,
        config_digest=config.digest(),
        policy=dataclasses.asdict(policy),
        fault=str(fault) if fault else None,
    )

    active: dict = {}      # id(_CellState) -> _Active
    outcomes: dict = {}    # Cell -> CellOutcome

    def launch(state: _CellState) -> None:
        state.attempt += 1
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_attempt_main,
            args=(child_conn, state.cell, state.config, policy,
                  state.attempt, state.ckpt_path, fault,
                  state.trace_path, state.metrics_path,
                  live is not None or progress_hook is not None),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = (
            time.monotonic() + policy.timeout_s
            if policy.timeout_s else None
        )
        active[id(state)] = _Active(state, process, parent_conn, deadline)
        extra = {}
        if state.trace_path is not None:
            extra["trace"] = str(state.trace_path)
        if state.metrics_path is not None:
            extra["metrics"] = str(state.metrics_path)
        journal.append(
            "attempt_start", cell=cell_label(state.cell),
            attempt=state.attempt, resume_frame=state.checkpoint_frame,
            num_frames=state.cell.num_frames, pid=process.pid, **extra,
        )

    def reap(entry: _Active) -> None:
        try:
            entry.conn.close()
        except OSError:
            pass
        entry.process.join(timeout=5)
        if entry.process.is_alive():        # pragma: no cover - safety net
            entry.process.kill()
            entry.process.join()

    def retry_or_fail(state: _CellState, kind: str, **fields) -> None:
        journal.append(
            f"attempt_{kind}", cell=cell_label(state.cell),
            attempt=state.attempt, kind=kind, **fields,
        )
        if live is not None:
            live.mark_status(
                cell_label(state.cell),
                "retrying" if state.attempt <= policy.max_retries
                else "failed",
            )
        if state.attempt <= policy.max_retries:
            delay = policy.backoff(state.attempt)
            state.next_eligible = time.monotonic() + delay
            journal.append(
                "cell_retry", cell=cell_label(state.cell),
                attempt=state.attempt, backoff_s=round(delay, 6),
                resume_frame=state.checkpoint_frame,
            )
            pending.append(state)
        else:
            failure = f"{kind} after {state.attempt} attempts"
            if fields.get("error"):
                failure += f": {fields['error']}"
            outcomes[state.cell] = CellOutcome(
                state.cell, attempts=state.attempt, failure=failure,
            )
            journal.append(
                "cell_failed", cell=cell_label(state.cell),
                attempt=state.attempt, kind=kind,
                error=fields.get("error"),
            )

    def succeed(state: _CellState, result: RunResult,
                resumed_from: int) -> None:
        if live is not None:
            live.mark_status(cell_label(state.cell), "done")
        outcomes[state.cell] = CellOutcome(
            state.cell, result=result, attempts=state.attempt,
            resumed_from_frame=resumed_from,
        )
        journal.append(
            "cell_done", cell=cell_label(state.cell),
            attempt=state.attempt, resume_frame=resumed_from,
            frames=result.num_frames,
            final_frame_crc=result.final_frame_crc,
        )
        if state.ckpt_path is not None and os.path.exists(state.ckpt_path):
            os.remove(state.ckpt_path)

    def drain(entry: _Active):
        """Pull queued messages; returns the final message, ``("eof",)``
        on a dead pipe, or ``None`` while the attempt is still going.
        Telemetry records are routed to the live aggregator in passing."""
        while True:
            try:
                if not entry.conn.poll():
                    return None
                message = entry.conn.recv()
            except (EOFError, OSError):
                return ("eof",)
            if message[0] == "telemetry":
                if live is not None:
                    live.update(message)
                if progress_hook is not None:
                    progress_hook("telemetry", message[1])
                continue
            if message[0] != "progress":
                return message
            frames = int(message[1])
            if progress_hook is not None:
                progress_hook("progress", frames)
            if (entry.state.ckpt_path is not None
                    and frames < entry.state.cell.num_frames):
                entry.state.checkpoint_frame = frames

    try:
        while pending or active:
            now = time.monotonic()

            # Launch every eligible pending cell while there is room.
            while len(active) < width:
                eligible = [s for s in pending if s.next_eligible <= now]
                if not eligible:
                    break
                state = eligible[0]
                pending.remove(state)
                launch(state)

            if not active:
                # Everything pending is backing off; sleep to eligibility.
                wake = min(s.next_eligible for s in pending)
                time.sleep(max(0.0, min(wake - time.monotonic(),
                                        policy.poll_interval_s)))
                continue

            # Wait for worker traffic (bounded so deadlines stay live).
            wait_s = policy.poll_interval_s
            deadlines = [a.deadline for a in active.values() if a.deadline]
            if deadlines:
                wait_s = min(wait_s, max(0.0, min(deadlines) - now))
            multiprocessing.connection.wait(
                [a.conn for a in active.values()], timeout=wait_s
            )
            if live is not None:
                live.tick()

            for key in list(active):
                entry = active[key]
                state = entry.state
                message = drain(entry)
                if message is None:
                    if (entry.deadline is not None
                            and time.monotonic() >= entry.deadline):
                        entry.process.terminate()
                        reap(entry)
                        del active[key]
                        retry_or_fail(
                            state, "timeout", timeout_s=policy.timeout_s,
                        )
                    continue
                reap(entry)
                del active[key]
                if message[0] == "ok":
                    succeed(state, message[1], int(message[2]))
                elif message[0] == "error":
                    retry_or_fail(state, "error", error=message[1])
                else:  # eof: worker died without reporting
                    retry_or_fail(
                        state, "crash", exitcode=entry.process.exitcode,
                    )

        journal.append(
            "run_complete",
            succeeded=sum(1 for o in outcomes.values() if o.succeeded),
            failed=sum(1 for o in outcomes.values() if not o.succeeded),
        )
    finally:
        for entry in active.values():       # pragma: no cover - safety net
            entry.process.terminate()
            reap(entry)
        journal.close()
        if live is not None:
            live.close()
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)

    # Key outcomes in the caller's cell order.
    ordered = {cell: outcomes[cell] for cell in cells}
    return SupervisedRun(
        outcomes=ordered, records=journal.records, journal_path=journal_path,
    )
