"""Tile classification (Figs. 2 and 15a).

From a run's recorded per-frame per-tile color checksums and input
signatures, classify each (frame, tile) pair against the same tile one
frame earlier:

* **equal colors, equal inputs** — redundancy Rendering Elimination
  detects (Fig. 15a bottom bar);
* **equal colors, different inputs** — RE's false negatives: occluded
  changes or pans over flat color (mid bar; Transaction Elimination can
  still eliminate these flushes);
* **different colors, different inputs** — genuinely changed tiles
  (top bar);
* **different colors, equal inputs** — would indicate a signature false
  positive; the paper observed none and :func:`classify_run` reports the
  count so tests can assert zero.
"""

from __future__ import annotations

import dataclasses

from ..errors import ReproError
from .runner import RunResult


@dataclasses.dataclass
class TileClasses:
    """Counts over all (frame, tile) pairs after the first frame."""

    eq_colors_eq_inputs: int = 0
    eq_colors_diff_inputs: int = 0
    diff_colors_diff_inputs: int = 0
    diff_colors_eq_inputs: int = 0   # false positives: expected zero
    total: int = 0

    def fractions(self) -> dict:
        if self.total == 0:
            return {}
        return {
            "eq_colors_eq_inputs": self.eq_colors_eq_inputs / self.total,
            "eq_colors_diff_inputs": self.eq_colors_diff_inputs / self.total,
            "diff_colors_diff_inputs": self.diff_colors_diff_inputs / self.total,
            "diff_colors_eq_inputs": self.diff_colors_eq_inputs / self.total,
        }

    @property
    def equal_colors_fraction(self) -> float:
        """The Fig. 2 metric: fraction of tiles with unchanged colors."""
        if self.total == 0:
            return 0.0
        return (
            self.eq_colors_eq_inputs + self.eq_colors_diff_inputs
        ) / self.total

    @property
    def detected_fraction_of_redundant(self) -> float:
        """Share of redundant (equal-color) tiles RE's signatures catch."""
        redundant = self.eq_colors_eq_inputs + self.eq_colors_diff_inputs
        if redundant == 0:
            return 0.0
        return self.eq_colors_eq_inputs / redundant


def classify_run(run: RunResult, distance: int = 1) -> TileClasses:
    """Classify every tile of every frame against ``distance`` frames
    back.  Requires a run that recorded input signatures (an RE run)."""
    if run.tile_input_sigs is None:
        raise ReproError(
            "tile classification needs input signatures; run with "
            "technique='re'"
        )
    colors = run.tile_color_crcs
    sigs = run.tile_input_sigs
    if len(colors) <= distance:
        return TileClasses()

    eq_colors = colors[distance:] == colors[:-distance]
    eq_inputs = sigs[distance:] == sigs[:-distance]

    classes = TileClasses(total=int(eq_colors.size))
    classes.eq_colors_eq_inputs = int((eq_colors & eq_inputs).sum())
    classes.eq_colors_diff_inputs = int((eq_colors & ~eq_inputs).sum())
    classes.diff_colors_diff_inputs = int((~eq_colors & ~eq_inputs).sum())
    classes.diff_colors_eq_inputs = int((~eq_colors & eq_inputs).sum())
    return classes


def equal_tiles_fraction(run: RunResult, distance: int = 1) -> float:
    """Fig. 2: fraction of tiles producing the same color as the same
    tile ``distance`` frames earlier (color checksums only, so it works
    on runs of any technique)."""
    colors = run.tile_color_crcs
    if len(colors) <= distance:
        return 0.0
    eq = colors[distance:] == colors[:-distance]
    return float(eq.mean())
