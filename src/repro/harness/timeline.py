"""Per-frame redundancy timelines.

Section V attributes each benchmark's results to its camera behaviour
over time: always-static games skip almost every frame, mst never
skips, and the mixed games alternate phases.  This module extracts that
time series from a run — the fraction of tiles skipped (or color-equal)
per frame — and summarizes its phase structure, so the behaviour-class
claims can be tested rather than asserted.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .runner import RunResult


def skip_timeline(run: RunResult) -> np.ndarray:
    """Fraction of tiles skipped per frame, shape ``(num_frames,)``."""
    tiles = run.config.num_tiles
    return np.array(
        [frame.tiles_skipped / tiles for frame in run.frames],
        dtype=np.float64,
    )


def equal_colors_timeline(run: RunResult, distance: int = 1) -> np.ndarray:
    """Fraction of color-unchanged tiles per frame (first ``distance``
    frames have no reference and report 0)."""
    colors = run.tile_color_crcs
    timeline = np.zeros(len(colors), dtype=np.float64)
    if len(colors) > distance:
        eq = colors[distance:] == colors[:-distance]
        timeline[distance:] = eq.mean(axis=1)
    return timeline


@dataclasses.dataclass
class PhaseSummary:
    """Phase structure of a redundancy timeline."""

    mean: float
    minimum: float
    maximum: float
    quiet_frames: int      # >= quiet_threshold redundancy
    busy_frames: int       # <= busy_threshold redundancy
    transitions: int       # quiet<->busy boundary crossings

    @property
    def is_bimodal(self) -> bool:
        """Both full-skip phases and full-render phases occur."""
        return self.quiet_frames > 0 and self.busy_frames > 0


def summarize_phases(timeline: np.ndarray, quiet_threshold: float = 0.8,
                     busy_threshold: float = 0.3,
                     skip_warmup: int = 2) -> PhaseSummary:
    """Classify each frame as quiet/busy and count phase transitions."""
    series = np.asarray(timeline, dtype=np.float64)[skip_warmup:]
    if series.size == 0:
        return PhaseSummary(0.0, 0.0, 0.0, 0, 0, 0)
    quiet = series >= quiet_threshold
    busy = series <= busy_threshold
    states = np.where(quiet, 1, np.where(busy, -1, 0))
    meaningful = states[states != 0]
    transitions = (
        int(np.sum(meaningful[1:] != meaningful[:-1]))
        if meaningful.size > 1 else 0
    )
    return PhaseSummary(
        mean=float(series.mean()),
        minimum=float(series.min()),
        maximum=float(series.max()),
        quiet_frames=int(quiet.sum()),
        busy_frames=int(busy.sum()),
        transitions=transitions,
    )


def sparkline(timeline: np.ndarray, width: int = None) -> str:
    """Compact text rendering of a timeline (one glyph per frame)."""
    glyphs = " ▁▂▃▄▅▆▇█"
    series = np.asarray(timeline, dtype=np.float64)
    if width is not None and series.size > width:
        # Downsample by averaging buckets.
        edges = np.linspace(0, series.size, width + 1).astype(int)
        series = np.array([
            series[a:b].mean() if b > a else 0.0
            for a, b in zip(edges[:-1], edges[1:])
        ])
    cells = np.clip((series * (len(glyphs) - 1)).round().astype(int),
                    0, len(glyphs) - 1)
    return "".join(glyphs[c] for c in cells)
