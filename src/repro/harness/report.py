"""One-command evaluation report: every figure, one markdown file.

:func:`generate_report` runs the complete experiment registry against a
shared :class:`~repro.harness.experiments.RunCache` and writes a single
``REPORT.md`` with each figure's table, ASCII chart and paper notes —
the whole evaluation section of the paper, regenerated in one call
(also exposed as ``python -m repro report``).
"""

from __future__ import annotations

import time

from ..config import GpuConfig
from .charts import chart_for
from .experiments import (
    EXPERIMENTS,
    RunCache,
    hash_quality,
    table1_parameters,
)

#: Order in which the report presents its sections.
REPORT_ORDER = (
    "table1", "fig01", "fig02", "fig14a", "fig14b", "fig15a",
    "fig15b", "fig16", "fig17a", "fig17b", "re_overheads", "hash_quality",
)


def _run_experiment(experiment_id: str, cache: RunCache):
    if experiment_id == "table1":
        return table1_parameters(cache.config)
    if experiment_id == "hash_quality":
        return hash_quality(
            cache.config, num_frames=min(8, cache.num_frames),
            aliases=("ccs", "ctr", "mst", "tib"),
        )
    return EXPERIMENTS[experiment_id](cache)


def generate_report(path, config: GpuConfig = None, num_frames: int = 20,
                    experiment_ids=REPORT_ORDER, progress=None) -> list:
    """Run the selected experiments and write a markdown report.

    Returns the list of :class:`ExperimentResult` in report order.
    ``progress`` (if given) is called with each experiment id before it
    runs, so CLIs can narrate the long parts.
    """
    cache = RunCache(config or GpuConfig.benchmark(), num_frames=num_frames)
    results = []
    started = time.time()
    for experiment_id in experiment_ids:
        if progress is not None:
            progress(experiment_id)
        results.append(_run_experiment(experiment_id, cache))

    lines = [
        "# Rendering Elimination — regenerated evaluation",
        "",
        f"Configuration: {cache.config.screen_width}x"
        f"{cache.config.screen_height}, {cache.config.tile_size}x"
        f"{cache.config.tile_size} tiles, {num_frames} frames per game.",
        f"Generated in {time.time() - started:.0f} s.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.table())
        try:
            chart = chart_for(result)
        except (ValueError, TypeError, IndexError):
            chart = ""
        if chart:
            lines.append("")
            lines.append(chart)
        lines.append("```")
        if result.notes:
            lines.append("")
            lines.append(f"*{result.notes}*")
        lines.append("")
    with open(path, "w") as handle:
        handle.write("\n".join(lines))
    return results
