"""Process-pool harness runner: fan independent cells across workers.

A *cell* is one independent (workload, technique) simulation —
:func:`repro.harness.runner.run_workload` with fixed arguments.  Cells
share no simulator state (each builds its own scene and GPU), so a run
matrix parallelizes trivially across ``multiprocessing`` workers; the
suite and the experiment cache both fan out through :func:`run_cells`.

Determinism: every cell derives a seed from its own identity
(:func:`cell_seed`) and reseeds NumPy's legacy global generator before
running, so a cell's result is a pure function of the cell — identical
whether it runs serially, in any worker, or in any order.  (Workload
content already uses explicit per-scene generators; the reseeding
guards any library code that reaches for global randomness.)

``processes`` in ``(None, 0, 1)`` selects the serial fallback, which
runs cells in-process (and therefore shares the in-process raster/shade
memos — fastest on single-core machines).

Fault tolerance: the plain pool path assumes every worker succeeds — a
hung or crashed cell takes the whole ``pool.map`` down with it.  Passing
``policy`` (and/or ``journal_path`` / ``fault_spec``) routes the run
through :mod:`repro.harness.supervisor` instead: per-cell wall-clock
timeouts, bounded retry with exponential backoff, crash isolation, and
checkpoint-based recovery, with every attempt recorded in a JSONL run
journal.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import re
import typing

import numpy as np

from ..config import GpuConfig
from ..errors import ReproError, SupervisionError
from .runner import run_workload


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent unit of harness work.

    ``config`` optionally overrides the run-wide :class:`GpuConfig` for
    this cell alone (parameter sweeps fan out heterogeneous grids this
    way); ``None`` means "use the config the runner was given".
    ``tag``, when set, names the cell's per-cell artifacts (trace /
    metrics fan-out) instead of the positional ``-NN-alias-technique``
    scheme — sweeps tag points with their parameter assignment so the
    files stop being anonymous.
    """

    alias: str
    technique: str = "baseline"
    num_frames: int = 50
    exact_signatures: bool = False
    config: GpuConfig = None
    tag: str = None


def cell_seed(cell: Cell) -> int:
    """Deterministic 32-bit seed derived from the cell's identity.

    The per-cell config override is deliberately excluded: the seed
    covers what the cell *renders*, and reseeding exists only to guard
    stray global-randomness users, so sweep points of the same cell
    reseed identically.
    """
    digest = hashlib.sha256(
        f"{cell.alias}|{cell.technique}|{cell.num_frames}"
        f"|{cell.exact_signatures}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def cell_label(cell: Cell) -> str:
    """Human-readable cell identity used by journals and fault specs."""
    return f"{cell.alias}/{cell.technique}"


def sanitize_component(text) -> str:
    """Filesystem-safe rendering of one artifact-name component.

    Anything outside ``[A-Za-z0-9._=-]`` collapses to ``_``.  Distinct
    inputs *can* sanitize to the same name — path-derivation call sites
    guard with :func:`ensure_unique_paths` so a collision raises instead
    of silently overwriting another cell's artifacts.
    """
    return re.sub(r"[^A-Za-z0-9._=-]", "_", str(text))


def per_cell_path(base, cell: Cell, index: int, many: bool):
    """Derive a per-cell artifact path (trace/metrics) from a base path.

    One untagged cell uses the base path verbatim; a matrix suffixes the
    stem with the cell's position and label (the index disambiguates
    points that share alias/technique across configs).  A *tagged* cell
    always uses its sanitized tag — sweeps name points after their
    parameter assignment this way."""
    if base is None:
        return None
    base = os.fspath(base)
    root, ext = os.path.splitext(base)
    if cell.tag is not None:
        return f"{root}-{sanitize_component(cell.tag)}{ext}"
    if not many:
        return base
    alias = sanitize_component(cell.alias)
    technique = sanitize_component(cell.technique)
    return f"{root}-{index:02d}-{alias}-{technique}{ext}"


def ensure_unique_paths(paths: typing.Sequence, what: str = "artifact") -> None:
    """Raise if any two derived artifact paths collide.

    Fan-out writes one trace/metrics file per cell; two cells mapping to
    the same path (sanitized tags or labels colliding) would silently
    overwrite each other, so that is an error, not a warning.
    """
    seen: dict = {}
    for path in paths:
        if path is None:
            continue
        if path in seen:
            raise ReproError(
                f"{what} path collision: {path!r} is derived by more than "
                "one cell (sanitized names collide); rename the colliding "
                "points or write to distinct stems"
            )
        seen[path] = True


def coerce_cells(cells: typing.Sequence) -> list:
    """Normalize a cell sequence: tuples become :class:`Cell`, duplicate
    cells collapse (keeping first-seen order) so result dicts keyed by
    cell cannot silently drop work."""
    coerced = [c if isinstance(c, Cell) else Cell(*c) for c in cells]
    return list(dict.fromkeys(coerced))


#: Telemetry queue a pool worker posts to; installed per worker process
#: by :func:`_pool_live_init` (queues travel to pool workers through the
#: initializer, not through pickled map payloads).
_LIVE_CHANNEL = None


def _pool_live_init(queue) -> None:
    global _LIVE_CHANNEL
    _LIVE_CHANNEL = queue


def _live_sink(cell: Cell, channel=None):
    """Worker-side live sink for a cell, or ``None`` when disabled."""
    channel = channel if channel is not None else _LIVE_CHANNEL
    if channel is None:
        return None
    from ..obs.live import ChannelLiveSink

    return ChannelLiveSink(channel, cell_label(cell))


def _run_cell(payload: tuple) -> tuple:
    """Worker body: run one cell; returns ``(cell, RunResult)``."""
    cell, config, trace_path, metrics_path = payload
    np.random.seed(cell_seed(cell))
    result = run_workload(
        cell.alias, cell.technique, config=cell.config or config,
        num_frames=cell.num_frames,
        exact_signatures=cell.exact_signatures,
        trace_path=trace_path, metrics_path=metrics_path,
        live=_live_sink(cell),
    )
    return cell, result


def run_cells(cells: typing.Sequence, config: GpuConfig = None,
              processes: int = None, policy=None, journal_path=None,
              fault_spec=None, workdir=None, trace_path=None,
              metrics_path=None, live=None) -> dict:
    """Run every cell, returning ``{cell: RunResult}``.

    ``processes`` > 1 fans cells across a process pool (capped at the
    machine's CPU count); ``None``/``0``/``1`` runs serially in-process.
    Results are keyed by cell regardless of completion order, so callers
    see the same mapping either way.

    ``trace_path`` / ``metrics_path`` record per-run observability
    (:mod:`repro.obs`) for every cell; with more than one cell the
    paths are suffixed per cell, the same scheme the supervisor uses.
    Derived paths are checked for collisions up front — two cells whose
    sanitized names map to the same file raise instead of overwriting
    each other.

    ``live`` accepts a :class:`~repro.obs.live.LiveAggregator`: workers
    stream per-frame progress/counters to it and it maintains the
    status table + ``live.json`` heartbeat while the pool runs.

    Passing any of ``policy`` (a
    :class:`~repro.harness.supervisor.SupervisorPolicy`),
    ``journal_path`` or ``fault_spec`` runs the cells under the
    fault-tolerant supervisor instead of the bare pool; cells that still
    fail after the policy's retries raise :class:`SupervisionError`
    (successful cells' results are attached to the exception).
    """
    cells = coerce_cells(cells)
    config = config or GpuConfig.benchmark()

    if policy is not None or journal_path is not None or fault_spec is not None:
        from .supervisor import supervise_cells

        supervised = supervise_cells(
            cells, config=config, policy=policy, processes=processes,
            journal_path=journal_path, fault_spec=fault_spec,
            workdir=workdir, trace_path=trace_path,
            metrics_path=metrics_path, live=live,
        )
        failed = supervised.failed
        if failed:
            raise SupervisionError(
                "supervised run failed for "
                + ", ".join(sorted(cell_label(c) for c in failed)),
                supervised,
            )
        return supervised.results()

    many = len(cells) > 1
    payloads = [
        (cell, config,
         per_cell_path(trace_path, cell, index, many),
         per_cell_path(metrics_path, cell, index, many))
        for index, cell in enumerate(cells)
    ]
    ensure_unique_paths([p[2] for p in payloads], "trace")
    ensure_unique_paths([p[3] for p in payloads], "metrics")
    if processes in (None, 0, 1) or len(cells) <= 1:
        results = {}
        for payload in payloads:
            if live is not None:
                # In-process: the sink posts straight to the aggregator.
                sink = _live_sink(payload[0], channel=live)
                cell, result = _run_cell_with_live(payload, sink)
            else:
                cell, result = _run_cell(payload)
            results[cell] = result
        if live is not None:
            live.close()
        return results

    import multiprocessing

    # Capped by the cell count only: requesting more workers than cores
    # merely timeslices, and single-core machines can still exercise the
    # pool path.
    workers = min(int(processes), len(cells))
    if live is None:
        with multiprocessing.Pool(workers) as pool:
            return dict(pool.map(_run_cell, payloads))

    queue = multiprocessing.Queue()
    try:
        with multiprocessing.Pool(
            workers, initializer=_pool_live_init, initargs=(queue,),
        ) as pool:
            async_result = pool.map_async(_run_cell, payloads)
            while not async_result.ready():
                _drain_live_queue(queue, live, timeout=0.1)
                live.tick()
            results = dict(async_result.get())
        _drain_live_queue(queue, live, timeout=0.0)
        return results
    finally:
        live.close()
        queue.close()


def _run_cell_with_live(payload: tuple, sink) -> tuple:
    """Serial-path worker body with an in-process live sink attached."""
    cell, config, trace_path, metrics_path = payload
    np.random.seed(cell_seed(cell))
    result = run_workload(
        cell.alias, cell.technique, config=cell.config or config,
        num_frames=cell.num_frames,
        exact_signatures=cell.exact_signatures,
        trace_path=trace_path, metrics_path=metrics_path,
        live=sink,
    )
    return cell, result


def _drain_live_queue(queue, live, timeout: float) -> None:
    """Forward queued worker telemetry to the aggregator."""
    import queue as queue_module

    while True:
        try:
            message = queue.get(
                timeout=timeout) if timeout else queue.get_nowait()
        except (queue_module.Empty, OSError, EOFError):
            return
        live.update(message)
        timeout = 0.0


def run_matrix(aliases: typing.Sequence, techniques: typing.Sequence,
               config: GpuConfig = None, num_frames: int = 50,
               processes: int = None, policy=None, journal_path=None,
               fault_spec=None) -> dict:
    """Run the full ``aliases x techniques`` grid; returns a mapping
    ``(alias, technique) -> RunResult``."""
    cells = [
        Cell(alias, technique, num_frames)
        for alias in aliases for technique in techniques
    ]
    results = run_cells(
        cells, config=config, processes=processes, policy=policy,
        journal_path=journal_path, fault_spec=fault_spec,
    )
    return {
        (cell.alias, cell.technique): run for cell, run in results.items()
    }


def merged_totals(results: dict) -> dict:
    """Aggregate stats across a :func:`run_matrix` result, per technique.

    Returns ``{technique: {cells, frames, total_cycles, total_energy_nj,
    fragments_shaded, tiles_skipped, traffic_bytes}}`` — the merged view
    a fleet of workers reports back to the suite.
    """
    merged: dict = {}
    for (_, technique), run in results.items():
        bucket = merged.setdefault(technique, {
            "cells": 0, "frames": 0, "total_cycles": 0,
            "total_energy_nj": 0.0, "fragments_shaded": 0,
            "tiles_skipped": 0, "traffic_bytes": 0,
        })
        bucket["cells"] += 1
        bucket["frames"] += run.num_frames
        bucket["total_cycles"] += run.total_cycles
        bucket["total_energy_nj"] += run.total_energy_nj
        bucket["fragments_shaded"] += run.fragments_shaded
        bucket["tiles_skipped"] += run.tiles_skipped
        bucket["traffic_bytes"] += run.total_traffic_bytes
    return merged
