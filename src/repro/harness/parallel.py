"""Process-pool harness runner: fan independent cells across workers.

A *cell* is one independent (workload, technique) simulation —
:func:`repro.harness.runner.run_workload` with fixed arguments.  Cells
share no simulator state (each builds its own scene and GPU), so a run
matrix parallelizes trivially across ``multiprocessing`` workers; the
suite and the experiment cache both fan out through :func:`run_cells`.

Determinism: every cell derives a seed from its own identity
(:func:`cell_seed`) and reseeds NumPy's legacy global generator before
running, so a cell's result is a pure function of the cell — identical
whether it runs serially, in any worker, or in any order.  (Workload
content already uses explicit per-scene generators; the reseeding
guards any library code that reaches for global randomness.)

``processes`` in ``(None, 0, 1)`` selects the serial fallback, which
runs cells in-process (and therefore shares the in-process raster/shade
memos — fastest on single-core machines).

Fault tolerance: the plain pool path assumes every worker succeeds — a
hung or crashed cell takes the whole ``pool.map`` down with it.  Passing
``policy`` (and/or ``journal_path`` / ``fault_spec``) routes the run
through :mod:`repro.harness.supervisor` instead: per-cell wall-clock
timeouts, bounded retry with exponential backoff, crash isolation, and
checkpoint-based recovery, with every attempt recorded in a JSONL run
journal.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import typing

import numpy as np

from ..config import GpuConfig
from ..errors import SupervisionError
from .runner import run_workload


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent unit of harness work.

    ``config`` optionally overrides the run-wide :class:`GpuConfig` for
    this cell alone (parameter sweeps fan out heterogeneous grids this
    way); ``None`` means "use the config the runner was given".
    """

    alias: str
    technique: str = "baseline"
    num_frames: int = 50
    exact_signatures: bool = False
    config: GpuConfig = None


def cell_seed(cell: Cell) -> int:
    """Deterministic 32-bit seed derived from the cell's identity.

    The per-cell config override is deliberately excluded: the seed
    covers what the cell *renders*, and reseeding exists only to guard
    stray global-randomness users, so sweep points of the same cell
    reseed identically.
    """
    digest = hashlib.sha256(
        f"{cell.alias}|{cell.technique}|{cell.num_frames}"
        f"|{cell.exact_signatures}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def cell_label(cell: Cell) -> str:
    """Human-readable cell identity used by journals and fault specs."""
    return f"{cell.alias}/{cell.technique}"


def per_cell_path(base, cell: Cell, index: int, many: bool):
    """Derive a per-cell artifact path (trace/metrics) from a base path.

    One cell uses the base path verbatim; a matrix suffixes the stem
    with the cell's position and label (the index disambiguates sweep
    points, which share alias/technique across configs)."""
    if base is None:
        return None
    base = os.fspath(base)
    if not many:
        return base
    root, ext = os.path.splitext(base)
    return f"{root}-{index:02d}-{cell.alias}-{cell.technique}{ext}"


def coerce_cells(cells: typing.Sequence) -> list:
    """Normalize a cell sequence: tuples become :class:`Cell`, duplicate
    cells collapse (keeping first-seen order) so result dicts keyed by
    cell cannot silently drop work."""
    coerced = [c if isinstance(c, Cell) else Cell(*c) for c in cells]
    return list(dict.fromkeys(coerced))


def _run_cell(payload: tuple) -> tuple:
    """Worker body: run one cell; returns ``(cell, RunResult)``."""
    cell, config, trace_path, metrics_path = payload
    np.random.seed(cell_seed(cell))
    result = run_workload(
        cell.alias, cell.technique, config=cell.config or config,
        num_frames=cell.num_frames,
        exact_signatures=cell.exact_signatures,
        trace_path=trace_path, metrics_path=metrics_path,
    )
    return cell, result


def run_cells(cells: typing.Sequence, config: GpuConfig = None,
              processes: int = None, policy=None, journal_path=None,
              fault_spec=None, workdir=None, trace_path=None,
              metrics_path=None) -> dict:
    """Run every cell, returning ``{cell: RunResult}``.

    ``processes`` > 1 fans cells across a process pool (capped at the
    machine's CPU count); ``None``/``0``/``1`` runs serially in-process.
    Results are keyed by cell regardless of completion order, so callers
    see the same mapping either way.

    ``trace_path`` / ``metrics_path`` record per-run observability
    (:mod:`repro.obs`) for every cell; with more than one cell the
    paths are suffixed per cell, the same scheme the supervisor uses.

    Passing any of ``policy`` (a
    :class:`~repro.harness.supervisor.SupervisorPolicy`),
    ``journal_path`` or ``fault_spec`` runs the cells under the
    fault-tolerant supervisor instead of the bare pool; cells that still
    fail after the policy's retries raise :class:`SupervisionError`
    (successful cells' results are attached to the exception).
    """
    cells = coerce_cells(cells)
    config = config or GpuConfig.benchmark()

    if policy is not None or journal_path is not None or fault_spec is not None:
        from .supervisor import supervise_cells

        supervised = supervise_cells(
            cells, config=config, policy=policy, processes=processes,
            journal_path=journal_path, fault_spec=fault_spec,
            workdir=workdir, trace_path=trace_path,
            metrics_path=metrics_path,
        )
        failed = supervised.failed
        if failed:
            raise SupervisionError(
                "supervised run failed for "
                + ", ".join(sorted(cell_label(c) for c in failed)),
                supervised,
            )
        return supervised.results()

    many = len(cells) > 1
    payloads = [
        (cell, config,
         per_cell_path(trace_path, cell, index, many),
         per_cell_path(metrics_path, cell, index, many))
        for index, cell in enumerate(cells)
    ]
    if processes in (None, 0, 1) or len(cells) <= 1:
        return dict(_run_cell(payload) for payload in payloads)

    import multiprocessing

    # Capped by the cell count only: requesting more workers than cores
    # merely timeslices, and single-core machines can still exercise the
    # pool path.
    workers = min(int(processes), len(cells))
    with multiprocessing.Pool(workers) as pool:
        return dict(pool.map(_run_cell, payloads))


def run_matrix(aliases: typing.Sequence, techniques: typing.Sequence,
               config: GpuConfig = None, num_frames: int = 50,
               processes: int = None, policy=None, journal_path=None,
               fault_spec=None) -> dict:
    """Run the full ``aliases x techniques`` grid; returns a mapping
    ``(alias, technique) -> RunResult``."""
    cells = [
        Cell(alias, technique, num_frames)
        for alias in aliases for technique in techniques
    ]
    results = run_cells(
        cells, config=config, processes=processes, policy=policy,
        journal_path=journal_path, fault_spec=fault_spec,
    )
    return {
        (cell.alias, cell.technique): run for cell, run in results.items()
    }


def merged_totals(results: dict) -> dict:
    """Aggregate stats across a :func:`run_matrix` result, per technique.

    Returns ``{technique: {cells, frames, total_cycles, total_energy_nj,
    fragments_shaded, tiles_skipped, traffic_bytes}}`` — the merged view
    a fleet of workers reports back to the suite.
    """
    merged: dict = {}
    for (_, technique), run in results.items():
        bucket = merged.setdefault(technique, {
            "cells": 0, "frames": 0, "total_cycles": 0,
            "total_energy_nj": 0.0, "fragments_shaded": 0,
            "tiles_skipped": 0, "traffic_bytes": 0,
        })
        bucket["cells"] += 1
        bucket["frames"] += run.num_frames
        bucket["total_cycles"] += run.total_cycles
        bucket["total_energy_nj"] += run.total_energy_nj
        bucket["fragments_shaded"] += run.fragments_shaded
        bucket["tiles_skipped"] += run.tiles_skipped
        bucket["traffic_bytes"] += run.total_traffic_bytes
    return merged
