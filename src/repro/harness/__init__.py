"""Experiment harness: runners, tile classification, quality metrics,
parameter sweeps, reporting."""

from . import charts, images, reporting
from .classify import TileClasses, classify_run, equal_tiles_fraction
from .report import REPORT_ORDER, generate_report
from .quality import FidelityReport, compare_runs, mse, psnr, tile_errors
from .sweeps import SweepPoint, sweep, tabulate
from .timeline import (
    PhaseSummary,
    equal_colors_timeline,
    skip_timeline,
    sparkline,
    summarize_phases,
)
from .runner import (
    TECHNIQUES,
    FrameMetrics,
    RunResult,
    make_technique,
    run_workload,
    tile_color_crcs,
)

__all__ = [
    "charts",
    "images",
    "reporting",
    "REPORT_ORDER",
    "generate_report",
    "TileClasses",
    "classify_run",
    "equal_tiles_fraction",
    "FidelityReport",
    "compare_runs",
    "mse",
    "psnr",
    "tile_errors",
    "SweepPoint",
    "sweep",
    "tabulate",
    "PhaseSummary",
    "equal_colors_timeline",
    "skip_timeline",
    "sparkline",
    "summarize_phases",
    "TECHNIQUES",
    "FrameMetrics",
    "RunResult",
    "make_technique",
    "run_workload",
    "tile_color_crcs",
]
