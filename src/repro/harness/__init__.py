"""Experiment harness: runners, tile classification, quality metrics,
parameter sweeps, fault-tolerant supervision, reporting."""

from . import charts, images, reporting
from .classify import TileClasses, classify_run, equal_tiles_fraction
from .parallel import Cell, cell_label, cell_seed, merged_totals, run_cells, run_matrix
from .report import REPORT_ORDER, generate_report
from .quality import FidelityReport, compare_runs, mse, psnr, tile_errors
from .supervisor import (
    CellOutcome,
    FaultSpec,
    RunJournal,
    SupervisedRun,
    SupervisorPolicy,
    attempt_history,
    supervise_cells,
)
from .sweeps import SweepPoint, sweep, tabulate
from .timeline import (
    PhaseSummary,
    equal_colors_timeline,
    skip_timeline,
    sparkline,
    summarize_phases,
)
from .runner import (
    TECHNIQUES,
    FrameMetrics,
    RunResult,
    make_technique,
    result_from_session,
    run_workload,
    tile_color_crcs,
)

__all__ = [
    "charts",
    "images",
    "reporting",
    "REPORT_ORDER",
    "generate_report",
    "TileClasses",
    "classify_run",
    "equal_tiles_fraction",
    "Cell",
    "cell_label",
    "cell_seed",
    "merged_totals",
    "run_cells",
    "run_matrix",
    "CellOutcome",
    "FaultSpec",
    "RunJournal",
    "SupervisedRun",
    "SupervisorPolicy",
    "attempt_history",
    "supervise_cells",
    "FidelityReport",
    "compare_runs",
    "mse",
    "psnr",
    "tile_errors",
    "SweepPoint",
    "sweep",
    "tabulate",
    "PhaseSummary",
    "equal_colors_timeline",
    "skip_timeline",
    "sparkline",
    "summarize_phases",
    "TECHNIQUES",
    "FrameMetrics",
    "RunResult",
    "make_technique",
    "result_from_session",
    "run_workload",
    "tile_color_crcs",
]
