"""Golden conformance baselines: registry-pinned CRC/skip references.

A *golden* is a registry manifest (``kind="golden"``) plus its per-tile
CRC matrix, recorded for one ``(alias, technique, config, num_frames)``
point.  ``record_goldens`` renders those points and pins them;
``check_goldens`` re-renders and compares bit-for-bit — any drift in
rendered output (a changed CRC anywhere in the frames x tiles matrix)
or in RE's skip counts fails the check with a diff naming the first
divergent frames and tiles.

The committed registry at ``results/goldens`` is the conformance
baseline CI runs against (``tests/workloads/test_conformance.py``);
``repro goldens record`` refreshes it after an intentional output
change.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from ..errors import ReproError
from ..obs.store import RunRegistry
from ..workloads import all_workload_aliases
from .runner import run_workload

__all__ = [
    "GOLDEN_FRAMES",
    "GOLDEN_TECHNIQUES",
    "GoldenCheck",
    "GoldenReport",
    "check_goldens",
    "golden_config",
    "record_goldens",
]

#: Frames per golden run: past RE's warm-up (signature compare distance
#: is 1) and covering a full blink/pulse period of every pack scene's
#: dirty regions, while keeping a 17-alias x 2-technique sweep under
#: ~20 s of pure-Python rendering.
GOLDEN_FRAMES = 8

#: Techniques pinned per alias.  baseline is the reference image;
#: re must match it bit-for-bit (the paper's lossless-ness claim) and
#: additionally pins its skip counts.
GOLDEN_TECHNIQUES = ("baseline", "re")


def golden_config() -> GpuConfig:
    """The scale goldens are recorded at (the tier-1 ``small`` scale)."""
    return GpuConfig.small()


@dataclasses.dataclass
class GoldenCheck:
    """Outcome of checking one (alias, technique) point."""

    alias: str
    technique: str
    status: str  # "ok" | "missing" | "crc-drift" | "skip-drift"
    golden_id: str = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclasses.dataclass
class GoldenReport:
    """All checks of one ``check_goldens`` sweep."""

    checks: list
    config_digest: str
    num_frames: int

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list:
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        lines = [
            f"golden conformance: {len(self.checks)} points "
            f"@ config {self.config_digest} x {self.num_frames} frames",
        ]
        for check in self.checks:
            mark = "ok  " if check.ok else check.status
            line = f"  [{mark}] {check.alias}/{check.technique}"
            if check.detail:
                line += f": {check.detail}"
            lines.append(line)
        return "\n".join(lines)


def _crc_diff_detail(golden, fresh, max_sites: int = 4) -> str:
    """Human-readable first-divergence description of two CRC matrices."""
    golden = np.asarray(golden, dtype=np.uint32)
    fresh = np.asarray(fresh, dtype=np.uint32)
    if golden.shape != fresh.shape:
        return (
            f"matrix shape changed: golden {golden.shape} "
            f"vs fresh {fresh.shape}"
        )
    frames, tiles = np.nonzero(golden != fresh)
    if frames.size == 0:
        return ""
    sites = ", ".join(
        f"frame {f} tile {t} ({g:#010x} -> {n:#010x})"
        for f, t, g, n in zip(
            frames[:max_sites], tiles[:max_sites],
            golden[frames[:max_sites], tiles[:max_sites]],
            fresh[frames[:max_sites], tiles[:max_sites]],
        )
    )
    more = "" if frames.size <= max_sites else f" (+{frames.size - max_sites} more)"
    return (
        f"{frames.size}/{golden.size} tile CRCs diverge across "
        f"{len(set(frames.tolist()))} frames: {sites}{more}"
    )


def _run_points(aliases, config, num_frames, techniques):
    for alias in aliases:
        results = {}
        for technique in techniques:
            results[technique] = run_workload(
                alias, technique, config=config, num_frames=num_frames,
            )
        yield alias, results


def record_goldens(registry: RunRegistry, aliases=None,
                   config: GpuConfig = None, num_frames: int = None,
                   techniques=GOLDEN_TECHNIQUES, progress=None) -> list:
    """Render and pin golden manifests; returns the recorded run ids.

    Before recording anything the baseline-vs-RE CRC matrices are
    cross-checked — a golden refresh can never pin a state where RE is
    not bit-identical to baseline.
    """
    aliases = list(aliases) if aliases else all_workload_aliases()
    config = config or golden_config()
    num_frames = num_frames or GOLDEN_FRAMES
    recorded = []
    for alias, results in _run_points(aliases, config, num_frames,
                                      techniques):
        if "baseline" in results and "re" in results:
            detail = _crc_diff_detail(
                results["baseline"].tile_color_crcs,
                results["re"].tile_color_crcs,
            )
            if detail:
                raise ReproError(
                    f"refusing to record goldens: re is not bit-identical "
                    f"to baseline for {alias!r}: {detail}"
                )
        for technique, result in results.items():
            run_id = registry.record_run(result, kind="golden")
            recorded.append(run_id)
            if progress:
                progress(f"golden {alias}/{technique} -> {run_id}")
    return recorded


def check_goldens(registry: RunRegistry, aliases=None,
                  config: GpuConfig = None, num_frames: int = None,
                  techniques=GOLDEN_TECHNIQUES,
                  progress=None) -> GoldenReport:
    """Re-render every golden point and compare against the registry.

    Each point is checked for (1) a recorded golden existing at this
    exact (alias, technique, config digest, frame count), (2) the fresh
    per-tile CRC matrix matching the pinned one bit-for-bit, and (3)
    for RE, the pinned skip count.  Cross-technique bit-identity
    (baseline vs re) is asserted on the *fresh* results too, so the
    check catches a lossy regression even before goldens are consulted.
    """
    aliases = list(aliases) if aliases else all_workload_aliases()
    config = config or golden_config()
    num_frames = num_frames or GOLDEN_FRAMES
    digest = config.digest()
    checks = []
    for alias, results in _run_points(aliases, config, num_frames,
                                      techniques):
        if "baseline" in results and "re" in results:
            detail = _crc_diff_detail(
                results["baseline"].tile_color_crcs,
                results["re"].tile_color_crcs,
            )
            if detail:
                checks.append(GoldenCheck(
                    alias, "re", "crc-drift",
                    detail=f"re not bit-identical to baseline: {detail}",
                ))
        for technique, result in results.items():
            entry = registry.find_golden(alias, technique, digest,
                                         num_frames)
            if entry is None:
                checks.append(GoldenCheck(
                    alias, technique, "missing",
                    detail=(
                        f"no golden for config {digest} x {num_frames} "
                        f"frames (run `repro goldens record`)"
                    ),
                ))
                continue
            golden_crcs = registry.crcs(entry.run_id)
            if golden_crcs is None:
                checks.append(GoldenCheck(
                    alias, technique, "missing", golden_id=entry.run_id,
                    detail="golden manifest has no CRC matrix",
                ))
                continue
            detail = _crc_diff_detail(golden_crcs, result.tile_color_crcs)
            if detail:
                checks.append(GoldenCheck(
                    alias, technique, "crc-drift", golden_id=entry.run_id,
                    detail=detail,
                ))
                continue
            pinned_skips = (entry.summary or {}).get("tiles_skipped")
            if pinned_skips is not None and \
                    pinned_skips != result.tiles_skipped:
                checks.append(GoldenCheck(
                    alias, technique, "skip-drift", golden_id=entry.run_id,
                    detail=(
                        f"tiles_skipped {result.tiles_skipped} != "
                        f"golden {pinned_skips}"
                    ),
                ))
                continue
            checks.append(GoldenCheck(alias, technique, "ok",
                                      golden_id=entry.run_id))
        if progress:
            progress(f"checked {alias}")
    return GoldenReport(checks, digest, num_frames)
