"""One experiment per paper table and figure.

Every public function regenerates the rows/series of one figure or table
of the paper's evaluation, returning an :class:`ExperimentResult` whose
``rows`` carry the numbers and whose ``table()`` renders them like the
paper presents them.  Runs are cached per (game, technique, config,
frames) so the benchmark files can share one simulation pass.

The paper's absolute numbers came from traced commercial games on the
authors' simulator; this reproduction targets the *shape*: who wins, by
roughly what factor, where the crossovers fall.  EXPERIMENTS.md records
paper-vs-measured for each experiment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

import numpy as np

from ..config import GpuConfig
from ..errors import ReproError
from ..harness import reporting
from ..workloads.games import FIGURE_ORDER, PSEUDO_WORKLOADS, build_scene
from .classify import classify_run, equal_tiles_fraction
from .runner import RunResult, run_workload

#: Display frame rate assumed when converting cycles to wall time for
#: the Fig. 1 power/load calculation.
TARGET_FPS = 30


@dataclasses.dataclass
class ExperimentResult:
    """Output of one experiment: identification plus tabular data."""

    experiment_id: str
    title: str
    headers: list
    rows: list
    notes: str = ""

    def table(self) -> str:
        return reporting.format_table(self.headers, self.rows)

    def row_map(self) -> dict:
        """First column -> row, for the benchmark assertions."""
        return {row[0]: row for row in self.rows}


class RunCache:
    """Memoizes :func:`run_workload` across experiments.

    ``registry`` optionally names a :class:`~repro.obs.store.RunRegistry`
    (or its root directory): every cell the cache simulates is then also
    recorded as a ``kind="figure"`` manifest, so figure regeneration
    leaves a cross-run-diffable record beside its tables.
    """

    def __init__(self, config: GpuConfig = None, num_frames: int = 50,
                 registry=None) -> None:
        self.config = config or GpuConfig.benchmark()
        self.num_frames = num_frames
        self._runs: dict = {}
        if registry is not None and not hasattr(registry, "record_run"):
            from ..obs.store import RunRegistry

            registry = RunRegistry(registry)
        self.registry = registry

    def _key(self, alias: str, technique: str) -> tuple:
        return (alias, technique, self.config.digest(), self.num_frames)

    def _register(self, run: RunResult) -> None:
        if self.registry is None:
            return
        try:
            self.registry.record_run(run, kind="figure")
        except OSError:
            # Best-effort, but never silent: record() already routed the
            # failure through RunRegistry.note_write_error (once-per-path
            # warning + write_errors sidecar for `repro runs`).
            pass
        except ReproError as exc:
            self.registry.note_write_error(exc)

    def run(self, alias: str, technique: str) -> RunResult:
        key = self._key(alias, technique)
        if key not in self._runs:
            self._runs[key] = run_workload(
                alias, technique, config=self.config,
                num_frames=self.num_frames,
            )
            self._register(self._runs[key])
        return self._runs[key]

    def runs(self, technique: str, aliases: typing.Sequence = FIGURE_ORDER):
        return [self.run(alias, technique) for alias in aliases]

    def prefetch(self, techniques: typing.Sequence,
                 aliases: typing.Sequence = FIGURE_ORDER,
                 processes: int = None, policy=None,
                 journal_path=None, fault_spec=None) -> int:
        """Populate the cache for an ``aliases x techniques`` grid,
        optionally fanning the missing cells across a process pool (see
        :mod:`repro.harness.parallel`).  Returns the number of cells
        actually simulated.

        ``policy`` / ``journal_path`` / ``fault_spec`` route the cells
        through the fault-tolerant supervisor
        (:mod:`repro.harness.supervisor`): timed-out or crashed cells
        are retried from their last checkpoint instead of taking the
        whole prefetch down.
        """
        from .parallel import Cell, run_cells

        missing = [
            (alias, technique)
            for alias in aliases for technique in techniques
            if self._key(alias, technique) not in self._runs
        ]
        if not missing:
            return 0
        cells = [
            Cell(alias, technique, self.num_frames)
            for alias, technique in missing
        ]
        results = run_cells(
            cells, config=self.config, processes=processes, policy=policy,
            journal_path=journal_path, fault_spec=fault_spec,
        )
        for cell, run in results.items():
            self._runs[self._key(cell.alias, cell.technique)] = run
            self._register(run)
        return len(missing)


# ----------------------------------------------------------------------
# Motivation and setup
# ----------------------------------------------------------------------

#: Fraction of display refreshes each workload actually redraws.  Games
#: render every vsync; the Android desktop (without animations) only
#: composites when something is damaged, which is why Fig. 1 shows it
#: leaving the GPU mostly idle.
REDRAW_FRACTION = {"desktop": 0.05}


def fig01_power_motivation(cache: RunCache) -> ExperimentResult:
    """Fig. 1: average power and normalized GPU load per application.

    Simulated analog of the Trepn measurements: energy over simulated
    wall time (cycles at the configured clock), with the GPU load the
    fraction of a 30-fps frame budget the GPU is busy.  Each workload's
    energy is scaled by its redraw duty cycle (games redraw every frame;
    the desktop only on damage).
    """
    rows = []
    clock_hz = cache.config.clock_mhz * 1e6
    budget_cycles = clock_hz / TARGET_FPS
    workloads = list(PSEUDO_WORKLOADS[:1]) + list(FIGURE_ORDER) + ["antutu"]
    for alias in workloads:
        run = cache.run(alias, "baseline")
        redraw = REDRAW_FRACTION.get(alias, 1.0)
        cycles_per_frame = run.total_cycles / run.num_frames * redraw
        seconds = run.num_frames / TARGET_FPS
        power_mw = run.total_energy_nj * redraw / seconds * 1e-6
        load = min(1.0, cycles_per_frame / budget_cycles)
        rows.append([alias, power_mw, 100.0 * load])
    return ExperimentResult(
        experiment_id="fig01",
        title="Average power (mW) and normalized GPU load (%)",
        headers=["workload", "avg_power_mw", "gpu_load_pct"],
        rows=rows,
        notes="desktop should be cheapest; games comparable to antutu.",
    )


def fig02_equal_tiles(cache: RunCache) -> ExperimentResult:
    """Fig. 2: % of tiles with the same color as the preceding frame."""
    rows = []
    for alias in FIGURE_ORDER:
        run = cache.run(alias, "re")
        rows.append([alias, 100.0 * equal_tiles_fraction(run, distance=1)])
    values = [row[1] for row in rows]
    rows.append(["AVG", sum(values) / len(values)])
    return ExperimentResult(
        experiment_id="fig02",
        title="Equal-color tiles across consecutive frames (%)",
        headers=["game", "equal_tiles_pct"],
        rows=rows,
    )


def table1_parameters(config: GpuConfig = None) -> ExperimentResult:
    """Table I: the simulated GPU's parameters."""
    config = config or GpuConfig.mali450()
    rows = [
        ["clock", f"{config.clock_mhz} MHz"],
        ["screen", f"{config.screen_width}x{config.screen_height}"],
        ["tile size", f"{config.tile_size}x{config.tile_size}"],
        ["main memory latency",
         f"{config.dram_latency_min_cycles}-{config.dram_latency_max_cycles} cycles"],
        ["main memory bandwidth", f"{config.dram_bytes_per_cycle} bytes/cycle"],
        ["vertex cache", f"{config.vertex_cache.size_bytes // 1024} KB"],
        ["texture caches",
         f"{config.num_texture_caches}x {config.texture_cache.size_bytes // 1024} KB"],
        ["tile cache", f"{config.tile_cache.size_bytes // 1024} KB"],
        ["L2 cache", f"{config.l2_cache.size_bytes // 1024} KB"],
        ["vertex processors", str(config.num_vertex_processors)],
        ["fragment processors", str(config.num_fragment_processors)],
        ["raster throughput",
         f"{config.raster_attributes_per_cycle} attributes/cycle"],
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="GPU simulation parameters",
        headers=["parameter", "value"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Main results (Figs. 14-15)
# ----------------------------------------------------------------------

def fig14a_execution_cycles(cache: RunCache) -> ExperimentResult:
    """Fig. 14a: normalized execution cycles, Base vs RE, split into
    Geometry and Raster pipeline cycles."""
    rows = []
    speedups = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        re = cache.run(alias, "re")
        norm = base.total_cycles
        rows.append([
            alias,
            base.geometry_cycles / norm,
            base.raster_cycles / norm,
            re.geometry_cycles / norm,
            re.raster_cycles / norm,
            base.total_cycles / re.total_cycles,
        ])
        speedups.append(base.total_cycles / re.total_cycles)
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 5)
    ]
    # The paper's "1.74x average" is the reciprocal of the average
    # normalized RE cycles, not the mean of per-game speedups.
    avg_norm_re = avg[3] + avg[4]
    avg.append(1.0 / avg_norm_re if avg_norm_re else 0.0)
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig14a",
        title="Normalized execution cycles (Base vs RE)",
        headers=["game", "base_geom", "base_raster", "re_geom",
                 "re_raster", "speedup"],
        rows=rows,
        notes=f"paper: 1.74x average speedup (1/avg normalized); "
              f"per-game geomean here {reporting.geomean(speedups):.2f}x",
    )


def fig14b_energy(cache: RunCache) -> ExperimentResult:
    """Fig. 14b: normalized energy, Base vs RE, split GPU vs memory."""
    rows = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        re = cache.run(alias, "re")
        norm = base.total_energy_nj
        rows.append([
            alias,
            base.gpu_energy_nj / norm,
            base.dram_energy_nj / norm,
            re.gpu_energy_nj / norm,
            re.dram_energy_nj / norm,
            1.0 - re.total_energy_nj / norm,
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 6)
    ]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig14b",
        title="Normalized energy (Base vs RE), GPU vs main memory",
        headers=["game", "base_gpu", "base_mem", "re_gpu", "re_mem",
                 "energy_saving"],
        rows=rows,
        notes="paper: 43% average energy reduction.",
    )


def fig15a_tile_classes(cache: RunCache) -> ExperimentResult:
    """Fig. 15a: tiles by (color, input) equality across neighbors."""
    rows = []
    for alias in FIGURE_ORDER:
        run = cache.run(alias, "re")
        classes = classify_run(run, distance=1)
        fractions = classes.fractions()
        rows.append([
            alias,
            100.0 * fractions.get("eq_colors_eq_inputs", 0.0),
            100.0 * fractions.get("eq_colors_diff_inputs", 0.0),
            100.0 * fractions.get("diff_colors_diff_inputs", 0.0),
            classes.diff_colors_eq_inputs,   # must be zero
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 4)
    ] + [sum(row[4] for row in rows)]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig15a",
        title="Tile classes across neighboring frames (%)",
        headers=["game", "eq_colors_eq_inputs", "eq_colors_diff_inputs",
                 "diff_colors_diff_inputs", "false_positives"],
        rows=rows,
        notes="paper: 50% / 12% / 38% average; zero false positives.",
    )


def fig15b_memory_traffic(cache: RunCache) -> ExperimentResult:
    """Fig. 15b: Raster Pipeline DRAM traffic normalized to baseline,
    split into primitive reads, texel fetches and color flushes."""
    rows = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        re = cache.run(alias, "re")
        norm = max(1, base.traffic_bytes("primitives")
                   + base.traffic_bytes("texels")
                   + base.traffic_bytes("colors"))
        rows.append([
            alias,
            re.traffic_bytes("colors") / norm,
            re.traffic_bytes("texels") / norm,
            re.traffic_bytes("primitives") / norm,
            (re.traffic_bytes("colors") + re.traffic_bytes("texels")
             + re.traffic_bytes("primitives")) / norm,
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 5)
    ]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig15b",
        title="RE raster-pipeline DRAM traffic normalized to baseline",
        headers=["game", "colors", "texels", "primitives", "total"],
        rows=rows,
        notes="paper: 48% average traffic reduction (total ~0.52).",
    )


# ----------------------------------------------------------------------
# Comparisons (Figs. 16-17)
# ----------------------------------------------------------------------

def fig16_memoization(cache: RunCache) -> ExperimentResult:
    """Fig. 16: fragments shaded under RE and under PFR-aided Fragment
    Memoization, normalized to the baseline."""
    rows = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        re = cache.run(alias, "re")
        memo = cache.run(alias, "memo")
        norm = max(1, base.fragments_shaded)
        rows.append([
            alias,
            re.fragments_shaded / norm,
            memo.fragments_shaded / norm,
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 3)
    ]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig16",
        title="Fragments shaded, normalized to baseline",
        headers=["game", "re", "memo"],
        rows=rows,
        notes="paper: RE reuses ~2x more than memoization except hop.",
    )


def fig17a_te_cycles(cache: RunCache) -> ExperimentResult:
    """Fig. 17a: normalized cycles, TE vs RE."""
    rows = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        te = cache.run(alias, "te")
        re = cache.run(alias, "re")
        norm = base.total_cycles
        rows.append([
            alias, te.total_cycles / norm, re.total_cycles / norm,
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 3)
    ]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig17a",
        title="Normalized execution cycles (TE vs RE)",
        headers=["game", "te", "re"],
        rows=rows,
        notes="paper: TE barely improves cycles; RE averages 0.58.",
    )


def fig17b_te_energy(cache: RunCache) -> ExperimentResult:
    """Fig. 17b: normalized energy, TE vs RE."""
    rows = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        te = cache.run(alias, "te")
        re = cache.run(alias, "re")
        norm = base.total_energy_nj
        rows.append([
            alias, te.total_energy_nj / norm, re.total_energy_nj / norm,
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 3)
    ]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="fig17b",
        title="Normalized energy (TE vs RE)",
        headers=["game", "te", "re"],
        rows=rows,
        notes="paper: TE saves ~9% energy on average, RE ~43%.",
    )


# ----------------------------------------------------------------------
# Section V text experiments
# ----------------------------------------------------------------------

def re_overheads(cache: RunCache) -> ExperimentResult:
    """Section V text: RE's geometry-cycle overhead (paper: 0.64%
    additional geometry cycles on average) and its energy overhead
    (paper: <0.5% of total)."""
    rows = []
    for alias in FIGURE_ORDER:
        base = cache.run(alias, "baseline")
        re = cache.run(alias, "re")
        geom_overhead = sum(f.geometry_overhead_cycles for f in re.frames)
        compare_overhead = sum(f.raster_overhead_cycles for f in re.frames)
        technique_energy = sum(f.energy.technique_nj for f in re.frames)
        rows.append([
            alias,
            100.0 * geom_overhead / max(1.0, base.geometry_cycles),
            100.0 * compare_overhead / max(1.0, base.raster_cycles),
            100.0 * technique_energy / max(1.0, base.total_energy_nj),
        ])
    avg = ["AVG"] + [
        sum(row[i] for row in rows) / len(rows) for i in range(1, 4)
    ]
    rows.append(avg)
    return ExperimentResult(
        experiment_id="re_overheads",
        title="RE overheads relative to baseline (%)",
        headers=["game", "geometry_stall_pct", "compare_pct",
                 "energy_overhead_pct"],
        rows=rows,
        notes="paper: 0.64% geometry overhead, <0.5% energy overhead.",
    )


def hash_quality(config: GpuConfig = None, num_frames: int = 12,
                 aliases: typing.Sequence = None) -> ExperimentResult:
    """Section V text: CRC32 versus weaker XOR-family hashes.

    Builds every tile's actual input message per frame (geometry-only
    replay) and counts, for each hash scheme, false positives — pairs of
    consecutive-frame tiles whose hashes match while the underlying
    bytes differ (verified against a 128-bit reference digest).  A false
    positive would make RE reuse a stale tile.
    """
    from ..hashing import XOR_SCHEMES, crc32_table
    config = config or GpuConfig.benchmark()
    aliases = aliases or FIGURE_ORDER
    schemes = dict(XOR_SCHEMES)
    schemes["crc32"] = crc32_table

    false_positives = {name: 0 for name in schemes}
    matches = {name: 0 for name in schemes}
    comparisons = 0

    for alias in aliases:
        digests = _tile_message_digests(alias, config, num_frames, schemes)
        strong = digests.pop("_strong")
        for name, values in digests.items():
            same_hash = values[1:] == values[:-1]
            same_bytes = strong[1:] == strong[:-1]
            matches[name] += int(same_hash.sum())
            false_positives[name] += int((same_hash & ~same_bytes).sum())
        comparisons += strong[1:].size

    rows = [
        [name, matches[name], false_positives[name]]
        for name in sorted(schemes)
    ]
    return ExperimentResult(
        experiment_id="hash_quality",
        title=f"Hash quality over {comparisons} tile comparisons",
        headers=["scheme", "matches", "false_positives"],
        rows=rows,
        notes="paper: zero CRC32 false positives observed.",
    )


def _tile_message_digests(alias: str, config: GpuConfig, num_frames: int,
                          schemes: dict) -> dict:
    """Per-frame per-tile hashes of the true tile input messages, plus a
    128-bit reference digest under key ``_strong``."""
    from ..memory.dram import Dram
    from ..pipeline.command_processor import CommandProcessor
    from ..pipeline.primitive_assembly import PrimitiveAssembly
    from ..pipeline.tiling import PolygonListBuilder
    from ..pipeline.vertex_stage import VertexStage
    from ..memory.cache import Cache

    scene = build_scene(alias)
    results = {name: np.zeros((num_frames, config.num_tiles), dtype=np.uint64)
               for name in schemes}
    strong = np.zeros((num_frames, config.num_tiles), dtype=np.uint64)

    for frame_index, stream in enumerate(scene.frames(num_frames)):
        messages = [bytearray() for _ in range(config.num_tiles)]

        class Collector:
            """Replays the Signature Unit's framing, storing raw bytes."""

            def __init__(self):
                self._constants = b""
                self._version = None
                self._seen = np.zeros(config.num_tiles, dtype=bool)

            def on_draw_state(self, state):
                if state.constants_version != self._version:
                    self._version = state.constants_version
                    self._constants = state.constants_bytes()
                    self._seen[:] = False

            def on_primitive(self, prim, tile_ids):
                block = prim.attribute_bytes()
                for tile_id in tile_ids:
                    if not self._seen[tile_id]:
                        messages[tile_id] += self._constants
                        self._seen[tile_id] = True
                    messages[tile_id] += block

            def on_geometry_complete(self):
                pass

        dram = Dram(config)
        collector = Collector()
        processor = CommandProcessor()
        vertex = VertexStage(Cache(config.vertex_cache), dram)
        assembly = PrimitiveAssembly(config.screen_width, config.screen_height)
        plb = PolygonListBuilder(config, dram, listeners=(collector,))
        for invocation in processor.process(stream):
            shaded = vertex.run(invocation)
            plb.bin_drawcall(
                invocation.state, assembly.assemble(invocation, shaded)
            )

        for tile_id, message in enumerate(messages):
            data = bytes(message)
            digest = hashlib.md5(data).digest()
            strong[frame_index, tile_id] = int.from_bytes(digest[:8], "big")
            for name, fn in schemes.items():
                results[name][frame_index, tile_id] = fn(data)

    results["_strong"] = strong
    return results


#: Registry mapping experiment ids to their functions (DESIGN.md index).
EXPERIMENTS = {
    "fig01": fig01_power_motivation,
    "fig02": fig02_equal_tiles,
    "fig14a": fig14a_execution_cycles,
    "fig14b": fig14b_energy,
    "fig15a": fig15a_tile_classes,
    "fig15b": fig15b_memory_traffic,
    "fig16": fig16_memoization,
    "fig17a": fig17a_te_cycles,
    "fig17b": fig17b_te_energy,
    "re_overheads": re_overheads,
}

#: Techniques each experiment pulls from the run cache.  The CLI uses
#: this to prefetch an experiment's cells in parallel before the
#: (serial) tabulation; the render service uses it to expand an
#: ``experiment`` job into its per-(game, technique) render jobs.
EXPERIMENT_TECHNIQUES = {
    "fig01": ("baseline",),
    "fig02": ("re",),
    "fig14a": ("baseline", "re"),
    "fig14b": ("baseline", "re"),
    "fig15a": ("re",),
    "fig15b": ("baseline", "re"),
    "fig16": ("baseline", "re", "memo"),
    "fig17a": ("baseline", "te", "re"),
    "fig17b": ("baseline", "te", "re"),
    "re_overheads": ("baseline", "re"),
}
