"""Image file I/O: save rendered frames as PPM (no external deps).

PPM (P6) is the simplest portable raster format; every image viewer
opens it.  Used by the examples to dump frames for visual inspection
and by tests to round-trip rendered output.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def to_rgb8(image: np.ndarray) -> np.ndarray:
    """Float [0,1] RGBA/RGB image to uint8 RGB."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] not in (3, 4):
        raise ReproError(
            f"expected an (h, w, 3|4) image, got shape {image.shape}"
        )
    rgb = np.clip(image[..., :3].astype(np.float64), 0.0, 1.0)
    return (rgb * 255.0 + 0.5).astype(np.uint8)


def save_ppm(path, image: np.ndarray) -> None:
    """Write a float [0,1] RGBA/RGB image to a binary PPM file."""
    rgb = to_rgb8(image)
    height, width = rgb.shape[:2]
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(rgb.tobytes())


def load_ppm(path) -> np.ndarray:
    """Read a binary PPM back into a float [0,1] RGB array."""
    with open(path, "rb") as handle:
        data = handle.read()
    # Parse the three header tokens (magic, dims, maxval), allowing
    # arbitrary whitespace, then the raw pixel block.
    if not data.startswith(b"P6"):
        raise ReproError(f"{path}: not a binary PPM (P6) file")
    tokens = []
    index = 2
    while len(tokens) < 3:
        while index < len(data) and data[index:index + 1].isspace():
            index += 1
        if index < len(data) and data[index:index + 1] == b"#":
            while index < len(data) and data[index] != 0x0A:
                index += 1
            continue
        start = index
        while index < len(data) and not data[index:index + 1].isspace():
            index += 1
        tokens.append(data[start:index])
    index += 1  # single whitespace after maxval
    try:
        width, height, maxval = (int(t) for t in tokens)
    except ValueError as exc:
        raise ReproError(f"{path}: malformed PPM header") from exc
    if maxval != 255:
        raise ReproError(f"{path}: only maxval 255 supported")
    pixels = np.frombuffer(
        data, dtype=np.uint8, count=width * height * 3, offset=index
    )
    return (pixels.reshape(height, width, 3).astype(np.float32) / 255.0)
