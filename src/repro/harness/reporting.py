"""Plain-text tables matching the paper's rows and series.

The experiment functions produce numeric rows; this module renders them
the way the paper's figures present them (games in figure order, AVG
column, values normalized to the baseline) so EXPERIMENTS.md can record
paper-vs-measured side by side.
"""

from __future__ import annotations

import typing


def format_table(headers: typing.Sequence, rows: typing.Sequence,
                 float_format: str = "{:.3f}") -> str:
    """Align a list of rows (mixed str/number cells) under headers."""
    def render(cell):
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def with_average(values: typing.Sequence) -> list:
    """Append the arithmetic mean (the paper's AVG bar)."""
    values = list(values)
    avg = sum(values) / len(values) if values else 0.0
    return values + [avg]


def normalized(values: typing.Sequence, baseline: typing.Sequence) -> list:
    """Element-wise normalization to a baseline series."""
    return [
        v / b if b else 0.0 for v, b in zip(values, baseline)
    ]


def geomean(values: typing.Sequence) -> float:
    product = 1.0
    count = 0
    for value in values:
        if value > 0:
            product *= value
            count += 1
    return product ** (1.0 / count) if count else 0.0
