"""Run workloads under techniques and collect per-frame metrics.

This is the experiment driver the paper's evaluation flows through: it
renders N frames of a benchmark on a fresh simulated GPU with a chosen
technique, converts activity to cycles and energy, and records per-tile
color checksums (and input signatures for RE runs) so the tile-level
analyses of Figs. 2 and 15a are *measured* from rendered output.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from ..config import GpuConfig
from ..core import RenderingElimination
from ..errors import ReproError
from ..pipeline import Gpu
from ..power import EnergyBreakdown, EnergyModel, technique_event_counts
from ..techniques import (
    CombinedElimination,
    FragmentMemoization,
    Technique,
    TransactionElimination,
)
from ..timing import CycleBreakdown, TimingModel
from ..workloads.games import build_scene

#: Technique registry keyed by the names used throughout the benchmarks.
TECHNIQUES = ("baseline", "re", "te", "memo", "re+te")


def make_technique(name: str, config: GpuConfig):
    """Instantiate a technique by registry name."""
    if name == "baseline":
        return Technique()
    if name == "re":
        return RenderingElimination(config)
    if name == "te":
        return TransactionElimination(config)
    if name == "memo":
        return FragmentMemoization(config)
    if name == "re+te":
        return CombinedElimination(config)
    raise ReproError(f"unknown technique {name!r}; choose from {TECHNIQUES}")


@dataclasses.dataclass
class FrameMetrics:
    """Per-frame digest of a rendered frame."""

    cycles: CycleBreakdown
    energy: EnergyBreakdown
    tiles_skipped: int
    flushes_suppressed: int
    fragments_rasterized: int
    fragments_shaded: int
    fragments_memoized: int
    traffic: dict
    geometry_overhead_cycles: int
    raster_overhead_cycles: int


@dataclasses.dataclass
class RunResult:
    """A complete benchmark run: one game, one technique."""

    alias: str
    technique: str
    config: GpuConfig
    num_frames: int
    frames: list
    tile_color_crcs: np.ndarray            # (frames, tiles) uint32
    tile_input_sigs: np.ndarray = None     # (frames, tiles) uint32, RE only
    final_frame_crc: int = 0
    technique_stats: object = None

    # Aggregates ----------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(f.cycles.total_cycles for f in self.frames)

    @property
    def geometry_cycles(self) -> float:
        return sum(f.cycles.geometry_cycles for f in self.frames)

    @property
    def raster_cycles(self) -> float:
        return sum(f.cycles.raster_cycles for f in self.frames)

    @property
    def total_energy_nj(self) -> float:
        return sum(f.energy.total_nj for f in self.frames)

    @property
    def gpu_energy_nj(self) -> float:
        return sum(f.energy.gpu_nj for f in self.frames)

    @property
    def dram_energy_nj(self) -> float:
        return sum(f.energy.dram_nj for f in self.frames)

    @property
    def fragments_shaded(self) -> int:
        return sum(f.fragments_shaded for f in self.frames)

    @property
    def fragments_rasterized(self) -> int:
        return sum(f.fragments_rasterized for f in self.frames)

    @property
    def tiles_skipped(self) -> int:
        return sum(f.tiles_skipped for f in self.frames)

    def traffic_bytes(self, stream: str) -> int:
        return sum(f.traffic.get(stream, 0) for f in self.frames)

    @property
    def total_traffic_bytes(self) -> int:
        return sum(sum(f.traffic.values()) for f in self.frames)

    def skipped_fraction(self, warmup: int = 2) -> float:
        """Fraction of tiles skipped, ignoring the warm-up frames that
        cannot match (no reference bank yet)."""
        frames = self.frames[warmup:]
        if not frames:
            return 0.0
        total = len(frames) * self.config.num_tiles
        return sum(f.tiles_skipped for f in frames) / total


def tile_color_crcs(config: GpuConfig, frame_colors: np.ndarray,
                    tile_rect) -> np.ndarray:
    """Per-tile CRC32 of a frame's RGBA8-quantized colors."""
    quantized = (np.clip(frame_colors, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    crcs = np.empty(config.num_tiles, dtype=np.uint32)
    for tile_id in range(config.num_tiles):
        x0, y0, x1, y1 = tile_rect(tile_id)
        crcs[tile_id] = zlib.crc32(
            np.ascontiguousarray(quantized[y0:y1, x0:x1]).tobytes()
        )
    return crcs


def run_workload(alias: str, technique: str = "baseline",
                 config: GpuConfig = None, num_frames: int = 50,
                 exact_signatures: bool = False, perf=None) -> RunResult:
    """Render ``num_frames`` of a benchmark under a technique.

    ``perf`` may be a :class:`repro.perf.PerfRecorder`; it then receives
    per-stage wall-clock and event counts for every frame rendered.
    """
    config = config or GpuConfig.benchmark()
    scene = build_scene(alias)
    tech = make_technique(technique, config)
    if technique == "re" and exact_signatures:
        tech = RenderingElimination(config, exact=True)
    gpu = Gpu(config, tech)
    gpu.perf = perf
    timing = TimingModel(config)
    energy_model = EnergyModel(config)

    frames = []
    color_crcs = np.empty((num_frames, config.num_tiles), dtype=np.uint32)
    input_sigs = (
        np.empty((num_frames, config.num_tiles), dtype=np.uint32)
        if hasattr(tech, "current_signatures") else None
    )
    events_before = technique_event_counts(tech)
    final_crc = 0

    for index, stream in enumerate(scene.frames(num_frames)):
        stats = gpu.render_frame(stream, clear_color=scene.clear_color)
        cycles = timing.frame_cycles(stats)
        events_after = technique_event_counts(tech)
        frame_events = {
            key: events_after.get(key, 0) - events_before.get(key, 0)
            for key in events_after
        }
        events_before = events_after
        energy = energy_model.frame_energy(stats, cycles, frame_events)

        frames.append(FrameMetrics(
            cycles=cycles,
            energy=energy,
            tiles_skipped=stats.raster.tiles_skipped,
            flushes_suppressed=stats.raster.flushes_suppressed,
            fragments_rasterized=stats.raster.fragments_rasterized,
            fragments_shaded=stats.fragment.fragments_shaded,
            fragments_memoized=stats.fragment.fragments_memoized,
            traffic=dict(stats.traffic),
            geometry_overhead_cycles=stats.technique_geometry_stall_cycles,
            raster_overhead_cycles=stats.technique_raster_overhead_cycles,
        ))
        color_crcs[index] = tile_color_crcs(
            config, stats.frame_colors, gpu.framebuffer.tile_rect
        )
        if input_sigs is not None:
            input_sigs[index] = tech.current_signatures()
        final_crc = zlib.crc32(stats.frame_colors.tobytes())

    return RunResult(
        alias=alias,
        technique=technique,
        config=config,
        num_frames=num_frames,
        frames=frames,
        tile_color_crcs=color_crcs,
        tile_input_sigs=input_sigs,
        final_frame_crc=final_crc,
        technique_stats=getattr(tech, "stats", None),
    )
