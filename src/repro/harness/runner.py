"""Run workloads under techniques and collect per-frame metrics.

This is the experiment driver the paper's evaluation flows through: it
renders N frames of a benchmark on a simulated GPU with a chosen
technique, converts activity to cycles and energy, and records per-tile
color checksums (and input signatures for RE runs) so the tile-level
analyses of Figs. 2 and 15a are *measured* from rendered output.

The heavy lifting lives in :class:`repro.engine.session.RenderSession`;
this module drives it, adds checkpoint/resume plumbing and the JSON run
manifest, and packages the outcome as a :class:`RunResult`.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from ..config import GpuConfig
from ..engine.factory import TECHNIQUES, make_technique
from ..engine.session import FrameMetrics, RenderSession, tile_color_crcs
from ..pipeline.kernels import backend_record

__all__ = [
    "TECHNIQUES",
    "FrameMetrics",
    "RunResult",
    "make_technique",
    "result_from_session",
    "run_workload",
    "tile_color_crcs",
]


@dataclasses.dataclass
class RunResult:
    """A complete benchmark run: one game, one technique."""

    alias: str
    technique: str
    config: GpuConfig
    num_frames: int
    frames: list
    tile_color_crcs: np.ndarray            # (frames, tiles) uint32
    tile_input_sigs: np.ndarray = None     # (frames, tiles) uint32, RE only
    final_frame_crc: int = 0
    technique_stats: object = None
    #: End-of-run cumulative value of every StatsRegistry counter
    #: (``"raster.tiles_skipped"``...), the cross-run diffable view the
    #: registry manifests record; ``None`` on results rebuilt from
    #: sources that never sampled the registry.
    counters: dict = None
    #: Frames that cannot match a reference signature: the Signature
    #: Buffer needs ``compare_distance`` complete banks of history before
    #: its first valid comparison, so that many leading frames always
    #: render in full.
    warmup_frames: int = 2

    # Aggregates ----------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(f.cycles.total_cycles for f in self.frames)

    @property
    def geometry_cycles(self) -> float:
        return sum(f.cycles.geometry_cycles for f in self.frames)

    @property
    def raster_cycles(self) -> float:
        return sum(f.cycles.raster_cycles for f in self.frames)

    @property
    def total_energy_nj(self) -> float:
        return sum(f.energy.total_nj for f in self.frames)

    @property
    def gpu_energy_nj(self) -> float:
        return sum(f.energy.gpu_nj for f in self.frames)

    @property
    def dram_energy_nj(self) -> float:
        return sum(f.energy.dram_nj for f in self.frames)

    @property
    def fragments_shaded(self) -> int:
        return sum(f.fragments_shaded for f in self.frames)

    @property
    def fragments_rasterized(self) -> int:
        return sum(f.fragments_rasterized for f in self.frames)

    @property
    def tiles_skipped(self) -> int:
        return sum(f.tiles_skipped for f in self.frames)

    def traffic_bytes(self, stream: str) -> int:
        return sum(f.traffic.get(stream, 0) for f in self.frames)

    @property
    def total_traffic_bytes(self) -> int:
        return sum(sum(f.traffic.values()) for f in self.frames)

    def skipped_fraction(self, warmup: int = None) -> float:
        """Fraction of tiles skipped, ignoring the warm-up frames that
        cannot match (no reference bank yet).  ``warmup`` defaults to
        :attr:`warmup_frames`, which the harness derives from the
        configured signature compare distance."""
        if warmup is None:
            warmup = self.warmup_frames
        frames = self.frames[warmup:]
        if not frames:
            return 0.0
        total = len(frames) * self.config.num_tiles
        return sum(f.tiles_skipped for f in frames) / total


def _write_manifest(path, session: RenderSession, result: RunResult,
                    resumed_at: int, checkpoint_path) -> None:
    """JSON run manifest: what ran, from where, and the headline numbers."""
    manifest = {
        "alias": session.alias,
        "technique": session.technique_name,
        "num_frames": session.num_frames,
        "frames_rendered_this_run": session.num_frames - resumed_at,
        "resumed_from_frame": resumed_at if resumed_at else None,
        "checkpoint_path": str(checkpoint_path) if checkpoint_path else None,
        "exact_signatures": session.exact_signatures,
        "warmup_frames": result.warmup_frames,
        "final_frame_crc": result.final_frame_crc,
        "total_cycles": result.total_cycles,
        "total_energy_nj": result.total_energy_nj,
        "total_traffic_bytes": result.total_traffic_bytes,
        "tiles_skipped": result.tiles_skipped,
        "skipped_fraction": result.skipped_fraction(),
        "config": session.config.to_dict(),
        "raster_backend": backend_record(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def result_from_session(session: RenderSession) -> RunResult:
    """Package a completed :class:`RenderSession` as a :class:`RunResult`.

    Shared by :func:`run_workload` and the supervised cell runner in
    :mod:`repro.harness.supervisor`, so both produce field-identical
    results for the same session state.
    """
    return RunResult(
        alias=session.alias,
        technique=session.technique_name,
        config=session.config,
        num_frames=session.num_frames,
        frames=session.frames,
        tile_color_crcs=session.color_crcs,
        tile_input_sigs=session.input_sigs,
        final_frame_crc=session.final_frame_crc,
        technique_stats=getattr(session.technique, "stats", None),
        counters=dict(session.gpu.stats_registry.snapshot()),
        warmup_frames=session.config.signature_compare_distance,
    )


def run_workload(alias: str, technique: str = "baseline",
                 config: GpuConfig = None, num_frames: int = 50,
                 exact_signatures: bool = False, perf=None,
                 resume_from=None, checkpoint_at: int = None,
                 checkpoint_path=None, manifest_path=None,
                 trace_path=None, metrics_path=None,
                 live=None) -> RunResult:
    """Render ``num_frames`` of a benchmark under a technique.

    ``perf`` may be a :class:`repro.perf.PerfRecorder`; it then receives
    per-stage wall-clock and event counts for every frame rendered.

    Observability (:mod:`repro.obs`):

    * ``trace_path`` — record span/instant events for every frame and
      write Chrome trace-event JSON there (Perfetto-loadable).  The
      trace is written even if the run raises, so a failed run still
      leaves its timeline behind.
    * ``metrics_path`` — sample every registry counter at each frame
      boundary into a JSONL per-frame metrics log there (the input to
      ``python -m repro report``).
    * ``live`` — a :class:`~repro.obs.live.LiveSink` receiving a
      per-frame progress callback (see :mod:`repro.obs.live`); falsy
      sinks cost one truthiness check per frame.

    Checkpoint/resume:

    * ``resume_from`` — path to (or state dict of) a checkpoint written
      by an earlier run; the session continues from the frame after the
      checkpoint and the combined result is bit-identical to an
      uninterrupted run.
    * ``checkpoint_at`` — write a checkpoint to ``checkpoint_path``
      after that many frames, then keep rendering to completion.
    * ``manifest_path`` — write a JSON manifest describing the run.
    """
    tracer = metrics = None
    if trace_path is not None or metrics_path is not None:
        from ..obs import MetricsLog, TraceRecorder

        if trace_path is not None:
            tracer = TraceRecorder()
        if metrics_path is not None:
            metrics = MetricsLog(metrics_path)

    if resume_from is not None:
        session = RenderSession.from_checkpoint(
            resume_from, config=config, perf=perf,
            tracer=tracer, metrics=metrics, live=live,
        )
        resumed_at = session.frames_rendered
    else:
        session = RenderSession(
            alias, technique=technique, config=config,
            num_frames=num_frames, exact_signatures=exact_signatures,
            perf=perf, tracer=tracer, metrics=metrics, live=live,
        )
        resumed_at = 0

    try:
        if checkpoint_at is not None:
            session.run(until=checkpoint_at)
            if checkpoint_path is None:
                raise ValueError("checkpoint_at requires checkpoint_path")
            session.save(checkpoint_path)
        session.run()
    finally:
        if tracer is not None:
            tracer.close_open_spans()
            tracer.write(trace_path)
        if metrics is not None:
            metrics.close()
        if live:
            live.finish(ok=session.frames_rendered >= session.num_frames)

    result = result_from_session(session)
    if manifest_path is not None:
        _write_manifest(
            manifest_path, session, result, resumed_at, checkpoint_path
        )
    return result
