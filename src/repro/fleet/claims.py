"""The fleet claim/lease protocol over plain atomic filesystem ops.

Workers share nothing but a directory, so every coordination primitive
reduces to a POSIX guarantee:

* **Claim** — ``O_CREAT|O_EXCL`` on ``claims/<point_id>.json``.  The
  kernel picks exactly one winner among racing creators.
* **Renew** — the owner rewrites its claim via tmp + ``os.replace``.
  Readers only ever see a complete record.
* **Steal** — an *expired* claim is removed with a single-winner
  ``os.rename`` into ``reaped/`` (concurrent renames of the same
  source: one succeeds, the rest get ``FileNotFoundError``), after
  which the point is claimable again.  The reaped record is kept for
  forensics, suffixed with the reap time so repeated reaps of the same
  point never collide.
* **Done** — ``O_CREAT|O_EXCL`` on ``done/<point_id>.json``.  Even if
  a lease expired mid-execute and two workers finished the same point,
  exactly one done record exists; the loser discards its result (which
  is harmless — execution is deterministic and the registry
  content-addresses manifests, so duplicated work dedupes anyway).

The lease state machine: ``unclaimed -> claimed -> (renewed)* ->
done`` on the happy path; ``claimed -> expired -> reaped ->
unclaimed`` when a worker dies or wedges.  Expiry compares the
*owner's* promised ``expires_at`` against the *observer's* clock — see
the clock-skew row of the failure matrix in DESIGN §13.

Heartbeats are separate from claims: each worker appends monotone-seq
records to its own ``hb/<worker>.jsonl`` (``O_APPEND``, one write per
record — lines never tear), and the coordinator tails every file.
"""

from __future__ import annotations

import json
import os
import time

from ..errors import FleetError
from ..obs.store import (
    append_jsonl_atomic,
    claim_record,
    done_record,
    heartbeat_record,
)
from .points import fleet_root

__all__ = ["ClaimStore", "HeartbeatLog", "tail_heartbeats"]


def _read_json(path):
    """Best-effort JSON read returning ``None`` for missing files and
    mid-replace torn reads (the caller retries on its next pass)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


class ClaimStore:
    """One worker's (or coordinator's) view of a fleet's claim state.

    ``clock`` is wall-clock (:func:`time.time`); it only ever feeds
    lease arithmetic, never ordering decisions — ordering comes from
    the filesystem primitives.
    """

    def __init__(self, registry_root, fleet_id: str,
                 clock=time.time) -> None:
        self.fleet_id = fleet_id
        self.root = fleet_root(registry_root, fleet_id)
        self.claims_dir = os.path.join(self.root, "claims")
        self.done_dir = os.path.join(self.root, "done")
        self.reaped_dir = os.path.join(self.root, "reaped")
        self._clock = clock
        for path in (self.claims_dir, self.done_dir, self.reaped_dir):
            os.makedirs(path, exist_ok=True)

    # Paths --------------------------------------------------------------
    def claim_path(self, point_id: str) -> str:
        return os.path.join(self.claims_dir, f"{point_id}.json")

    def done_path(self, point_id: str) -> str:
        return os.path.join(self.done_dir, f"{point_id}.json")

    # Claim / renew / release -------------------------------------------
    def try_claim(self, point_id: str, worker: str,
                  lease_s: float) -> dict:
        """Atomically claim a point; ``None`` if someone else holds it
        (or it is already done).  The single-winner guarantee is the
        kernel's ``O_EXCL``."""
        if self.is_done(point_id):
            return None
        record = claim_record(point_id, self.fleet_id, worker, lease_s,
                              clock=self._clock)
        payload = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            fd = os.open(self.claim_path(point_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
        except FileExistsError:
            return None
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return record

    def renew(self, point_id: str, worker: str, lease_s: float) -> dict:
        """Extend a lease the caller owns; raises :class:`FleetError`
        if the claim vanished or changed hands (the lease expired and
        was stolen mid-execute — the worker must stop, its point now
        belongs to someone else)."""
        path = self.claim_path(point_id)
        current = _read_json(path)
        if current is None or current.get("worker") != worker:
            holder = current.get("worker") if current else None
            raise FleetError(
                f"lease lost for point {point_id}: held by "
                f"{holder!r}, not {worker!r} — it expired and was reaped"
            )
        record = claim_record(
            point_id, self.fleet_id, worker, lease_s,
            renewals=int(current.get("renewals", 0)) + 1,
            clock=self._clock,
        )
        record["claimed_at"] = current.get("claimed_at",
                                           record["claimed_at"])
        tmp = f"{path}.{worker}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return record

    def release(self, point_id: str, worker: str) -> bool:
        """Drop a claim the caller owns (after its done record exists).
        Returns whether anything was removed."""
        path = self.claim_path(point_id)
        current = _read_json(path)
        if current is None or current.get("worker") != worker:
            return False
        try:
            os.remove(path)
        except FileNotFoundError:
            return False
        return True

    # Done ---------------------------------------------------------------
    def mark_done(self, point_id: str, worker: str, summary: dict = None,
                  run_id: str = None, state: str = "done",
                  error: str = None, execute_s: float = None) -> bool:
        """Write the exactly-once terminal record.  Returns ``True`` for
        the winner; ``False`` means another worker already finished this
        point (duplicate execution after a lease steal — discard)."""
        record = done_record(
            point_id, self.fleet_id, worker, summary=summary,
            run_id=run_id, state=state, error=error,
            execute_s=execute_s, clock=self._clock,
        )
        payload = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            fd = os.open(self.done_path(point_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return True

    def amend_done(self, point_id: str, worker: str, **fields) -> bool:
        """Owner-only update of an existing done record (the manifest
        ``run_id`` is recorded *after* winning :meth:`mark_done`, so the
        record is first written without it)."""
        path = self.done_path(point_id)
        current = _read_json(path)
        if current is None or current.get("worker") != worker:
            return False
        current.update(fields)
        tmp = f"{path}.{worker}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(current, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return True

    def is_done(self, point_id: str) -> bool:
        return os.path.exists(self.done_path(point_id))

    def done_ids(self) -> set:
        return {
            name[:-len(".json")] for name in os.listdir(self.done_dir)
            if name.endswith(".json")
        }

    def done_records(self) -> dict:
        """point_id -> done record, skipping torn/partial files."""
        records = {}
        for pid in self.done_ids():
            record = _read_json(self.done_path(pid))
            if record is not None:
                records[pid] = record
        return records

    # Observation / reaping ---------------------------------------------
    def claims(self) -> dict:
        """point_id -> live claim record (snapshot; racy by nature)."""
        records = {}
        for name in os.listdir(self.claims_dir):
            if not name.endswith(".json") or name.endswith(".tmp"):
                continue
            record = _read_json(os.path.join(self.claims_dir, name))
            if record is not None:
                records[name[:-len(".json")]] = record
        return records

    def expired(self, now: float = None) -> list:
        """Claim records whose lease has lapsed by *our* clock."""
        now = self._clock() if now is None else now
        return [
            record for record in self.claims().values()
            if record.get("expires_at", 0) <= now
        ]

    def reap(self, point_id: str) -> bool:
        """Steal one expired claim: single-winner rename into
        ``reaped/``.  Returns whether *we* won the steal (the point is
        then unclaimed; losers saw ``FileNotFoundError``)."""
        src = self.claim_path(point_id)
        # Suffix with our pid + a counter-free timestamp: repeated reaps
        # of the same point across the fleet's life must not collide.
        dst = os.path.join(
            self.reaped_dir,
            f"{point_id}.{os.getpid()}.{self._clock():.6f}.json",
        )
        try:
            os.rename(src, dst)
        except FileNotFoundError:
            return False
        return True

    def reap_expired(self, now: float = None) -> list:
        """Reap every expired claim; returns the point ids we stole."""
        stolen = []
        for record in self.expired(now):
            pid = record["point_id"]
            if self.is_done(pid):
                # Terminal already — the claim is leftover garbage (a
                # worker died between mark_done and release); clear it.
                self.reap(pid)
                continue
            if self.reap(pid):
                stolen.append(pid)
        return stolen


class HeartbeatLog:
    """One worker's append-only heartbeat stream.

    Records carry a monotone ``seq`` plus free-form status fields
    (``state``, ``point_id``, ``frames``, ``points_done``...).
    ``min_interval_s`` rate-limits the mid-execute beats driven from
    the per-frame progress hook; state-change beats always post."""

    def __init__(self, registry_root, fleet_id: str, worker: str,
                 min_interval_s: float = 0.5, clock=time.time) -> None:
        self.worker = worker
        self.path = os.path.join(
            fleet_root(registry_root, fleet_id), "hb", f"{worker}.jsonl"
        )
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._seq = 0
        self._last_beat = None

    def beat(self, force: bool = True, **fields) -> bool:
        """Append one heartbeat; rate-limited unless ``force``."""
        now = self._clock()
        if (not force and self._last_beat is not None
                and now - self._last_beat < self.min_interval_s):
            return False
        self._last_beat = now
        self._seq += 1
        append_jsonl_atomic(self.path, heartbeat_record(
            self.worker, self._seq, clock=self._clock, **fields,
        ))
        return True


def tail_heartbeats(registry_root, fleet_id: str, offsets: dict) -> list:
    """Read new heartbeat records from every worker's log.

    ``offsets`` maps worker -> records-already-consumed and is updated
    in place, so a coordinator calls this in a loop and receives each
    record exactly once.  Records are returned in (worker, seq) order;
    torn trailing lines are impossible by construction (single
    ``O_APPEND`` write per record)."""
    hb_dir = os.path.join(fleet_root(registry_root, fleet_id), "hb")
    fresh = []
    try:
        names = sorted(os.listdir(hb_dir))
    except FileNotFoundError:
        return fresh
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        worker = name[:-len(".jsonl")]
        seen = offsets.get(worker, 0)
        count = 0
        with open(os.path.join(hb_dir, name), "r",
                  encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                count += 1
                if count <= seen:
                    continue
                try:
                    fresh.append(json.loads(line))
                except json.JSONDecodeError:
                    raise FleetError(
                        f"{hb_dir}/{name}: corrupt heartbeat record "
                        f"#{count}"
                    ) from None
        offsets[worker] = count
    return fresh
