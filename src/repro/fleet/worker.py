"""The fleet worker: claim points, execute them supervised, mark done.

One worker is one process (``repro fleet work``) sharing nothing with
its peers but the registry directory.  Its loop:

1. Scan the spec's points in grid order; ``try_claim`` the first one
   with no done record and no live claim (reaping expired claims as it
   goes, which is how a crashed peer's work gets requeued).
2. Execute the claimed point through the fault-tolerant supervisor —
   one :class:`~repro.harness.parallel.Cell` whose config *is* the
   point's config — with a ``progress_hook`` that renews the lease and
   appends a heartbeat as frames complete.  A lease the worker can no
   longer renew (expired + stolen while it was wedged) aborts the
   attempt: the point belongs to someone else now.
3. ``mark_done`` (exactly-once ``O_EXCL``); only the winner records the
   run manifest into the registry — stamped with the fleet id, point id
   and worker — then amends the done record with the ``run_id`` and
   releases its claim.
4. When no point is claimable, publish an idle heartbeat, reap expired
   claims, sleep, rescan; exit once every point has a done record.

Execution wall time per point feeds a per-worker
:class:`~repro.service.telemetry.LogHistogram` on the shared fleet
scheme, published inside heartbeats so the coordinator (and
``repro trend --fleet``) can merge shards across workers.

Crash injection (``crash_after_claims=N``) hard-exits the process with
:data:`~repro.harness.supervisor.CRASH_EXITCODE` right after winning
its N-th claim — before any child process spawns — leaving exactly the
orphaned-claim crime scene the reaping path must clean up.  Tests and
the CI fleet job drive requeue through it deterministically.
"""

from __future__ import annotations

import os
import time

from ..errors import FleetError, ReproError
from ..harness.parallel import Cell
from ..harness.supervisor import (
    CRASH_EXITCODE,
    SupervisorPolicy,
    supervise_cells,
)
from ..obs.store import RunRegistry
from ..service.telemetry import fleet_execute_histogram
from .claims import ClaimStore, HeartbeatLog
from .points import fleet_root, load_spec

__all__ = ["FleetWorker"]


class FleetWorker:
    """Claim-execute-publish loop for one fleet member.

    ``worker_id`` must be unique within the fleet (the launcher uses
    ``w0..wN-1``; a multi-host deployment would include the hostname).
    ``record_registry`` defaults to a :class:`RunRegistry` at the fleet's
    own registry root; pass ``None`` to skip manifest recording (tests).
    """

    def __init__(self, registry_root, fleet_id: str, worker_id: str,
                 poll_s: float = 0.2, max_wait_s: float = None,
                 crash_after_claims: int = None, policy=None,
                 trace: bool = False, record_registry="default",
                 clock=time.time) -> None:
        self.registry_root = os.fspath(registry_root)
        self.worker_id = worker_id
        self.spec = load_spec(registry_root, fleet_id)
        self.points = self.spec.points()
        self.claims = ClaimStore(registry_root, fleet_id, clock=clock)
        self.heartbeats = HeartbeatLog(registry_root, fleet_id, worker_id,
                                       clock=clock)
        self.poll_s = poll_s
        self.max_wait_s = max_wait_s
        self.crash_after_claims = crash_after_claims
        self.policy = policy or SupervisorPolicy(timeout_s=120.0,
                                                 max_retries=1)
        self.histogram = fleet_execute_histogram()
        self.registry = (RunRegistry(self.registry_root)
                         if record_registry == "default"
                         else record_registry)
        self._clock = clock
        self._claims_won = 0
        self.completed: list = []
        self.shard = None
        if trace:
            from ..obs.distributed import TraceShard

            self.shard = TraceShard(
                os.path.join(fleet_root(registry_root, fleet_id), "trace"),
                role=f"fleet-{worker_id}",
            )

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Work until every point in the fleet has a done record.

        Returns a summary dict (worker id, points completed here,
        failures observed, merged-ready histogram).  Raises
        :class:`FleetError` if ``max_wait_s`` elapses first — a wedged
        fleet must not hang CI forever.
        """
        started = time.monotonic()
        self.heartbeats.beat(state="start", points_total=len(self.points))
        while True:
            done = self.claims.done_ids()
            if len(done) >= len(self.points):
                break
            point = self._claim_next(done)
            if point is not None:
                self._execute(point)
                continue
            # Nothing claimable: reap expired leases so crashed peers'
            # points requeue, tell the world we are idle (not stale),
            # and rescan after a beat.
            reaped = self.claims.reap_expired()
            if reaped:
                self.heartbeats.beat(state="reaped", reaped=reaped)
                continue
            self.heartbeats.beat(
                force=False, state="idle",
                points_done=len(done), points_total=len(self.points),
            )
            if (self.max_wait_s is not None
                    and time.monotonic() - started > self.max_wait_s):
                raise FleetError(
                    f"worker {self.worker_id}: fleet "
                    f"{self.spec.fleet_id!r} incomplete after "
                    f"{self.max_wait_s}s ({len(done)}/{len(self.points)} "
                    "points done)"
                )
            time.sleep(self.poll_s)
        failed = sorted(
            pid for pid, record in self.claims.done_records().items()
            if record.get("state") != "done"
        )
        self.heartbeats.beat(
            state="exit", points_done=len(self.claims.done_ids()),
            points_total=len(self.points), completed=len(self.completed),
            failed=failed, histogram=self.histogram.to_dict(),
        )
        return {
            "worker": self.worker_id,
            "completed": list(self.completed),
            "failed": failed,
            "histogram": self.histogram.to_dict(),
        }

    # ------------------------------------------------------------------
    def _claim_next(self, done: set):
        """Try to claim the first available point; ``None`` when every
        remaining point is done or validly claimed by a peer."""
        for point in self.points:
            if point.point_id in done:
                continue
            record = self.claims.try_claim(
                point.point_id, self.worker_id, self.spec.lease_s,
            )
            if record is None:
                continue
            self._claims_won += 1
            self.heartbeats.beat(state="claimed", point_id=point.point_id,
                                 claims=self._claims_won)
            if (self.crash_after_claims is not None
                    and self._claims_won >= self.crash_after_claims):
                # Simulated SIGKILL: no cleanup, no release — the claim
                # stays behind for lease expiry + reaping to requeue.
                self.heartbeats.beat(state="crashing",
                                     point_id=point.point_id)
                os._exit(CRASH_EXITCODE)
            return point
        return None

    def _execute(self, point) -> None:
        cell = Cell(self.spec.alias, self.spec.technique,
                    self.spec.num_frames, config=point.config,
                    tag=point.tag)
        lease_holder = {"last_renew": self._clock(), "lost": False}

        def progress_hook(kind, payload) -> None:
            # Renew well inside the lease window (every third), and
            # piggyback a rate-limited executing heartbeat.
            now = self._clock()
            if now - lease_holder["last_renew"] >= self.spec.lease_s / 3.0:
                self.claims.renew(point.point_id, self.worker_id,
                                  self.spec.lease_s)
                lease_holder["last_renew"] = now
            frames = payload if kind == "progress" else None
            self.heartbeats.beat(force=False, state="executing",
                                 point_id=point.point_id, frames=frames)

        span = None
        if self.shard is not None:
            span = self.shard.begin(
                "fleet_point", trace_id=self.spec.fleet_id,
                point_id=point.point_id, worker=self.worker_id,
                tag=point.tag,
            )
        t0 = time.monotonic()
        try:
            supervised = supervise_cells(
                [cell], config=point.config, policy=self.policy,
                progress_hook=progress_hook,
            )
        except FleetError:
            # Lease lost mid-execute: the point was stolen; walk away
            # (the thief owns it now; our claim file is already gone).
            self.heartbeats.beat(state="lease_lost",
                                 point_id=point.point_id)
            if self.shard is not None and span is not None:
                self.shard.end("fleet_point")
            return
        execute_s = time.monotonic() - t0
        if self.shard is not None and span is not None:
            self.shard.end("fleet_point")

        outcome = supervised.outcomes[cell]
        if not outcome.succeeded:
            # Deterministic failure after supervisor retries: record it
            # terminally so the fleet finishes instead of ping-ponging
            # the poison point between workers forever.
            won = self.claims.mark_done(
                point.point_id, self.worker_id, state="failed",
                error=outcome.failure, execute_s=execute_s,
            )
            self.claims.release(point.point_id, self.worker_id)
            self.heartbeats.beat(state="point_failed",
                                 point_id=point.point_id, won=won)
            return

        result = outcome.result
        summary = {
            "total_cycles": result.total_cycles,
            "final_frame_crc": result.final_frame_crc,
            "tiles_skipped": result.tiles_skipped,
            "num_frames": result.num_frames,
        }
        won = self.claims.mark_done(
            point.point_id, self.worker_id, summary=summary,
            execute_s=execute_s,
        )
        if won:
            run_id = self._record_manifest(point, result)
            if run_id:
                self.claims.amend_done(point.point_id, self.worker_id,
                                       run_id=run_id)
            self.completed.append(point.point_id)
            self.histogram.observe(execute_s)
        # Not winning is fine: a peer finished the same point after
        # stealing our expired lease — results are deterministic and
        # the registry content-addresses manifests, so nothing is lost.
        self.claims.release(point.point_id, self.worker_id)
        self.heartbeats.beat(
            state="point_done", point_id=point.point_id, won=won,
            execute_s=execute_s, completed=len(self.completed),
            histogram=self.histogram.to_dict(),
        )

    def _record_manifest(self, point, result):
        """Best-effort registry append, stamped with fleet identity."""
        if self.registry is None:
            return None
        try:
            return self.registry.record_run(
                result, kind="sweep-point",
                extra={
                    "parameters": point.assignment,
                    "fleet_id": self.spec.fleet_id,
                    "point_id": point.point_id,
                    "fleet_worker": self.worker_id,
                },
            )
        except (OSError, ReproError) as exc:
            self.heartbeats.beat(state="registry_error", error=str(exc),
                                 point_id=point.point_id)
            return None
