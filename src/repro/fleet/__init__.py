"""Distributed sweep fabric coordinated through the run registry.

A fleet shards one sweep grid across N workers — separate processes,
optionally separate hosts — that share nothing but a registry
directory.  The registry's content-addressing already makes re-runs
safe (identical manifests dedupe to one ``run_id``); this package adds
the coordination half on top of plain atomic filesystem operations:

* :mod:`repro.fleet.points` — the fleet spec and its deterministic
  expansion into content-addressed sweep points (``point_id``), shared
  byte-for-byte with single-host :func:`repro.harness.sweeps.sweep`.
* :mod:`repro.fleet.claims` — the claim/lease/done protocol
  (``O_CREAT|O_EXCL`` single-winner claims, atomic renewal, lease
  expiry with single-winner stealing, exactly-once done records) and
  append-only worker heartbeats.
* :mod:`repro.fleet.worker` — the worker loop: claim, execute through
  the supervisor (renewing the lease per frame), record the manifest,
  mark done; plus deterministic crash injection for testing requeue.
* :mod:`repro.fleet.coordinator` — the merged live view (heartbeats +
  claims + done records through :class:`~repro.obs.live.LiveAggregator`
  stall detection), orphaned-claim reaping, and the local N-process
  launcher CI uses to simulate a multi-host fleet.

See DESIGN §13 for the claim protocol, lease state machine and the
failure matrix.
"""

from .claims import ClaimStore, HeartbeatLog
from .coordinator import FleetCoordinator, launch_fleet
from .points import FleetSpec, fleet_root, load_spec, point_id
from .worker import FleetWorker

__all__ = [
    "ClaimStore",
    "FleetCoordinator",
    "FleetSpec",
    "FleetWorker",
    "HeartbeatLog",
    "fleet_root",
    "launch_fleet",
    "load_spec",
    "point_id",
]
