"""The fleet coordinator: merged live view, reaping, local launcher.

The coordinator owns no work — points complete whether or not one is
running — it *observes and unsticks*: it tails every worker's
append-only heartbeat log (each record consumed exactly once), feeds
the payloads into a :class:`~repro.obs.live.LiveAggregator` in
``use_payload_ts`` mode (so staleness reflects when a worker last made
progress, clamped against clock skew, not when the tail loop ran),
snapshots the claim/done state into a point map, merges the workers'
execute-wall histograms, and reaps expired claims so a crashed
worker's points requeue even when every surviving worker is busy.

:func:`launch_fleet` is the local N-process mode CI uses: it writes the
spec, spawns ``repro fleet work`` subprocesses, runs the coordinator
loop until the fleet completes (journaling every observation), and
reports per-worker exit codes.  Workers that crash are deliberately
*not* respawned — the acceptance test is that the fleet completes
anyway through lease expiry.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from ..errors import FleetError
from ..harness.supervisor import RunJournal
from ..obs.live import LiveAggregator
from ..service.telemetry import merge_histograms
from .claims import ClaimStore, tail_heartbeats
from .points import fleet_root, load_spec

__all__ = ["FleetCoordinator", "launch_fleet"]


class _NullStream:
    """Swallows the aggregator's periodic table (we render our own)."""

    def write(self, text: str) -> int:
        return len(text)

    def flush(self) -> None:
        pass


class FleetCoordinator:
    """Read-side merge of one fleet's heartbeats, claims and results."""

    def __init__(self, registry_root, fleet_id: str,
                 stall_after_s: float = None, clock=time.time) -> None:
        self.registry_root = os.fspath(registry_root)
        self.spec = load_spec(registry_root, fleet_id)
        self.points = self.spec.points()
        self.claims = ClaimStore(registry_root, fleet_id, clock=clock)
        self.root = fleet_root(registry_root, fleet_id)
        self._offsets: dict = {}
        self._worker_stats: dict = {}   # worker -> {..latest heartbeat..}
        self._histograms: dict = {}     # worker -> latest to_dict()
        self.started_at = time.monotonic()
        # A worker silent for longer than its own lease is in stall
        # territory — its claims are about to be stolen.
        self.aggregator = LiveAggregator(
            path=os.path.join(self.root, "live.json"),
            stall_after_s=(stall_after_s if stall_after_s is not None
                           else self.spec.lease_s),
            stream=_NullStream(), use_payload_ts=True,
            owner=f"repro-fleet:{os.getpid()}",
        )

    # Ingest -------------------------------------------------------------
    def refresh(self) -> list:
        """Consume new heartbeat records; returns them (for journaling).
        Feeds the live aggregator and updates per-worker stats."""
        fresh = tail_heartbeats(self.registry_root, self.spec.fleet_id,
                                self._offsets)
        for record in fresh:
            worker = record["worker"]
            stats = self._worker_stats.setdefault(worker, {
                "completed": 0, "claims": 0, "state": None, "seq": 0,
                "first_ts": record.get("ts"), "last_ts": None,
            })
            stats["state"] = record.get("state", stats["state"])
            stats["seq"] = record.get("seq", stats["seq"])
            stats["last_ts"] = record.get("ts")
            if record.get("claims") is not None:
                stats["claims"] = record["claims"]
            if record.get("completed") is not None:
                stats["completed"] = record["completed"]
            if record.get("histogram"):
                self._histograms[worker] = record["histogram"]
            self.aggregator.update(self._to_live_payload(record))
        self.aggregator.tick(force=bool(fresh))
        return fresh

    @staticmethod
    def _to_live_payload(record: dict) -> dict:
        payload = {"worker": record["worker"],
                   "ts": record.get("ts", time.time())}
        state = record.get("state")
        if state == "exit":
            payload.update(event="done", ok=True)
        elif state == "crashing":
            payload.update(event="done", ok=False)
        else:
            if isinstance(record.get("frames"), int):
                payload["frames"] = record["frames"]
            payload["counters"] = {}
        return payload

    def reap_orphans(self) -> list:
        """Steal expired claims so a dead worker's points requeue even
        when no worker is idle-scanning (all busy on long points)."""
        return self.claims.reap_expired()

    # State --------------------------------------------------------------
    def point_map(self) -> list:
        """Per-point status in grid order:
        ``(point_id, tag, status, holder)`` with status one of
        ``done`` / ``failed`` / ``claimed`` / ``unclaimed``."""
        done = self.claims.done_records()
        live = self.claims.claims()
        rows = []
        for point in self.points:
            pid = point.point_id
            if pid in done:
                state = ("done" if done[pid].get("state") == "done"
                         else "failed")
                rows.append((pid, point.tag, state,
                             done[pid].get("worker")))
            elif pid in live:
                rows.append((pid, point.tag, "claimed",
                             live[pid].get("worker")))
            else:
                rows.append((pid, point.tag, "unclaimed", None))
        return rows

    def merged_histogram(self):
        """All workers' execute-wall histograms merged; ``None`` before
        the first completed point."""
        if not self._histograms:
            return None
        return merge_histograms(self._histograms.values())

    @property
    def complete(self) -> bool:
        return len(self.claims.done_ids()) >= len(self.points)

    def failed_points(self) -> list:
        return sorted(
            pid for pid, record in self.claims.done_records().items()
            if record.get("state") != "done"
        )

    def status(self) -> dict:
        """One mergeable snapshot of everything the coordinator knows."""
        points = self.point_map()
        by_state: dict = {}
        for _, _, state, _ in points:
            by_state[state] = by_state.get(state, 0) + 1
        elapsed = time.monotonic() - self.started_at
        workers = {}
        for worker, stats in sorted(self._worker_stats.items()):
            live = self.aggregator.workers.get(worker, {})
            age = (max(0.0, time.time() - stats["last_ts"])
                   if stats.get("last_ts") else None)
            # Rate over the worker's own heartbeat span, not our loop's
            # lifetime — a post-hoc coordinator (fresh object over a
            # finished fleet) would otherwise divide by ~zero.
            span = elapsed
            if stats.get("first_ts") and stats.get("last_ts"):
                span = max(span, stats["last_ts"] - stats["first_ts"])
            workers[worker] = {
                "state": stats["state"],
                "completed": stats["completed"],
                "claims": stats["claims"],
                "beat_age_s": age,
                "stalled": bool(live.get("stalled")),
                "throughput_per_min": (
                    stats["completed"] / (span / 60.0)
                    if span > 0 else 0.0
                ),
            }
        return {
            "fleet_id": self.spec.fleet_id,
            "points_total": len(points),
            "points": by_state,
            "complete": self.complete,
            "failed_points": self.failed_points(),
            "workers": workers,
            "stalled": self.aggregator.stalled(),
            "histogram": self.merged_histogram(),
            "events": self.aggregator.events[-20:],
        }

    # Rendering ----------------------------------------------------------
    def render_status(self, width: int = 80) -> str:
        """Plain-text status: claim map + worker table.  Pure ASCII, no
        ANSI — safe verbatim in CI logs and on dumb terminals; the map
        wraps to ``width``."""
        from ..harness.reporting import format_table

        points = self.point_map()
        symbols = {"done": "#", "failed": "X", "claimed": "c",
                   "unclaimed": "."}
        map_line = "".join(symbols[state] for _, _, state, _ in points)
        wrap = max(16, int(width) - 12)
        wrapped = [map_line[i:i + wrap]
                   for i in range(0, len(map_line), wrap)] or [""]
        done = sum(1 for _, _, s, _ in points if s == "done")
        lines = [
            f"fleet {self.spec.fleet_id}: {done}/{len(points)} points "
            f"done ({self.spec.alias}/{self.spec.technique}, "
            f"{self.spec.num_frames} frames)",
            "points  " + f"\n{'':8}".join(wrapped)
            + "   [#=done X=failed c=claimed .=unclaimed]",
        ]
        status = self.status()
        if status["workers"]:
            rows = []
            for worker, info in status["workers"].items():
                age = info["beat_age_s"]
                rows.append([
                    worker,
                    "STALLED" if info["stalled"] else (info["state"] or "-"),
                    info["completed"],
                    info["claims"],
                    f"{age:.1f}s" if age is not None else "-",
                    f"{info['throughput_per_min']:.1f}/min",
                ])
            lines.append(format_table(
                ["worker", "state", "done", "claims", "beat", "rate"],
                rows,
            ))
        hist = status["histogram"]
        if hist and hist.get("count"):
            lines.append(
                f"execute wall: n={hist['count']} p50={hist['p50']:.3f}s "
                f"p95={hist['p95']:.3f}s max={hist['max']:.3f}s"
            )
        if status["failed_points"]:
            lines.append("FAILED points: "
                         + ", ".join(status["failed_points"]))
        return "\n".join(lines)

    def close(self) -> None:
        self.aggregator.close()


def launch_fleet(registry_root, spec, workers: int = 3,
                 crash_after: dict = None, max_wait_s: float = 300.0,
                 poll_s: float = 0.25, stream=None,
                 worker_args: list = None) -> dict:
    """Spawn a local N-process fleet for ``spec`` and see it through.

    ``spec`` is a :class:`~repro.fleet.points.FleetSpec` (saved here) or
    a fleet id that was already saved.  ``crash_after`` maps worker id
    (``w0``..) -> claim count after which that worker hard-exits —
    deterministic crash injection for requeue tests.  Returns a summary
    dict; raises :class:`FleetError` on timeout.  Crashed workers stay
    dead on purpose: completion must come from lease-expiry requeue.
    """
    registry_root = os.fspath(registry_root)
    if isinstance(spec, str):
        spec = load_spec(registry_root, spec)
    else:
        spec.save(registry_root)
    crash_after = crash_after or {}
    root = fleet_root(registry_root, spec.fleet_id)
    journal = RunJournal(os.path.join(root, "journal.jsonl"))
    journal.append("fleet_start", fleet_id=spec.fleet_id, workers=workers,
                   points=len(spec.point_ids()),
                   crash_after={k: v for k, v in crash_after.items()})

    procs = {}
    for index in range(workers):
        worker_id = f"w{index}"
        cmd = [
            sys.executable, "-m", "repro", "fleet", "work",
            "--registry", registry_root, "--fleet-id", spec.fleet_id,
            "--worker", worker_id, "--max-wait", str(max_wait_s),
        ]
        if worker_id in crash_after:
            cmd += ["--crash-after-claims", str(crash_after[worker_id])]
        cmd += list(worker_args or [])
        procs[worker_id] = subprocess.Popen(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=dict(os.environ, PYTHONPATH=_pythonpath()),
        )
        journal.append("worker_spawned", worker=worker_id,
                       pid=procs[worker_id].pid)

    coordinator = FleetCoordinator(registry_root, spec.fleet_id)
    deadline = time.monotonic() + max_wait_s
    try:
        while True:
            for record in coordinator.refresh():
                journal.append("heartbeat", **{
                    k: v for k, v in record.items() if k != "schema"
                })
            for pid in coordinator.reap_orphans():
                journal.append("claim_reaped", point_id=pid,
                               by="coordinator")
            if stream is not None:
                print(coordinator.render_status(), file=stream)
            if coordinator.complete:
                break
            if all(p.poll() is not None for p in procs.values()):
                # Every worker exited but points remain: unfinishable.
                raise FleetError(
                    f"fleet {spec.fleet_id!r}: all workers exited with "
                    f"{len(coordinator.claims.done_ids())}/"
                    f"{len(coordinator.points)} points done"
                )
            if time.monotonic() > deadline:
                raise FleetError(
                    f"fleet {spec.fleet_id!r} incomplete after "
                    f"{max_wait_s}s"
                )
            time.sleep(poll_s)
    finally:
        exit_codes = {}
        for worker_id, proc in procs.items():
            try:
                exit_codes[worker_id] = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                exit_codes[worker_id] = proc.wait()
        coordinator.refresh()
        status = coordinator.status()
        journal.append("fleet_done", complete=coordinator.complete,
                       failed_points=coordinator.failed_points(),
                       exit_codes=exit_codes)
        journal.close()
        coordinator.close()
    status["exit_codes"] = exit_codes
    return status


def _pythonpath() -> str:
    """Child workers must resolve ``repro`` the same way we did."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH")
    return f"{here}{os.pathsep}{existing}" if existing else here
