"""Fleet specs and their deterministic expansion into sweep points.

A fleet is one sweep grid — alias, technique, frame count, a config
preset plus overrides, and a parameter grid — frozen into a spec file
(``fleet.json``) every worker reads.  The spec expands into **points**
via the exact machinery single-host sweeps use
(:func:`repro.harness.sweeps.expand_grid`), and every point gets a
content-addressed ``point_id`` derived from what the simulation will
actually see (alias, technique, frames,
:meth:`~repro.config.GpuConfig.digest`).  Two consequences:

* A worker on any host expanding the same spec computes the same
  points in the same order with the same ids — no id exchange needed.
* A single-host ``repro sweep`` over the same grid produces manifests
  whose point ids match the fleet's, so ``repro diff --fleet`` can
  reconcile the two runs point-for-point.

Fleet state lives under the registry root, beside (not inside) the
tenant namespaces::

    <registry>/fleet/<fleet_id>/
        fleet.json         # the spec (this module)
        claims/<pid>.json  # live leases        (repro.fleet.claims)
        done/<pid>.json    # terminal records   (repro.fleet.claims)
        reaped/            # stolen expired leases, kept for forensics
        hb/<worker>.jsonl  # append-only worker heartbeats
        journal.jsonl      # coordinator event journal
        live.json          # coordinator heartbeat (obs.live)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time

from ..config import GpuConfig
from ..errors import FleetError
from ..harness.sweeps import expand_grid

__all__ = [
    "FleetPoint",
    "FleetSpec",
    "SPEC_SCHEMA",
    "fleet_root",
    "list_fleets",
    "load_spec",
    "point_id",
]

SPEC_SCHEMA = "repro-fleet-v1"

#: Config presets a spec may name (mirrors the CLI ``--scale`` choices).
SCALES = ("small", "benchmark", "mali450")

_FLEET_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_fleet_id(fleet_id) -> str:
    """Fleet ids become directory names under the registry, so they get
    the same hostile-input treatment as tenant ids."""
    if not isinstance(fleet_id, str) or not _FLEET_ID_RE.match(fleet_id):
        raise FleetError(
            f"invalid fleet id {fleet_id!r}: need 1-64 chars from "
            "[A-Za-z0-9._-], not starting with a dot or dash"
        )
    return fleet_id


def fleet_root(registry_root, fleet_id: str) -> str:
    """Directory holding one fleet's coordination state."""
    return os.path.join(
        os.fspath(registry_root), "fleet", validate_fleet_id(fleet_id)
    )


def point_id(alias: str, technique: str, num_frames: int,
             config: GpuConfig) -> str:
    """Content-addressed identity of one sweep point.

    Hashes exactly what determines the simulation's output — alias,
    technique, frame count and the full config digest — so the id is
    stable across hosts, processes and time, and identical between a
    fleet worker and a single-host sweep of the same grid.
    """
    blob = f"{alias}|{technique}|{num_frames}|{config.digest()}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class FleetPoint:
    """One expanded sweep point a worker can claim and execute."""

    point_id: str
    assignment: dict
    config: GpuConfig
    tag: str


@dataclasses.dataclass
class FleetSpec:
    """The frozen description of one fleet's work.

    ``parameters`` maps GpuConfig field name -> list of values (the
    sweep grid); ``overrides`` are scalar GpuConfig replacements applied
    on top of the ``scale`` preset *before* the grid (mirroring the CLI
    ``--native``/``--occlusion-culling`` path), so a fleet reproduces
    exactly what ``repro sweep --scale S --set k=v,...`` would run.
    """

    fleet_id: str
    alias: str
    technique: str
    num_frames: int
    parameters: dict
    scale: str = "small"
    overrides: dict = dataclasses.field(default_factory=dict)
    lease_s: float = 30.0
    created_at: float = None

    def __post_init__(self) -> None:
        validate_fleet_id(self.fleet_id)
        if self.scale not in SCALES:
            raise FleetError(
                f"unknown scale {self.scale!r}; choose from {SCALES}"
            )
        if not self.parameters:
            raise FleetError("a fleet needs a non-empty parameter grid")
        if self.lease_s <= 0:
            raise FleetError(f"lease_s must be positive, got {self.lease_s}")
        # Canonical grid order: the spec file is written with sorted
        # keys, so expansion order must not depend on the insertion
        # order the constructor happened to see — otherwise a spec
        # stops matching its own recorded point ids after one JSON
        # round-trip.
        self.parameters = {
            name: list(self.parameters[name])
            for name in sorted(self.parameters)
        }

    # Expansion ----------------------------------------------------------
    def base_config(self) -> GpuConfig:
        config = getattr(GpuConfig, self.scale)()
        if self.overrides:
            try:
                config = dataclasses.replace(config, **self.overrides)
            except TypeError as exc:
                raise FleetError(f"bad config override: {exc}") from None
        return config

    def points(self) -> list:
        """Expand the grid into :class:`FleetPoint` in deterministic
        (grid) order — the same order on every host."""
        grid = expand_grid(
            self.alias, self.technique, self.parameters,
            base_config=self.base_config(), num_frames=self.num_frames,
        )
        return [
            FleetPoint(
                point_id=point_id(self.alias, self.technique,
                                  self.num_frames, config),
                assignment=assignment, config=config, tag=tag,
            )
            for assignment, config, tag in grid
        ]

    def point_ids(self) -> list:
        return [point.point_id for point in self.points()]

    # Persistence --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "fleet_id": self.fleet_id,
            "alias": self.alias,
            "technique": self.technique,
            "num_frames": self.num_frames,
            "parameters": self.parameters,
            "scale": self.scale,
            "overrides": self.overrides,
            "lease_s": self.lease_s,
            "created_at": self.created_at,
            "point_ids": self.point_ids(),
        }

    def save(self, registry_root) -> str:
        """Write ``fleet.json`` (and the fleet directory layout) under
        the registry.  Creating the same fleet id twice is an error —
        a spec is immutable once workers may have read it."""
        if self.created_at is None:
            self.created_at = time.time()
        root = fleet_root(registry_root, self.fleet_id)
        for sub in ("claims", "done", "reaped", "hb"):
            os.makedirs(os.path.join(root, sub), exist_ok=True)
        path = os.path.join(root, "fleet.json")
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
        except FileExistsError:
            raise FleetError(
                f"fleet {self.fleet_id!r} already exists at {path}"
            ) from None
        try:
            os.write(fd, (payload + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        return path


def load_spec(registry_root, fleet_id: str) -> FleetSpec:
    """Load a fleet spec a coordinator or worker will act on."""
    path = os.path.join(fleet_root(registry_root, fleet_id), "fleet.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except FileNotFoundError:
        raise FleetError(
            f"no fleet {fleet_id!r} under {os.fspath(registry_root)} "
            f"(expected {path})"
        ) from None
    except json.JSONDecodeError as exc:
        raise FleetError(f"{path}: corrupt fleet spec: {exc}") from None
    if raw.get("schema") != SPEC_SCHEMA:
        raise FleetError(
            f"{path}: unsupported fleet schema {raw.get('schema')!r} "
            f"(this build reads {SPEC_SCHEMA})"
        )
    spec = FleetSpec(
        fleet_id=raw["fleet_id"], alias=raw["alias"],
        technique=raw["technique"], num_frames=raw["num_frames"],
        parameters=raw["parameters"], scale=raw.get("scale", "small"),
        overrides=raw.get("overrides") or {},
        lease_s=raw.get("lease_s", 30.0),
        created_at=raw.get("created_at"),
    )
    # Guard against spec/build skew: a worker whose expansion disagrees
    # with the recorded point set must not start claiming points.
    recorded = raw.get("point_ids")
    if recorded is not None and recorded != spec.point_ids():
        raise FleetError(
            f"{path}: point expansion mismatch — the spec records "
            f"{len(recorded)} point ids but this build expands to a "
            "different set (config defaults changed?)"
        )
    return spec


def list_fleets(registry_root) -> list:
    """Fleet ids present under a registry, sorted."""
    root = os.path.join(os.fspath(registry_root), "fleet")
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    return sorted(
        name for name in names
        if os.path.isfile(os.path.join(root, name, "fleet.json"))
    )
