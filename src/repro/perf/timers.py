"""Per-stage wall-clock timers and event-rate counters."""

from __future__ import annotations

import json
import time


class StageTimer:
    """Context manager accumulating elapsed seconds into a recorder."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "PerfRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        recorder = self._recorder
        recorder.stage_seconds[self._name] = (
            recorder.stage_seconds.get(self._name, 0.0) + elapsed
        )
        recorder.stage_calls[self._name] = (
            recorder.stage_calls.get(self._name, 0) + 1
        )


class PerfRecorder:
    """Accumulates per-stage wall-clock and event counts.

    >>> perf = PerfRecorder()
    >>> with perf.stage("raster"):
    ...     pass
    >>> perf.count("fragments_rasterized", 100)
    """

    def __init__(self) -> None:
        self.stage_seconds: dict = {}
        self.stage_calls: dict = {}
        self.counters: dict = {}
        self.counter_stages: dict = {}   # counter name -> owning stage
        self._wall_start = time.perf_counter()

    def stage(self, name: str) -> StageTimer:
        """A context manager timing one occurrence of stage ``name``."""
        return StageTimer(self, name)

    def count(self, name: str, n: int = 1, stage: str = None) -> None:
        """Add ``n`` to event counter ``name``.

        ``stage`` attributes the counter to the stage whose timed
        seconds its rate should be computed against (fragments happen
        during ``raster`` time, not total stage time); counters without
        a stage rate against wall-clock.
        """
        self.counters[name] = self.counters.get(name, 0) + n
        if stage is not None:
            self.counter_stages[name] = stage

    @property
    def wall_seconds(self) -> float:
        """Seconds since this recorder was created."""
        return time.perf_counter() - self._wall_start

    def rates(self) -> dict:
        """Events per second of their *owning stage's* time.

        A counter attributed to a stage (``count(..., stage="raster")``)
        divides by that stage's accumulated seconds — dividing by the
        total across stages would understate every rate by whatever
        share of time the other stages took.  Counters with no owning
        stage (or whose stage was never timed) divide by wall-clock.
        """
        wall = self.wall_seconds
        rates: dict = {}
        for name, value in self.counters.items():
            stage = self.counter_stages.get(name)
            denominator = self.stage_seconds.get(stage, 0.0) if stage else 0.0
            if denominator <= 0.0:
                denominator = wall
            if denominator > 0.0:
                rates[f"{name}_per_sec"] = value / denominator
        return rates

    def snapshot(self) -> dict:
        """A JSON-serializable view of everything recorded so far."""
        return {
            "wall_seconds": round(self.wall_seconds, 4),
            "stage_seconds": {
                name: round(value, 4)
                for name, value in sorted(self.stage_seconds.items())
            },
            "stage_calls": dict(sorted(self.stage_calls.items())),
            "counters": dict(sorted(self.counters.items())),
            "rates": {
                name: round(value, 1)
                for name, value in sorted(self.rates().items())
            },
        }


def write_bench(path, payload: dict) -> None:
    """Write a benchmark payload as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path) -> dict:
    """Read a benchmark payload written by :func:`write_bench`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
