"""Lightweight wall-clock instrumentation for the simulator itself.

This package times the *simulator*, not the simulated GPU: per-stage
wall-clock (geometry vs raster), event counters, and derived event rates
(fragments/second of host time).  A :class:`PerfRecorder` attaches to
:class:`repro.pipeline.gpu.Gpu` via its ``perf`` attribute; when absent
(the default) the pipeline pays only a ``None`` check per frame.

``--profile`` in ``python -m repro`` and ``examples/benchmark_suite.py``
wires a recorder up and emits ``BENCH_pipeline.json`` so successive PRs
can track simulator throughput.
"""

from .timers import PerfRecorder, StageTimer, load_bench, write_bench

# The bench-regression guard lives in :mod:`repro.perf.guard`; it is not
# re-exported here so ``python -m repro.perf.guard`` does not double-import
# the module through the package.
__all__ = ["PerfRecorder", "StageTimer", "load_bench", "write_bench"]
