"""Benchmark-regression guard: compare two ``BENCH_pipeline.json`` files.

The committed baseline pins two different kinds of fact and the guard
treats them differently:

* **Counters** are outputs of a deterministic simulation — the same
  frames produce the same fragment/tile counts on any machine — so any
  drift is a behaviour change and compares *exactly*.
* **Stage seconds** are host wall-clock and vary run to run and machine
  to machine.  Their absolute values are unportable, but their *shares*
  of total stage time (geometry vs raster split) track the simulator's
  algorithmic shape, so the guard compares shares within a tolerance.
* **Wall time** is only meaningful on comparable hardware; the ratio
  check is opt-in (``wall_tolerance``), for environments pinned enough
  to trust it.

CI runs this after regenerating the profile::

    python -m repro.perf.guard BENCH_pipeline.json BENCH_new.json \
        --share-tolerance 0.10

Exit status 0 means no regression; 1 lists every violated check on
stdout; 2 is a usage/IO error.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ReproError
from .timers import load_bench


def _profile(payload: dict) -> dict:
    """Accept either a full bench payload or a bare profile snapshot."""
    profile = payload.get("profile", payload)
    if "counters" not in profile or "stage_seconds" not in profile:
        raise ReproError(
            "not a bench profile: expected 'counters' and 'stage_seconds' "
            f"(found keys {sorted(profile)[:8]})"
        )
    return profile


def stage_shares(stage_seconds: dict) -> dict:
    """Each stage's fraction of total stage time (empty dict if none)."""
    total = sum(stage_seconds.values())
    if total <= 0.0:
        return {}
    return {name: seconds / total for name, seconds in stage_seconds.items()}


def compare_bench(baseline: dict, candidate: dict,
                  share_tolerance: float = 0.10,
                  wall_tolerance: float = None) -> list:
    """Compare a candidate bench payload against a baseline.

    Returns a list of human-readable violation strings (empty = pass).
    ``share_tolerance`` is the allowed absolute drift in each stage's
    share of total stage time; ``wall_tolerance`` (``None`` = skip) is
    the allowed fractional wall-clock slowdown, e.g. ``0.02`` for 2%.
    """
    base = _profile(baseline)
    cand = _profile(candidate)
    failures = []

    for name in sorted(set(base["counters"]) | set(cand["counters"])):
        expected = base["counters"].get(name)
        actual = cand["counters"].get(name)
        if expected != actual:
            failures.append(
                f"counter {name!r}: expected {expected}, got {actual} "
                "(simulation counters are deterministic; this is a "
                "behaviour change, not noise)"
            )

    base_shares = stage_shares(base["stage_seconds"])
    cand_shares = stage_shares(cand["stage_seconds"])
    for name in sorted(set(base_shares) | set(cand_shares)):
        expected = base_shares.get(name, 0.0)
        actual = cand_shares.get(name, 0.0)
        drift = abs(actual - expected)
        if drift > share_tolerance:
            failures.append(
                f"stage {name!r} share of stage time: {expected:.3f} -> "
                f"{actual:.3f} (drift {drift:.3f} > "
                f"tolerance {share_tolerance:.3f})"
            )

    if wall_tolerance is not None:
        base_wall = base.get("wall_seconds", 0.0)
        cand_wall = cand.get("wall_seconds", 0.0)
        if base_wall > 0.0 and cand_wall > base_wall * (1 + wall_tolerance):
            failures.append(
                f"wall time {base_wall:.3f}s -> {cand_wall:.3f}s "
                f"(+{100 * (cand_wall / base_wall - 1):.1f}% > "
                f"{100 * wall_tolerance:.0f}% tolerance)"
            )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.guard",
        description="compare a fresh bench profile against the committed "
                    "baseline; exit 1 on regression",
    )
    parser.add_argument("baseline", help="committed BENCH_pipeline.json")
    parser.add_argument("candidate", help="freshly generated profile")
    parser.add_argument("--share-tolerance", type=float, default=0.10,
                        help="allowed absolute drift per stage's share of "
                             "stage time (default 0.10)")
    parser.add_argument("--wall-tolerance", type=float, default=None,
                        help="allowed fractional wall slowdown, e.g. 0.02 "
                             "(default: skip the wall check — host "
                             "wall-clock is not portable across machines)")
    parser.add_argument("--registry", default=None, metavar="DIR",
                        help="also append the candidate profile to this "
                             "run registry, so `python -m repro trend` "
                             "accumulates CI history")
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        candidate = load_bench(args.candidate)
        failures = compare_bench(
            baseline, candidate,
            share_tolerance=args.share_tolerance,
            wall_tolerance=args.wall_tolerance,
        )
        if args.registry:
            from ..obs.store import RunRegistry

            bench_id = RunRegistry(args.registry).record_bench(
                args.candidate
            )
            print(f"recorded candidate profile as {bench_id} "
                  f"in {args.registry}")
    except (OSError, ValueError, ReproError) as exc:
        print(f"bench guard error: {exc}", file=sys.stderr)
        return 2
    if failures:
        print(f"bench regression: {len(failures)} check(s) failed")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench guard: no regression "
          f"(counters exact, stage shares within {args.share_tolerance})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
