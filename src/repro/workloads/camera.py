"""Camera models driving the per-game redundancy profiles.

The paper sorts its benchmarks into three behaviours (Section V):
mostly-static cameras (ccs..hop), continuously-moving cameras (mst), and
mixed phases (abi..tib).  Camera state is a pure function of the frame
number, so two frames with the same camera state produce bit-identical
drawcall constants — the property Rendering Elimination detects.

For 2D games the camera contributes a translation folded into every
camera-affected drawcall's MVP; for 3D games it yields an eye position
and yaw for a perspective view.
"""

from __future__ import annotations

import dataclasses
import math
import typing


@dataclasses.dataclass(frozen=True)
class CameraState:
    """Per-frame camera sample."""

    dx: float = 0.0
    dy: float = 0.0
    zoom: float = 1.0
    yaw: float = 0.0
    advance: float = 0.0      # forward travel (3D games)
    moving: bool = False


class Camera:
    """Base camera: static."""

    def state(self, frame: int) -> CameraState:
        return CameraState()

    def moving_fraction(self, num_frames: int) -> float:
        """Fraction of frames in which the camera moves (documentation
        metric used by the benchmark tables)."""
        if num_frames <= 0:
            return 0.0
        moving = sum(1 for f in range(num_frames) if self.state(f).moving)
        return moving / num_frames


class StaticCamera(Camera):
    """Never moves (puzzle games)."""


class ContinuousCamera(Camera):
    """Moves every frame (first-person shooters, runners)."""

    def __init__(self, speed: float = 0.01, yaw_amplitude: float = 0.15,
                 yaw_period: int = 24) -> None:
        self.speed = speed
        self.yaw_amplitude = yaw_amplitude
        self.yaw_period = yaw_period

    def state(self, frame: int) -> CameraState:
        yaw = self.yaw_amplitude * math.sin(
            2.0 * math.pi * frame / self.yaw_period
        )
        return CameraState(
            dx=0.0, dy=0.0, yaw=yaw,
            advance=self.speed * frame, moving=True,
        )


class EpisodicCamera(Camera):
    """Pans during scripted episodes, static otherwise (mixed games).

    ``episodes`` is a sequence of ``(start_frame, end_frame, vx, vy)``;
    outside all episodes the camera rests wherever the last episode left
    it (positions are integrated analytically so camera state remains a
    pure function of the frame index).
    """

    def __init__(self, episodes: typing.Sequence) -> None:
        self.episodes = tuple(episodes)

    def state(self, frame: int) -> CameraState:
        dx = dy = 0.0
        moving = False
        for start, end, vx, vy in self.episodes:
            if frame >= end:
                dx += vx * (end - start)
                dy += vy * (end - start)
            elif frame >= start:
                dx += vx * (frame - start)
                dy += vy * (frame - start)
                moving = True
        return CameraState(dx=dx, dy=dy, moving=moving)


class ShakeCamera(Camera):
    """Static but with brief single-frame nudges every ``period`` frames
    (strategy games where the player occasionally drags the map)."""

    def __init__(self, period: int = 16, magnitude: float = 0.03,
                 burst: int = 2) -> None:
        self.period = period
        self.magnitude = magnitude
        self.burst = burst

    def state(self, frame: int) -> CameraState:
        phase = frame % self.period
        if phase < self.burst:
            # Deterministic nudge: alternate direction per period.
            direction = 1.0 if (frame // self.period) % 2 == 0 else -1.0
            return CameraState(
                dx=direction * self.magnitude * (phase + 1), moving=True
            )
        # Rest position after the burst: back at origin.
        return CameraState()
