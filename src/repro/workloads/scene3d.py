"""True-3D scenes: perspective camera over 3D meshes.

The Table II games are modeled as layered 2D quads because their
redundancy structure lives in the command stream, not the projection.
This module provides the genuinely 3D path for users who want it (and
for validating RE under perspective rendering): meshes with per-frame
model transforms, a perspective camera on a scripted path, and lit
shading — all compiled to the same GPU command streams.

Motion still enters the stream only through drawcall constants (each
node's MVP), so Rendering Elimination semantics carry over unchanged: a
static camera + static node yields bit-identical constants and a
skippable tile footprint.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

from ..errors import PipelineError
from ..geometry import mat4
from ..geometry.meshes import box_buffer, grid_buffer, ring_strip_buffer
from ..geometry.primitives import VertexBuffer
from ..pipeline.commands import CommandStream
from ..shaders import PROGRAMS, pack_constants
from ..textures.texture import Texture


@dataclasses.dataclass
class MeshNode:
    """One 3D mesh instance with optional per-frame animation.

    ``transform_fn(frame) -> 4x4 model matrix`` overrides the static
    ``transform``; motion therefore changes only this node's constants.
    """

    name: str
    buffer: VertexBuffer
    texture: Texture = None
    shader: str = "lit_textured"
    tint: tuple = (1.0, 1.0, 1.0, 1.0)
    transform: np.ndarray = None
    transform_fn: typing.Callable = None
    cull_backfaces: bool = True

    def __post_init__(self) -> None:
        if self.shader not in PROGRAMS:
            raise PipelineError(f"unknown shader {self.shader!r}")
        if PROGRAMS[self.shader].texture_fetches > 0 and self.texture is None:
            raise PipelineError(
                f"node {self.name!r}: shader {self.shader!r} needs a texture"
            )
        if self.transform is None:
            self.transform = mat4.identity()

    def model_matrix(self, frame: int) -> np.ndarray:
        if self.transform_fn is not None:
            return np.asarray(self.transform_fn(frame), dtype=np.float32)
        return self.transform


class CameraPath3D:
    """Perspective camera along a parametric path.

    ``eye_fn(frame)`` and ``target_fn(frame)`` give the per-frame pose;
    defaults hold still (the RE-friendly case).
    """

    def __init__(self, fov_degrees: float = 60.0, aspect: float = 1.5,
                 near: float = 0.1, far: float = 50.0,
                 eye_fn: typing.Callable = None,
                 target_fn: typing.Callable = None) -> None:
        self.projection = mat4.perspective(
            math.radians(fov_degrees), aspect, near, far
        )
        self.eye_fn = eye_fn or (lambda frame: (0.0, 1.0, 3.0))
        self.target_fn = target_fn or (lambda frame: (0.0, 0.0, 0.0))

    def view_projection(self, frame: int) -> np.ndarray:
        view = mat4.look_at(self.eye_fn(frame), self.target_fn(frame))
        return mat4.compose(self.projection, view)

    def is_moving(self, frame: int) -> bool:
        return (
            tuple(self.eye_fn(frame)) != tuple(self.eye_fn(frame + 1))
            or tuple(self.target_fn(frame)) != tuple(self.target_fn(frame + 1))
        )


class Scene3D:
    """A list of mesh nodes under one perspective camera."""

    def __init__(self, nodes: typing.Sequence, camera: CameraPath3D,
                 light_direction=(0.4, 0.8, 0.5),
                 clear_color=(0.05, 0.05, 0.1, 1.0)) -> None:
        self.nodes = list(nodes)
        self.camera = camera
        self.light_direction = tuple(light_direction)
        self.clear_color = tuple(clear_color)
        for index, node in enumerate(self.nodes):
            if node.buffer.buffer_id == 0:
                node.buffer.buffer_id = 100 + index

    def command_stream(self, frame: int) -> CommandStream:
        view_projection = self.camera.view_projection(frame)
        stream = CommandStream()
        for node in self.nodes:
            mvp = mat4.compose(view_projection, node.model_matrix(frame))
            stream.set_shader(PROGRAMS[node.shader])
            if node.texture is not None:
                stream.set_texture(0, node.texture)
            params = (*self.light_direction, 0.0)
            stream.set_constants(
                pack_constants(mvp, tint=node.tint, params=params)
            )
            stream.draw(node.buffer, cull_backfaces=node.cull_backfaces)
        return stream

    def frames(self, count: int, start: int = 0):
        for frame in range(start, start + count):
            yield self.command_stream(frame)


def corridor_scene(moving: bool = True, aspect: float = 1.5) -> Scene3D:
    """A demo scene: an arena ring, a floor grid, and two boxes — one
    spinning, one static — under a camera that orbits when ``moving``.

    With ``moving=False`` the camera parks and only the spinning box
    changes: the RE-friendly configuration.
    """
    from ..textures import checker_texture, flat_texture, noise_texture

    wall_texture = checker_texture(
        (0.45, 0.4, 0.38, 1), (0.3, 0.27, 0.25, 1), texture_id=900,
        size=128, cells=16,
    )
    floor_texture = noise_texture(
        texture_id=901, size=128, seed=42,
        base_color=(0.35, 0.34, 0.38, 1.0), amplitude=0.3,
    )
    crate_texture = checker_texture(
        (0.7, 0.5, 0.3, 1), (0.5, 0.33, 0.18, 1), texture_id=902,
        size=64, cells=4,
    )
    marker_texture = flat_texture((0.8, 0.2, 0.2, 1.0), texture_id=903)

    def spin(frame: int) -> np.ndarray:
        return mat4.compose(
            mat4.translate(1.0, 0.5, 0.0), mat4.rotate_y(0.2 * frame)
        )

    nodes = [
        MeshNode("arena", ring_strip_buffer(radius=6.0, height=3.0,
                                            segments=24, uv_scale=6.0),
                 texture=wall_texture, cull_backfaces=False),
        MeshNode("floor", grid_buffer(12.0, 12.0, segments=10, uv_scale=6.0),
                 texture=floor_texture, cull_backfaces=False),
        MeshNode("spinner", box_buffer(1.0), texture=crate_texture,
                 transform_fn=spin),
        MeshNode("marker", box_buffer(0.6), texture=marker_texture,
                 transform=mat4.translate(-1.5, 0.3, 0.5)),
    ]

    if moving:
        def eye_fn(frame):
            angle = 0.05 * frame
            return (4.0 * math.cos(angle), 1.6, 4.0 * math.sin(angle))
    else:
        def eye_fn(frame):
            return (4.0, 1.6, 0.0)

    camera = CameraPath3D(
        fov_degrees=60.0, aspect=aspect, eye_fn=eye_fn,
        target_fn=lambda frame: (0.0, 0.6, 0.0),
    )
    return Scene3D(nodes, camera)
