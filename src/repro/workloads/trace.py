"""Command-stream trace record / replay (the Teapot trace analog).

Teapot intercepts an application's OpenGL command stream into a trace
file and replays it through the simulator.  This module does the same
for the simulator's command streams: frames serialize to JSON-lines
with resource tables (shader programs by name, textures and vertex
buffers by content digest) deduplicated across frames, so a 50-frame
trace of a mostly static game stays small.

Traces make runs portable between experiments: record once, replay
under any technique/config without rebuilding the scene logic.
"""

from __future__ import annotations

import base64
import json
import typing
import zlib

import numpy as np

from ..errors import TraceError
from ..geometry.primitives import VertexBuffer
from ..pipeline.commands import (
    CommandStream,
    Draw,
    SetConstants,
    SetShader,
    SetTexture,
    UploadShader,
    UploadTexture,
)
from ..shaders import PROGRAMS
from ..textures.texture import Texture

TRACE_VERSION = 1


def _encode_array(array: np.ndarray) -> dict:
    raw = np.ascontiguousarray(array)
    return {
        "dtype": str(raw.dtype),
        "shape": list(raw.shape),
        "data": base64.b64encode(zlib.compress(raw.tobytes())).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    raw = zlib.decompress(base64.b64decode(payload["data"]))
    return np.frombuffer(raw, dtype=payload["dtype"]).reshape(
        payload["shape"]
    ).copy()


class TraceWriter:
    """Serializes frames of command streams to a JSON-lines file."""

    def __init__(self, path) -> None:
        self.path = path
        self._textures: dict = {}   # id(texture) -> key
        self._buffers: dict = {}
        self._lines: list = [json.dumps({"type": "header",
                                         "version": TRACE_VERSION})]

    def _texture_key(self, texture: Texture) -> str:
        key = self._textures.get(id(texture))
        if key is None:
            key = f"tex{len(self._textures)}"
            self._textures[id(texture)] = key
            self._lines.append(json.dumps({
                "type": "texture",
                "key": key,
                "texture_id": texture.texture_id,
                "array": _encode_array(texture.data),
            }))
        return key

    def _buffer_key(self, buffer: VertexBuffer) -> str:
        key = self._buffers.get(id(buffer))
        if key is None:
            key = f"buf{len(self._buffers)}"
            self._buffers[id(buffer)] = key
            self._lines.append(json.dumps({
                "type": "buffer",
                "key": key,
                "buffer_id": buffer.buffer_id,
                "positions": _encode_array(buffer.positions),
                "indices": _encode_array(buffer.indices),
                "attributes": {
                    name: _encode_array(values)
                    for name, values in buffer.attributes.items()
                },
            }))
        return key

    def add_frame(self, stream: CommandStream) -> None:
        commands = []
        for command in stream:
            if isinstance(command, (SetShader, UploadShader)):
                commands.append({
                    "op": "upload_shader" if isinstance(command, UploadShader)
                    else "set_shader",
                    "program": command.program.name,
                })
            elif isinstance(command, (SetTexture, UploadTexture)):
                commands.append({
                    "op": "upload_texture"
                    if isinstance(command, UploadTexture) else "set_texture",
                    "unit": command.unit,
                    "texture": self._texture_key(command.texture),
                })
            elif isinstance(command, SetConstants):
                commands.append({
                    "op": "set_constants",
                    "values": command.values.tolist(),
                })
            elif isinstance(command, Draw):
                commands.append({
                    "op": "draw",
                    "buffer": self._buffer_key(command.buffer),
                    "cull_backfaces": command.cull_backfaces,
                    "depth_test": command.depth_test,
                    "depth_write": command.depth_write,
                })
            else:  # pragma: no cover - CommandStream validates
                raise TraceError(f"cannot trace command {command!r}")
        self._lines.append(json.dumps({"type": "frame", "commands": commands}))

    def save(self) -> None:
        with open(self.path, "w") as handle:
            handle.write("\n".join(self._lines) + "\n")


def record_trace(path, frames: typing.Iterable) -> int:
    """Record an iterable of CommandStreams; returns the frame count."""
    writer = TraceWriter(path)
    count = 0
    for stream in frames:
        writer.add_frame(stream)
        count += 1
    writer.save()
    return count


class TraceReader:
    """Loads a trace and reconstructs per-frame CommandStreams."""

    def __init__(self, path) -> None:
        self.path = path
        self._textures: dict = {}
        self._buffers: dict = {}
        self.frames: list = []
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                lines = [json.loads(line) for line in handle if line.strip()]
        except (OSError, json.JSONDecodeError) as exc:
            raise TraceError(f"cannot read trace {self.path}: {exc}") from exc
        if not lines or lines[0].get("type") != "header":
            raise TraceError("trace missing header line")
        if lines[0].get("version") != TRACE_VERSION:
            raise TraceError(
                f"unsupported trace version {lines[0].get('version')}"
            )
        for entry in lines[1:]:
            kind = entry.get("type")
            if kind == "texture":
                self._textures[entry["key"]] = Texture(
                    _decode_array(entry["array"]), entry["texture_id"]
                )
            elif kind == "buffer":
                buffer = VertexBuffer(
                    _decode_array(entry["positions"]),
                    _decode_array(entry["indices"]),
                    {
                        name: _decode_array(values)
                        for name, values in entry["attributes"].items()
                    },
                    buffer_id=entry["buffer_id"],
                )
                self._buffers[entry["key"]] = buffer
            elif kind == "frame":
                self.frames.append(entry["commands"])
            else:
                raise TraceError(f"unknown trace entry type {kind!r}")

    def __len__(self) -> int:
        return len(self.frames)

    def command_stream(self, frame: int) -> CommandStream:
        if not (0 <= frame < len(self.frames)):
            raise TraceError(f"frame {frame} out of range")
        stream = CommandStream()
        for entry in self.frames[frame]:
            op = entry["op"]
            if op in ("set_shader", "upload_shader"):
                program = PROGRAMS.get(entry["program"])
                if program is None:
                    raise TraceError(f"unknown program {entry['program']!r}")
                stream.append(
                    UploadShader(program) if op == "upload_shader"
                    else SetShader(program)
                )
            elif op in ("set_texture", "upload_texture"):
                texture = self._textures.get(entry["texture"])
                if texture is None:
                    raise TraceError(f"unknown texture {entry['texture']!r}")
                stream.append(
                    UploadTexture(entry["unit"], texture)
                    if op == "upload_texture"
                    else SetTexture(entry["unit"], texture)
                )
            elif op == "set_constants":
                stream.set_constants(np.asarray(entry["values"], np.float32))
            elif op == "draw":
                stream.draw(
                    self._buffers[entry["buffer"]],
                    cull_backfaces=entry["cull_backfaces"],
                    depth_test=entry["depth_test"],
                    depth_write=entry["depth_write"],
                )
            else:
                raise TraceError(f"unknown trace op {op!r}")
        return stream

    def replay(self):
        """Yield every frame's CommandStream in order."""
        for frame in range(len(self.frames)):
            yield self.command_stream(frame)
