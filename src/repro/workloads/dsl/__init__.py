"""Declarative workload DSL: data-driven scene + camera scripts.

A workload is a JSON or YAML document (see :mod:`.schema` for the
versioned schema) describing a 2D scene — nodes, textures, a camera and
animation hooks — that expands deterministically into the same
:class:`~repro.workloads.scene.Scene` command streams the hard-coded
Table II games compile to.  New benchmark scenarios are therefore data
files dropped into a search path (:mod:`.registry`), not code in
``games.py``.

Layers:

* :mod:`.loader` — parse JSON/YAML with per-key line attribution, so
  validation errors carry ``file:line`` plus the offending key path;
* :mod:`.schema` — typed validation + normalization to the canonical
  document form (the form :func:`dumps` round-trips);
* :mod:`.expand` — canonical document → :class:`Scene` (pure function
  of the document: expansion is deterministic across processes);
* :mod:`.registry` — alias → scene-file discovery over the committed
  pack directory, ``./workloads`` and ``$REPRO_WORKLOAD_PATH``.
"""

from .expand import expand_scene
from .loader import WorkloadDoc, dumps, load_document, load_path, loads
from .registry import (
    DEFAULT_USER_DIR,
    PACK_DIR,
    WORKLOAD_PATH_ENV,
    add_workload_file,
    build_dsl_scene,
    discover,
    dsl_aliases,
    is_dsl_alias,
    load_dsl_workload,
    register_search_dir,
    workload_native_config,
    workload_native_frames,
)
from .schema import SCHEMA_VERSION, validate_document

__all__ = [
    "DEFAULT_USER_DIR",
    "PACK_DIR",
    "SCHEMA_VERSION",
    "WORKLOAD_PATH_ENV",
    "WorkloadDoc",
    "add_workload_file",
    "build_dsl_scene",
    "discover",
    "dsl_aliases",
    "dumps",
    "expand_scene",
    "is_dsl_alias",
    "load_document",
    "load_dsl_workload",
    "load_path",
    "loads",
    "register_search_dir",
    "validate_document",
    "workload_native_config",
    "workload_native_frames",
]
