"""Parse workload documents with per-key line attribution.

JSON is a subset of YAML, so both formats go through one mark-recording
YAML pass when PyYAML is importable: every mapping/sequence in the
parsed tree is a :class:`LinedMap`/:class:`LinedList` carrying the
1-based source line of the node and of each key/item, which is what
lets :mod:`.schema` raise errors naming the exact ``file:line``.
Without PyYAML (the dependency is optional) JSON documents still load
through the stdlib parser — lines degrade to ``None`` for semantic
errors but stay precise for syntax errors.
"""

from __future__ import annotations

import dataclasses
import json
import os

from ...errors import WorkloadValidationError

try:  # optional dependency; JSON workloads work without it
    import yaml
except ImportError:  # pragma: no cover - exercised only on bare images
    yaml = None

__all__ = [
    "LinedList",
    "LinedMap",
    "WorkloadDoc",
    "dumps",
    "load_document",
    "load_path",
    "loads",
]


class LinedMap(dict):
    """A dict remembering the source line of itself and each key."""

    __slots__ = ("line", "key_lines")

    def __init__(self, line=None) -> None:
        super().__init__()
        self.line = line
        self.key_lines = {}

    def line_of(self, key):
        return self.key_lines.get(key, self.line)


class LinedList(list):
    """A list remembering the source line of itself and each item."""

    __slots__ = ("line", "item_lines")

    def __init__(self, line=None) -> None:
        super().__init__()
        self.line = line
        self.item_lines = []

    def line_of(self, index):
        if 0 <= index < len(self.item_lines):
            return self.item_lines[index]
        return self.line


def _convert_node(loader, node, source):
    if yaml is not None and isinstance(node, yaml.MappingNode):
        mapping = LinedMap(line=node.start_mark.line + 1)
        for key_node, value_node in node.value:
            key = loader.construct_object(key_node, deep=True)
            if not isinstance(key, str):
                raise WorkloadValidationError(
                    f"mapping keys must be strings, got {key!r}",
                    line=key_node.start_mark.line + 1, source=source,
                )
            if key in mapping:
                raise WorkloadValidationError(
                    f"duplicate key {key!r} (first defined at line "
                    f"{mapping.key_lines[key]})",
                    line=key_node.start_mark.line + 1, source=source,
                )
            mapping[key] = _convert_node(loader, value_node, source)
            mapping.key_lines[key] = key_node.start_mark.line + 1
        return mapping
    if yaml is not None and isinstance(node, yaml.SequenceNode):
        sequence = LinedList(line=node.start_mark.line + 1)
        for item_node in node.value:
            sequence.append(_convert_node(loader, item_node, source))
            sequence.item_lines.append(item_node.start_mark.line + 1)
        return sequence
    return loader.construct_object(node, deep=True)


def _parse_yaml(text: str, source):
    loader = yaml.SafeLoader(text)
    try:
        node = loader.get_single_node()
    except yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        raise WorkloadValidationError(
            f"syntax error: {getattr(exc, 'problem', exc)}",
            line=(mark.line + 1) if mark is not None else None,
            source=source,
        ) from None
    finally:
        loader.dispose()
    if node is None:
        raise WorkloadValidationError("empty document", source=source)
    return _convert_node(loader, node, source)


def _parse_json(text: str, source):
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadValidationError(
            f"syntax error: {exc.msg}", line=exc.lineno, source=source,
        ) from None


def parse_text(text: str, source=None):
    """Parse a JSON/YAML document into (lined) python structures."""
    if yaml is not None:
        return _parse_yaml(text, source)
    return _parse_json(text, source)


@dataclasses.dataclass(frozen=True)
class WorkloadDoc:
    """A validated workload: its canonical document plus provenance.

    ``data`` is the *normalized* document — every optional field filled
    with its default, every number coerced to its schema type — which is
    the form :func:`dumps` serializes and the expander consumes.  Two
    docs are interchangeable iff their ``data`` compare equal.
    """

    data: dict
    source: str = None

    @property
    def name(self) -> str:
        return self.data["name"]

    @property
    def defaults(self) -> dict:
        return self.data.get("defaults", {})

    def dump(self) -> str:
        return dumps(self.data)


def loads(text: str, source=None) -> WorkloadDoc:
    """Parse **and validate** a workload document from a string."""
    from .schema import validate_document

    raw = parse_text(text, source=source)
    data = validate_document(raw, source=source)
    return WorkloadDoc(data=data, source=str(source) if source else None)


def dumps(data) -> str:
    """Canonical serialization of a (normalized) document.

    Emitted as sorted-key JSON — which is also valid YAML, so the output
    reloads through the same :func:`loads` path on any install.  For a
    normalized document ``loads(dumps(doc.data)).data == doc.data``
    exactly (the round-trip property test pins this).
    """
    if isinstance(data, WorkloadDoc):
        data = data.data
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def load_path(path) -> WorkloadDoc:
    """Load and validate the workload document at ``path``."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        from ...errors import WorkloadError

        raise WorkloadError(f"cannot read workload file {path!r}: {exc}") from None
    return loads(text, source=path)


#: Cache of parsed documents keyed by (path, mtime_ns, size).
_DOC_CACHE: dict = {}


def load_document(path) -> WorkloadDoc:
    """Like :func:`load_path` but cached on the file's (mtime, size).

    Scene expansion re-reads the doc on every ``build_scene`` call (warm
    pools, sweeps and figure caches build many scenes); the cache makes
    that free while still picking up edits.
    """
    path = os.fspath(path)
    try:
        stat = os.stat(path)
        key = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
    except OSError:
        return load_path(path)
    cached = _DOC_CACHE.get(key)
    if cached is None:
        cached = load_path(path)
        _DOC_CACHE[key] = cached
        if len(_DOC_CACHE) > 256:
            _DOC_CACHE.pop(next(iter(_DOC_CACHE)))
    return cached
