"""Expand a canonical workload document into a :class:`Scene`.

Expansion is a pure function of the canonical document: animation hooks
are closures over the document's numbers only, textures are procedural
with ids derived from a stable hash of the workload name (keeping every
DSL workload's simulated texture address space disjoint from the
builtin suite and from other DSL workloads), and nodes are emitted in
document order.  Two processes expanding the same document therefore
produce bit-identical command streams — the cross-process determinism
property test pins this down to per-tile CRCs.
"""

from __future__ import annotations

import math
import zlib

from ...textures import (
    checker_texture,
    flat_texture,
    gradient_texture,
    noise_texture,
)
from ..camera import (
    ContinuousCamera,
    EpisodicCamera,
    ShakeCamera,
    StaticCamera,
)
from ..scene import QuadNode, Scene

__all__ = ["dsl_texture_base_id", "expand_scene"]

#: DSL texture ids start far above the builtin suite's strided ranges
#: (12 builtins x stride 64) so address spaces never collide.
_DSL_TEXTURE_ID_FLOOR = 1 << 20
#: Per-workload stride: up to this many textures per document.
_DSL_TEXTURE_ID_STRIDE = 64


def dsl_texture_base_id(name: str) -> int:
    """Deterministic texture-id base for a workload name."""
    return (_DSL_TEXTURE_ID_FLOOR
            + (zlib.crc32(name.encode("utf-8")) & 0xFFFF)
            * _DSL_TEXTURE_ID_STRIDE)


# ----------------------------------------------------------------------
# Animation closures (the same math as games.py's private helpers, kept
# local so the data-driven layer never imports the hard-coded suite)
# ----------------------------------------------------------------------

def _make_position_fn(spec):
    kind = spec["type"]
    if kind == "orbit":
        cx, cy = spec["cx"], spec["cy"]
        radius, period = spec["radius"], spec["period"]

        def position_fn(frame):
            angle = 2.0 * math.pi * frame / period
            return (cx + radius * math.cos(angle),
                    cy + radius * math.sin(angle))
        return position_fn
    if kind == "sweep":
        speed, span, axis = spec["speed"], spec["span"], spec["axis"]

        def position_fn(frame):
            t = (frame * speed) % (2.0 * span)
            offset = t if t <= span else 2.0 * span - t
            return (offset, 0.0) if axis == "x" else (0.0, offset)
        return position_fn
    # swing
    amplitude, period = spec["amplitude"], spec["period"]

    def position_fn(frame):
        angle = amplitude * math.sin(2.0 * math.pi * frame / period)
        return (angle, abs(angle) * 0.4)
    return position_fn


def _make_tint_fn(spec):
    period, delta = spec["period"], spec["delta"]
    base = tuple(spec["base"])

    def tint_fn(frame):
        level = delta * math.sin(2.0 * math.pi * frame / period)
        return (base[0] + level, base[1] + level, base[2], base[3])
    return tint_fn


def _make_active_fn(spec):
    period, duty = spec["period"], spec["duty"]

    def active_fn(frame):
        return frame % period < duty
    return active_fn


def _build_textures(document) -> dict:
    base = dsl_texture_base_id(document["name"])
    textures = {}
    for index, spec in enumerate(document["textures"]):
        texture_id = base + index + 1
        kind = spec["type"]
        if kind == "flat":
            texture = flat_texture(tuple(spec["color"]), texture_id)
        elif kind == "checker":
            texture = checker_texture(
                tuple(spec["colors"][0]), tuple(spec["colors"][1]),
                texture_id, size=spec["size"], cells=spec["cells"],
            )
        elif kind == "gradient":
            texture = gradient_texture(
                tuple(spec["colors"][0]), tuple(spec["colors"][1]),
                texture_id, size=spec["size"],
            )
        else:  # noise
            texture = noise_texture(
                texture_id, size=spec["size"], seed=spec["seed"],
                base_color=tuple(spec["base"]), amplitude=spec["amplitude"],
            )
        textures[spec["name"]] = texture
    return textures


def _build_camera(spec):
    kind = spec["type"]
    if kind == "static":
        return StaticCamera()
    if kind == "continuous":
        return ContinuousCamera(
            speed=spec["speed"], yaw_amplitude=spec["yaw_amplitude"],
            yaw_period=spec["yaw_period"],
        )
    if kind == "shake":
        return ShakeCamera(
            period=spec["period"], magnitude=spec["magnitude"],
            burst=spec["burst"],
        )
    return EpisodicCamera([tuple(episode) for episode in spec["episodes"]])


def expand_scene(document) -> Scene:
    """Canonical document → a fresh :class:`Scene` (new node/texture
    state every call, matching the builtin builders' contract)."""
    data = getattr(document, "data", document)
    textures = _build_textures(data)
    nodes = []
    for spec in data["nodes"]:
        animate = spec["animate"]
        nodes.append(QuadNode(
            spec["name"],
            tuple(spec["rect"]),
            z=spec["z"],
            shader=spec["shader"],
            texture=textures[spec["texture"]] if spec.get("texture") else None,
            tint=tuple(spec["tint"]),
            uv_scale=spec["uv_scale"],
            subdivide=spec["subdivide"],
            camera_affected=spec["camera_affected"],
            camera_uv=spec["camera_uv"],
            depth_test=spec["depth_test"],
            depth_write=spec["depth_write"],
            position_fn=_make_position_fn(animate["position"])
            if "position" in animate else None,
            tint_fn=_make_tint_fn(animate["tint"])
            if "tint" in animate else None,
            active_fn=_make_active_fn(animate["active"])
            if "active" in animate else None,
        ))
    return Scene(
        nodes, _build_camera(data["camera"]),
        clear_color=tuple(data["clear_color"]),
    )
