"""Versioned schema + typed validation for workload documents.

:func:`validate_document` takes the raw parsed structure (ideally the
lined form from :mod:`.loader`, so errors carry source lines) and
returns the **canonical document**: a plain-``dict`` tree with every
optional field filled with its default and every number coerced to the
schema's type.  All validation failures raise
:class:`~repro.errors.WorkloadValidationError` naming the offending
key path and, when the parser attributed one, the source line.

Schema v1 (``version: 1``, ``kind: scene2d``)::

    version: 1
    name: ui-settings            # workload alias ([a-z0-9][a-z0-9_-]*)
    kind: scene2d
    description: free text       # optional
    defaults:                    # optional, advisory native parameters
      frames: 500                #   run length `repro run --native` uses
      screen: [1920, 1080]       #   native resolution
      tile_size: 16              #   native tile size
    clear_color: [r, g, b, a]
    camera:                      # one of four camera models
      type: static | continuous | episodic | shake
      ...per-type parameters (see _validate_camera)
    textures:                    # named procedural textures
      - {name: chrome, type: flat|checker|gradient|noise, ...}
    nodes:                       # drawn in document order
      - name: panel
        rect: [x0, y0, x1, y1]   # normalized screen coordinates
        z: 0.5                   # smaller = closer
        shader: flat | textured | scrolling | lit | alpha
        texture: chrome          # ref into textures[] (required by
                                 # every shader except flat)
        tint / uv_scale / subdivide / camera_affected / camera_uv /
        depth_test / depth_write # optional knobs
        animate:                 # optional, all keys optional
          position: {type: orbit|sweep|swing, ...}
          tint:     {type: pulse, ...}
          active:   {type: blink, ...}
"""

from __future__ import annotations

from ...errors import WorkloadValidationError

__all__ = [
    "ANIMATION_TYPES",
    "CAMERA_TYPES",
    "SCHEMA_VERSION",
    "SHADERS",
    "TEXTURE_TYPES",
    "validate_document",
]

SCHEMA_VERSION = 1

#: Mirrors :data:`repro.workloads.scene.SHADER_ALIASES`.
SHADERS = ("flat", "textured", "scrolling", "lit", "alpha")
CAMERA_TYPES = ("static", "continuous", "episodic", "shake")
TEXTURE_TYPES = ("flat", "checker", "gradient", "noise")
ANIMATION_TYPES = {
    "position": ("orbit", "sweep", "swing"),
    "tint": ("pulse",),
    "active": ("blink",),
}

_MAX_NODES = 256
_MAX_TEXTURES = 64
_MAX_SUBDIVIDE = 32


def _line(container, key):
    """Best-effort source line of ``container[key]`` (None when the
    document was parsed without line attribution)."""
    line_of = getattr(container, "line_of", None)
    if line_of is not None:
        return line_of(key)
    return None


class _Ctx:
    """Validation context: source path for error prefixes."""

    def __init__(self, source) -> None:
        self.source = source

    def fail(self, message, path, container=None, key=None):
        line = _line(container, key) if container is not None else None
        raise WorkloadValidationError(
            message, path=path, line=line, source=self.source,
        )


def _require_map(value, ctx, path, container, key):
    if not isinstance(value, dict):
        ctx.fail(f"expected a mapping, got {type(value).__name__}",
                 path, container, key)
    return value


def _require_list(value, ctx, path, container, key):
    if not isinstance(value, list):
        ctx.fail(f"expected a list, got {type(value).__name__}",
                 path, container, key)
    return value


def _unknown_keys(mapping, allowed, ctx, path):
    for key in mapping:
        if key not in allowed:
            ctx.fail(
                f"unknown key {key!r} (allowed: {', '.join(sorted(allowed))})",
                f"{path}.{key}" if path else key, mapping, key,
            )


def _number(value, ctx, path, container, key, kind=float,
            minimum=None, maximum=None):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        ctx.fail(f"expected a number, got {value!r}", path, container, key)
    if kind is int and not isinstance(value, int):
        ctx.fail(f"expected an integer, got {value!r}", path, container, key)
    value = kind(value)
    if minimum is not None and value < minimum:
        ctx.fail(f"must be >= {minimum}, got {value}", path, container, key)
    if maximum is not None and value > maximum:
        ctx.fail(f"must be <= {maximum}, got {value}", path, container, key)
    return value


def _boolean(value, ctx, path, container, key):
    if not isinstance(value, bool):
        ctx.fail(f"expected true/false, got {value!r}", path, container, key)
    return value


def _string(value, ctx, path, container, key, choices=None):
    if not isinstance(value, str):
        ctx.fail(f"expected a string, got {value!r}", path, container, key)
    if choices is not None and value not in choices:
        ctx.fail(f"expected one of {', '.join(choices)}; got {value!r}",
                 path, container, key)
    return value


def _color(value, ctx, path, container, key):
    value = _require_list(value, ctx, path, container, key)
    if len(value) != 4:
        ctx.fail(f"expected 4 color components [r, g, b, a], got "
                 f"{len(value)}", path, container, key)
    return [
        _number(component, ctx, f"{path}[{i}]", value, i)
        for i, component in enumerate(value)
    ]


def _alias_ok(name: str) -> bool:
    if not name or not (name[0].isalnum() and name[0].lower() == name[0]):
        return False
    return all(ch.isalnum() and ch.lower() == ch or ch in "_-"
               for ch in name)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------

def _validate_defaults(raw, ctx):
    defaults = _require_map(raw, ctx, "defaults", None, None)
    _unknown_keys(defaults, {"frames", "screen", "tile_size"}, ctx, "defaults")
    out = {}
    if "frames" in defaults:
        out["frames"] = _number(defaults["frames"], ctx, "defaults.frames",
                                defaults, "frames", kind=int, minimum=1)
    if "screen" in defaults:
        screen = _require_list(defaults["screen"], ctx, "defaults.screen",
                               defaults, "screen")
        if len(screen) != 2:
            ctx.fail(f"expected [width, height], got {len(screen)} items",
                     "defaults.screen", defaults, "screen")
        out["screen"] = [
            _number(screen[i], ctx, f"defaults.screen[{i}]", screen, i,
                    kind=int, minimum=16)
            for i in range(2)
        ]
    if "tile_size" in defaults:
        out["tile_size"] = _number(
            defaults["tile_size"], ctx, "defaults.tile_size", defaults,
            "tile_size", kind=int, minimum=4,
        )
    return out


def _validate_camera(raw, ctx):
    camera = _require_map(raw, ctx, "camera", None, None)
    kind = _string(camera.get("type", "static"), ctx, "camera.type",
                   camera, "type", choices=CAMERA_TYPES)
    out = {"type": kind}
    if kind == "static":
        _unknown_keys(camera, {"type"}, ctx, "camera")
    elif kind == "continuous":
        _unknown_keys(camera, {"type", "speed", "yaw_amplitude",
                               "yaw_period"}, ctx, "camera")
        out["speed"] = _number(camera.get("speed", 0.01), ctx,
                               "camera.speed", camera, "speed")
        out["yaw_amplitude"] = _number(
            camera.get("yaw_amplitude", 0.15), ctx,
            "camera.yaw_amplitude", camera, "yaw_amplitude")
        out["yaw_period"] = _number(
            camera.get("yaw_period", 24), ctx, "camera.yaw_period",
            camera, "yaw_period", kind=int, minimum=1)
    elif kind == "shake":
        _unknown_keys(camera, {"type", "period", "magnitude", "burst"},
                      ctx, "camera")
        out["period"] = _number(camera.get("period", 16), ctx,
                                "camera.period", camera, "period",
                                kind=int, minimum=1)
        out["magnitude"] = _number(camera.get("magnitude", 0.03), ctx,
                                   "camera.magnitude", camera, "magnitude")
        out["burst"] = _number(camera.get("burst", 2), ctx, "camera.burst",
                               camera, "burst", kind=int, minimum=1)
    else:  # episodic
        _unknown_keys(camera, {"type", "episodes"}, ctx, "camera")
        if "episodes" not in camera:
            ctx.fail("episodic camera needs an 'episodes' list",
                     "camera.episodes", camera, "type")
        episodes = _require_list(camera["episodes"], ctx, "camera.episodes",
                                 camera, "episodes")
        out_episodes = []
        for i, episode in enumerate(episodes):
            path = f"camera.episodes[{i}]"
            episode = _require_list(episode, ctx, path, episodes, i)
            if len(episode) != 4:
                ctx.fail("expected [start_frame, end_frame, vx, vy]",
                         path, episodes, i)
            start = _number(episode[0], ctx, f"{path}[0]", episode, 0,
                            kind=int, minimum=0)
            end = _number(episode[1], ctx, f"{path}[1]", episode, 1,
                          kind=int, minimum=0)
            if end <= start:
                ctx.fail(f"end_frame {end} must exceed start_frame {start}",
                         path, episodes, i)
            out_episodes.append([
                start, end,
                _number(episode[2], ctx, f"{path}[2]", episode, 2),
                _number(episode[3], ctx, f"{path}[3]", episode, 3),
            ])
        out["episodes"] = out_episodes
    return out


def _validate_texture(raw, ctx, index, seen):
    path = f"textures[{index}]"
    texture = _require_map(raw, ctx, path, None, None)
    name = _string(texture.get("name"), ctx, f"{path}.name",
                   texture, "name") if "name" in texture else ctx.fail(
        "texture needs a 'name'", f"{path}.name", texture, "type")
    if name in seen:
        ctx.fail(f"duplicate texture name {name!r}", f"{path}.name",
                 texture, "name")
    seen.add(name)
    kind = _string(texture.get("type"), ctx, f"{path}.type", texture,
                   "type", choices=TEXTURE_TYPES) if "type" in texture \
        else ctx.fail("texture needs a 'type'", f"{path}.type",
                      texture, "name")
    out = {"name": name, "type": kind}
    if kind == "flat":
        _unknown_keys(texture, {"name", "type", "color"}, ctx, path)
        if "color" not in texture:
            ctx.fail("flat texture needs a 'color'", f"{path}.color",
                     texture, "type")
        out["color"] = _color(texture["color"], ctx, f"{path}.color",
                              texture, "color")
        return out
    size_default = 64
    out["size"] = _number(texture.get("size", size_default), ctx,
                          f"{path}.size", texture, "size", kind=int,
                          minimum=2, maximum=1024)
    if kind == "checker":
        _unknown_keys(texture, {"name", "type", "colors", "cells", "size"},
                      ctx, path)
        colors = _require_list(texture.get("colors", None), ctx,
                               f"{path}.colors", texture, "colors") \
            if "colors" in texture else ctx.fail(
                "checker texture needs 'colors' [[a], [b]]",
                f"{path}.colors", texture, "type")
        if len(colors) != 2:
            ctx.fail("expected exactly 2 colors", f"{path}.colors",
                     texture, "colors")
        out["colors"] = [
            _color(colors[i], ctx, f"{path}.colors[{i}]", colors, i)
            for i in range(2)
        ]
        out["cells"] = _number(texture.get("cells", 8), ctx,
                               f"{path}.cells", texture, "cells",
                               kind=int, minimum=1, maximum=64)
    elif kind == "gradient":
        _unknown_keys(texture, {"name", "type", "colors", "size"}, ctx, path)
        colors = _require_list(texture.get("colors", None), ctx,
                               f"{path}.colors", texture, "colors") \
            if "colors" in texture else ctx.fail(
                "gradient texture needs 'colors' [[top], [bottom]]",
                f"{path}.colors", texture, "type")
        if len(colors) != 2:
            ctx.fail("expected exactly 2 colors (top, bottom)",
                     f"{path}.colors", texture, "colors")
        out["colors"] = [
            _color(colors[i], ctx, f"{path}.colors[{i}]", colors, i)
            for i in range(2)
        ]
    else:  # noise
        _unknown_keys(texture, {"name", "type", "seed", "base",
                                "amplitude", "size"}, ctx, path)
        out["seed"] = _number(texture.get("seed", 0), ctx, f"{path}.seed",
                              texture, "seed", kind=int, minimum=0)
        out["base"] = _color(texture.get("base", [0.5, 0.5, 0.5, 1.0]),
                             ctx, f"{path}.base", texture, "base")
        out["amplitude"] = _number(texture.get("amplitude", 0.5), ctx,
                                   f"{path}.amplitude", texture, "amplitude")
    return out


def _validate_animation(raw, ctx, path):
    animate = _require_map(raw, ctx, path, None, None)
    _unknown_keys(animate, set(ANIMATION_TYPES), ctx, path)
    out = {}
    if "position" in animate:
        spec_path = f"{path}.position"
        spec = _require_map(animate["position"], ctx, spec_path,
                            animate, "position")
        kind = _string(spec.get("type"), ctx, f"{spec_path}.type", spec,
                       "type", choices=ANIMATION_TYPES["position"]) \
            if "type" in spec else ctx.fail(
                "position animation needs a 'type'", f"{spec_path}.type",
                animate, "position")
        entry = {"type": kind}
        if kind == "orbit":
            _unknown_keys(spec, {"type", "cx", "cy", "radius", "period"},
                          ctx, spec_path)
            entry["cx"] = _number(spec.get("cx", 0.0), ctx,
                                  f"{spec_path}.cx", spec, "cx")
            entry["cy"] = _number(spec.get("cy", 0.0), ctx,
                                  f"{spec_path}.cy", spec, "cy")
            entry["radius"] = _number(spec.get("radius", 0.05), ctx,
                                      f"{spec_path}.radius", spec, "radius")
            entry["period"] = _number(spec.get("period", 16), ctx,
                                      f"{spec_path}.period", spec, "period",
                                      kind=int, minimum=1)
        elif kind == "sweep":
            _unknown_keys(spec, {"type", "speed", "span", "axis"},
                          ctx, spec_path)
            entry["speed"] = _number(spec.get("speed", 0.01), ctx,
                                     f"{spec_path}.speed", spec, "speed")
            entry["span"] = _number(spec.get("span", 0.2), ctx,
                                    f"{spec_path}.span", spec, "span")
            if entry["span"] <= 0:
                ctx.fail(f"sweep span must be > 0, got {entry['span']}",
                         f"{spec_path}.span", spec, "span")
            entry["axis"] = _string(spec.get("axis", "x"), ctx,
                                    f"{spec_path}.axis", spec, "axis",
                                    choices=("x", "y"))
        else:  # swing
            _unknown_keys(spec, {"type", "amplitude", "period"},
                          ctx, spec_path)
            entry["amplitude"] = _number(spec.get("amplitude", 0.2), ctx,
                                         f"{spec_path}.amplitude", spec,
                                         "amplitude")
            entry["period"] = _number(spec.get("period", 24), ctx,
                                      f"{spec_path}.period", spec, "period",
                                      kind=int, minimum=1)
        out["position"] = entry
    if "tint" in animate:
        spec_path = f"{path}.tint"
        spec = _require_map(animate["tint"], ctx, spec_path, animate, "tint")
        _string(spec.get("type"), ctx, f"{spec_path}.type", spec, "type",
                choices=ANIMATION_TYPES["tint"]) \
            if "type" in spec else ctx.fail(
                "tint animation needs a 'type'", f"{spec_path}.type",
                animate, "tint")
        _unknown_keys(spec, {"type", "period", "base", "delta"},
                      ctx, spec_path)
        if "base" not in spec:
            ctx.fail("pulse animation needs a 'base' color",
                     f"{spec_path}.base", spec, "type")
        out["tint"] = {
            "type": "pulse",
            "period": _number(spec.get("period", 8), ctx,
                              f"{spec_path}.period", spec, "period",
                              kind=int, minimum=1),
            "base": _color(spec["base"], ctx, f"{spec_path}.base",
                           spec, "base"),
            "delta": _number(spec.get("delta", 0.1), ctx,
                             f"{spec_path}.delta", spec, "delta"),
        }
    if "active" in animate:
        spec_path = f"{path}.active"
        spec = _require_map(animate["active"], ctx, spec_path,
                            animate, "active")
        _string(spec.get("type"), ctx, f"{spec_path}.type", spec, "type",
                choices=ANIMATION_TYPES["active"]) \
            if "type" in spec else ctx.fail(
                "active animation needs a 'type'", f"{spec_path}.type",
                animate, "active")
        _unknown_keys(spec, {"type", "period", "duty"}, ctx, spec_path)
        period = _number(spec.get("period", 16), ctx, f"{spec_path}.period",
                         spec, "period", kind=int, minimum=2)
        duty = _number(spec.get("duty", period // 2), ctx,
                       f"{spec_path}.duty", spec, "duty", kind=int,
                       minimum=1)
        if duty >= period:
            ctx.fail(f"duty {duty} must be < period {period}",
                     f"{spec_path}.duty", spec, "duty")
        out["active"] = {"type": "blink", "period": period, "duty": duty}
    return out


_NODE_KEYS = {
    "name", "rect", "z", "shader", "texture", "tint", "uv_scale",
    "subdivide", "camera_affected", "camera_uv", "depth_test",
    "depth_write", "animate",
}


def _validate_node(raw, ctx, index, texture_names, seen):
    path = f"nodes[{index}]"
    node = _require_map(raw, ctx, path, None, None)
    _unknown_keys(node, _NODE_KEYS, ctx, path)
    if "name" not in node:
        ctx.fail("node needs a 'name'", f"{path}.name", node,
                 next(iter(node), None))
    name = _string(node["name"], ctx, f"{path}.name", node, "name")
    if name in seen:
        ctx.fail(f"duplicate node name {name!r}", f"{path}.name",
                 node, "name")
    seen.add(name)
    if "rect" not in node:
        ctx.fail("node needs a 'rect' [x0, y0, x1, y1]", f"{path}.rect",
                 node, "name")
    rect = _require_list(node["rect"], ctx, f"{path}.rect", node, "rect")
    if len(rect) != 4:
        ctx.fail(f"expected 4 numbers [x0, y0, x1, y1], got {len(rect)}",
                 f"{path}.rect", node, "rect")
    rect = [
        _number(rect[i], ctx, f"{path}.rect[{i}]", rect, i)
        for i in range(4)
    ]
    if not (rect[0] < rect[2] and rect[1] < rect[3]):
        ctx.fail(f"empty rect {rect}: x0 < x1 and y0 < y1 required",
                 f"{path}.rect", node, "rect")
    shader = _string(node.get("shader", "flat"), ctx, f"{path}.shader",
                     node, "shader", choices=SHADERS)
    texture = None
    if "texture" in node:
        texture = _string(node["texture"], ctx, f"{path}.texture",
                          node, "texture")
        if texture not in texture_names:
            known = ", ".join(sorted(texture_names)) or "none defined"
            ctx.fail(f"unknown texture {texture!r} (textures: {known})",
                     f"{path}.texture", node, "texture")
    if shader != "flat" and texture is None:
        ctx.fail(f"shader {shader!r} needs a 'texture' reference",
                 f"{path}.shader", node, "shader")
    out = {
        "name": name,
        "rect": rect,
        "z": _number(node.get("z", 0.5), ctx, f"{path}.z", node, "z",
                     minimum=0.0, maximum=1.0),
        "shader": shader,
        "tint": _color(node.get("tint", [1.0, 1.0, 1.0, 1.0]), ctx,
                       f"{path}.tint", node, "tint"),
        "uv_scale": _number(node.get("uv_scale", 1.0), ctx,
                            f"{path}.uv_scale", node, "uv_scale"),
        "subdivide": _number(node.get("subdivide", 1), ctx,
                             f"{path}.subdivide", node, "subdivide",
                             kind=int, minimum=1, maximum=_MAX_SUBDIVIDE),
        "camera_affected": _boolean(node.get("camera_affected", True), ctx,
                                    f"{path}.camera_affected", node,
                                    "camera_affected"),
        "camera_uv": _boolean(node.get("camera_uv", False), ctx,
                              f"{path}.camera_uv", node, "camera_uv"),
        "depth_test": _boolean(node.get("depth_test", True), ctx,
                               f"{path}.depth_test", node, "depth_test"),
        "depth_write": _boolean(node.get("depth_write", True), ctx,
                                f"{path}.depth_write", node, "depth_write"),
        "animate": _validate_animation(node.get("animate", {}), ctx,
                                       f"{path}.animate")
        if node.get("animate") else {},
    }
    if texture is not None:
        out["texture"] = texture
    return out


_TOP_KEYS = {
    "version", "name", "kind", "description", "defaults", "clear_color",
    "camera", "textures", "nodes",
}


def validate_document(raw, source=None) -> dict:
    """Validate a parsed workload document; return its canonical form."""
    ctx = _Ctx(source)
    document = _require_map(raw, ctx, "<document>", None, None)
    _unknown_keys(document, _TOP_KEYS, ctx, "")
    if "version" not in document:
        ctx.fail(f"missing required key 'version' (current: "
                 f"{SCHEMA_VERSION})", "version", document,
                 next(iter(document), None))
    version = _number(document["version"], ctx, "version", document,
                      "version", kind=int)
    if version != SCHEMA_VERSION:
        ctx.fail(f"unsupported schema version {version} (this build "
                 f"understands {SCHEMA_VERSION})", "version", document,
                 "version")
    if "name" not in document:
        ctx.fail("missing required key 'name'", "name", document, "version")
    name = _string(document["name"], ctx, "name", document, "name")
    if not _alias_ok(name):
        ctx.fail(
            f"invalid workload name {name!r}: lowercase letters, digits, "
            "'_' and '-' only, starting with a letter or digit",
            "name", document, "name",
        )
    kind = _string(document.get("kind", "scene2d"), ctx, "kind",
                   document, "kind", choices=("scene2d",))
    if "nodes" not in document:
        ctx.fail("missing required key 'nodes'", "nodes", document, "name")
    raw_nodes = _require_list(document["nodes"], ctx, "nodes",
                              document, "nodes")
    if not raw_nodes:
        ctx.fail("a scene needs at least one node", "nodes",
                 document, "nodes")
    if len(raw_nodes) > _MAX_NODES:
        ctx.fail(f"too many nodes ({len(raw_nodes)} > {_MAX_NODES})",
                 "nodes", document, "nodes")
    raw_textures = _require_list(document.get("textures", []), ctx,
                                 "textures", document, "textures") \
        if "textures" in document else []
    if len(raw_textures) > _MAX_TEXTURES:
        ctx.fail(f"too many textures ({len(raw_textures)} > "
                 f"{_MAX_TEXTURES})", "textures", document, "textures")

    texture_names: set = set()
    textures = [
        _validate_texture(texture, ctx, i, texture_names)
        for i, texture in enumerate(raw_textures)
    ]
    node_names: set = set()
    nodes = [
        _validate_node(node, ctx, i, texture_names, node_names)
        for i, node in enumerate(raw_nodes)
    ]
    canonical = {
        "version": SCHEMA_VERSION,
        "name": name,
        "kind": kind,
        "description": _string(document.get("description", ""), ctx,
                               "description", document, "description"),
        "defaults": _validate_defaults(document.get("defaults", {}), ctx)
        if document.get("defaults") else {},
        "clear_color": _color(
            document.get("clear_color", [0.0, 0.0, 0.0, 1.0]), ctx,
            "clear_color", document, "clear_color"),
        "camera": _validate_camera(document.get("camera", {"type": "static"}),
                                   ctx),
        "textures": textures,
        "nodes": nodes,
    }
    return canonical
