"""Workload registry: alias → scene-file discovery.

The search path, in precedence order (later entries override earlier
ones so a user file can shadow a pack scene):

1. the committed scenario pack (``src/repro/workloads/dsl/pack/``);
2. ``./workloads`` relative to the working directory (where
   ``repro workloads add`` installs files);
3. every directory in ``$REPRO_WORKLOAD_PATH`` (``os.pathsep``-joined).

Because discovery is purely file + environment based, every execution
context sees the same aliases: ``--jobs`` pool workers, supervised
attempt processes and service-daemon workers all inherit the
environment and working directory, so a DSL workload submitted to any
of them resolves identically — no in-process registration to lose
across a ``fork``/``spawn``.
"""

from __future__ import annotations

import dataclasses
import os
import shutil

from ...errors import WorkloadError

__all__ = [
    "DEFAULT_USER_DIR",
    "PACK_DIR",
    "WORKLOAD_PATH_ENV",
    "add_workload_file",
    "build_dsl_scene",
    "discover",
    "dsl_aliases",
    "is_dsl_alias",
    "load_dsl_workload",
    "register_search_dir",
    "workload_native_config",
    "workload_native_frames",
]

#: The committed scenario pack shipped inside the package.
PACK_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "pack")

#: Working-directory-relative user dir ``repro workloads add`` fills.
DEFAULT_USER_DIR = "workloads"

#: ``os.pathsep``-separated extra directories to scan.
WORKLOAD_PATH_ENV = "REPRO_WORKLOAD_PATH"

#: Extensions discovery considers.
SCENE_EXTENSIONS = (".yaml", ".yml", ".json")


def register_search_dir(path) -> str:
    """Append a directory to ``$REPRO_WORKLOAD_PATH`` (idempotent).

    Mutating the environment — rather than an in-process set — is what
    makes the registration visible to every worker subprocess the
    harness or the service daemon forks afterwards.  Returns the
    absolute path that was registered.
    """
    path = os.path.abspath(os.fspath(path))
    if not os.path.isdir(path):
        raise WorkloadError(f"workload directory {path!r} does not exist")
    existing = [
        entry for entry in
        os.environ.get(WORKLOAD_PATH_ENV, "").split(os.pathsep) if entry
    ]
    if path not in existing:
        existing.append(path)
        os.environ[WORKLOAD_PATH_ENV] = os.pathsep.join(existing)
    return path


def search_dirs() -> list:
    """The discovery search path, lowest precedence first."""
    dirs = [PACK_DIR]
    user_dir = os.path.abspath(DEFAULT_USER_DIR)
    if os.path.isdir(user_dir):
        dirs.append(user_dir)
    for entry in os.environ.get(WORKLOAD_PATH_ENV, "").split(os.pathsep):
        if entry and os.path.isdir(entry):
            dirs.append(os.path.abspath(entry))
    return dirs


@dataclasses.dataclass(frozen=True)
class WorkloadEntry:
    """One discovered DSL workload."""

    alias: str
    path: str
    origin: str  # "pack" | "user" | "env"


def discover() -> dict:
    """``{alias: WorkloadEntry}`` over the whole search path.

    The alias is the file's **stem** — cheap to scan without parsing
    every document; :func:`load_dsl_workload` verifies the document's
    ``name`` matches at load time, so a renamed file cannot silently
    serve a scene under the wrong alias.  Later search-path entries
    shadow earlier ones.
    """
    entries: dict = {}
    for directory in search_dirs():
        if directory == PACK_DIR:
            origin = "pack"
        elif directory == os.path.abspath(DEFAULT_USER_DIR):
            origin = "user"
        else:
            origin = "env"
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            continue
        for filename in names:
            stem, ext = os.path.splitext(filename)
            if ext.lower() not in SCENE_EXTENSIONS:
                continue
            entries[stem] = WorkloadEntry(
                alias=stem, path=os.path.join(directory, filename),
                origin=origin,
            )
    return entries


def dsl_aliases() -> tuple:
    """Every discoverable DSL workload alias, sorted."""
    return tuple(sorted(discover()))


def is_dsl_alias(alias: str) -> bool:
    return alias in discover()


def load_dsl_workload(alias: str):
    """The validated :class:`~.loader.WorkloadDoc` behind an alias."""
    from .loader import load_document

    entry = discover().get(alias)
    if entry is None:
        raise WorkloadError(
            f"no DSL workload {alias!r} on the search path "
            f"({os.pathsep.join(search_dirs())})"
        )
    document = load_document(entry.path)
    if document.name != alias:
        raise WorkloadError(
            f"workload file {entry.path!r} declares name "
            f"{document.name!r} but is registered as {alias!r}; "
            "rename the file or fix the document"
        )
    return document


def build_dsl_scene(alias: str):
    """Expand the named DSL workload into a fresh ``Scene``."""
    from .expand import expand_scene

    return expand_scene(load_dsl_workload(alias))


def workload_native_config(alias: str, base_config):
    """``base_config`` with the document's native ``defaults`` applied
    (screen resolution and tile size; missing keys leave the base
    untouched).  Builtin aliases pass through unchanged."""
    if not is_dsl_alias(alias):
        return base_config
    defaults = load_dsl_workload(alias).defaults
    if not defaults:
        return base_config
    overrides = {}
    if "screen" in defaults:
        overrides["screen_width"] = defaults["screen"][0]
        overrides["screen_height"] = defaults["screen"][1]
    if "tile_size" in defaults:
        overrides["tile_size"] = defaults["tile_size"]
    if not overrides:
        return base_config
    return dataclasses.replace(base_config, **overrides)


def workload_native_frames(alias: str):
    """The document's native run length, or ``None``."""
    if not is_dsl_alias(alias):
        return None
    return load_dsl_workload(alias).defaults.get("frames")


def add_workload_file(path, dest_dir=None) -> str:
    """Validate a scene file and install it on the search path.

    The file is copied into ``dest_dir`` (default ``./workloads``) under
    ``<document name>.<original extension>``, so the registered alias
    always matches the document's own ``name``.  Refuses to shadow a
    builtin alias or overwrite a different existing registration.
    Returns the installed path.
    """
    from ..games import builtin_aliases
    from .loader import load_path

    document = load_path(path)
    alias = document.name
    if alias in builtin_aliases():
        raise WorkloadError(
            f"workload name {alias!r} collides with a builtin benchmark; "
            "pick a different 'name'"
        )
    dest_dir = os.path.abspath(dest_dir or DEFAULT_USER_DIR)
    os.makedirs(dest_dir, exist_ok=True)
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext not in SCENE_EXTENSIONS:
        ext = ".yaml"
    destination = os.path.join(dest_dir, alias + ext)
    source = os.path.abspath(os.fspath(path))
    if os.path.exists(destination) and not os.path.samefile(
            source, destination):
        existing = load_path(destination)
        if existing.data != document.data:
            raise WorkloadError(
                f"workload {alias!r} already registered at "
                f"{destination!r} with different content; remove it "
                "first or rename the new document"
            )
    if not (os.path.exists(destination)
            and os.path.samefile(source, destination)):
        shutil.copyfile(source, destination)
    return destination
