"""Synthetic game workloads (the Table II benchmark suite)."""

from .camera import (
    Camera,
    CameraState,
    ContinuousCamera,
    EpisodicCamera,
    ShakeCamera,
    StaticCamera,
)
from .games import (
    BENCHMARKS,
    FIGURE_ORDER,
    PSEUDO_WORKLOADS,
    BenchmarkInfo,
    all_game_aliases,
    all_workload_aliases,
    benchmark_info,
    build_scene,
    builtin_aliases,
    suggest_aliases,
    unknown_workload_message,
)
from .scene import QuadNode, Scene
from .scene3d import CameraPath3D, MeshNode, Scene3D, corridor_scene

__all__ = [
    "CameraPath3D",
    "MeshNode",
    "Scene3D",
    "corridor_scene",
    "Camera",
    "CameraState",
    "ContinuousCamera",
    "EpisodicCamera",
    "ShakeCamera",
    "StaticCamera",
    "BENCHMARKS",
    "FIGURE_ORDER",
    "PSEUDO_WORKLOADS",
    "BenchmarkInfo",
    "all_game_aliases",
    "all_workload_aliases",
    "benchmark_info",
    "build_scene",
    "builtin_aliases",
    "suggest_aliases",
    "unknown_workload_message",
    "QuadNode",
    "Scene",
]
