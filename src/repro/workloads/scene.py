"""Scene graph for the synthetic game workloads.

A scene is a list of :class:`QuadNode` objects, each a textured or flat
quad with optional per-frame animation hooks.  Nodes compile into GPU
command streams: animation and camera motion enter the stream only
through the drawcall *constants* (the MVP translation, tint, or shader
params), so a node whose hooks return the same values on two frames
contributes bit-identical inputs to every tile it covers — exactly the
redundancy structure Rendering Elimination exploits.

All animation hooks are pure functions of the frame index; no state is
accumulated, so runs are deterministic and frames are reproducible in
isolation.
"""

from __future__ import annotations

import dataclasses
import typing

from ..errors import PipelineError
from ..geometry import mat4
from ..geometry.primitives import VertexBuffer, quad_buffer
from ..pipeline.commands import CommandStream
from ..shaders import PROGRAMS, pack_constants
from ..textures.texture import Texture
from .camera import Camera, CameraState, StaticCamera

#: Shader aliases accepted by :class:`QuadNode`.
SHADER_ALIASES = {
    "flat": "flat_color",
    "textured": "textured",
    "scrolling": "scrolling",
    "lit": "lit_textured",
    "alpha": "alpha_textured",
}


@dataclasses.dataclass
class QuadNode:
    """One drawable quad with optional animation.

    ``rect`` is in normalized screen coordinates ([0, 1] square) and
    ``z`` in [0, 1] with smaller values closer to the viewer.  Hooks:

    * ``position_fn(frame) -> (dx, dy)`` — translation, via constants;
    * ``tint_fn(frame) -> rgba`` — color modulation, via constants;
    * ``params_fn(frame) -> (p0, p1, p2, p3)`` — free shader params
      (uv scroll, light direction), via constants;
    * ``active_fn(frame) -> bool`` — whether the node is drawn at all.
    """

    name: str
    rect: tuple
    z: float
    shader: str = "flat"
    texture: Texture = None
    tint: tuple = (1.0, 1.0, 1.0, 1.0)
    uv_scale: float = 1.0
    camera_affected: bool = True
    position_fn: typing.Callable = None
    tint_fn: typing.Callable = None
    params_fn: typing.Callable = None
    active_fn: typing.Callable = None
    depth_test: bool = True
    depth_write: bool = True
    #: When set, the camera's forward travel and yaw are folded into the
    #: shader params (uv scroll) — the mechanism by which a continuously
    #: moving camera perturbs every covered tile's constants, whether or
    #: not the sampled colors actually change (flat textures don't).
    camera_uv: bool = False
    #: Tessellation of the quad into an NxN triangle grid (geometric
    #: detail: more primitives, more Parameter Buffer traffic).
    subdivide: int = 1
    buffer_id: int = 0
    _buffer: VertexBuffer = dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.shader not in SHADER_ALIASES:
            raise PipelineError(
                f"node {self.name!r}: unknown shader alias {self.shader!r}"
            )
        program = PROGRAMS[SHADER_ALIASES[self.shader]]
        if program.texture_fetches > 0 and self.texture is None:
            raise PipelineError(
                f"node {self.name!r}: shader {self.shader!r} needs a texture"
            )
        x0, y0, x1, y1 = self.rect
        if not (x0 < x1 and y0 < y1):
            raise PipelineError(f"node {self.name!r}: empty rect {self.rect}")

    @property
    def program(self):
        return PROGRAMS[SHADER_ALIASES[self.shader]]

    def buffer(self) -> VertexBuffer:
        """The node's (cached) static vertex buffer."""
        if self._buffer is None:
            x0, y0, x1, y1 = self.rect
            self._buffer = quad_buffer(
                x0, y0, x1, y1, z=self.z, uv_scale=self.uv_scale,
                subdivide=self.subdivide,
            )
            self._buffer.buffer_id = self.buffer_id
        return self._buffer

    def is_active(self, frame: int) -> bool:
        return self.active_fn(frame) if self.active_fn else True

    def frame_values(self, frame: int, camera: CameraState) -> tuple:
        """(dx, dy, tint, params) for this node on ``frame``."""
        dx = dy = 0.0
        if self.position_fn is not None:
            dx, dy = self.position_fn(frame)
        if self.camera_affected:
            dx -= camera.dx
            dy -= camera.dy
        tint = self.tint_fn(frame) if self.tint_fn else self.tint
        params = self.params_fn(frame) if self.params_fn else (0, 0, 0, 0)
        if self.camera_uv:
            params = (
                params[0] + camera.advance,
                params[1] + camera.yaw,
                params[2], params[3],
            )
        return dx, dy, tint, params


class Scene:
    """An ordered list of nodes plus a camera and clear color."""

    def __init__(self, nodes: typing.Sequence, camera: Camera = None,
                 clear_color=(0.0, 0.0, 0.0, 1.0)) -> None:
        self.nodes = list(nodes)
        self.camera = camera if camera is not None else StaticCamera()
        self.clear_color = tuple(clear_color)
        for index, node in enumerate(self.nodes):
            if node.buffer_id == 0:
                node.buffer_id = index + 1

    def command_stream(self, frame: int) -> CommandStream:
        """Compile the scene into one frame's GPU command stream."""
        camera = self.camera.state(frame)
        stream = CommandStream()
        for node in self.nodes:
            if not node.is_active(frame):
                continue
            dx, dy, tint, params = node.frame_values(frame, camera)
            mvp = mat4.compose(mat4.ortho2d(), mat4.translate(dx, dy))
            stream.set_shader(node.program)
            if node.texture is not None:
                stream.set_texture(0, node.texture)
            stream.set_constants(
                pack_constants(mvp, tint=tint, params=params)
            )
            stream.draw(
                node.buffer(),
                depth_test=node.depth_test,
                depth_write=node.depth_write,
            )
        return stream

    def frames(self, count: int, start: int = 0):
        """Yield ``count`` frames' command streams."""
        for frame in range(start, start + count):
            yield self.command_stream(frame)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)
