"""The Table II benchmark suite as synthetic scene generators.

The paper evaluates ten commercial Android games.  Those binaries (and
the Teapot tracing stack) are unavailable, so each benchmark is rebuilt
as a parameterized scene whose *command-stream structure* matches the
behaviour the paper reports for that game:

* ccs..hop — mostly static cameras, >90% of tiles unchanged per frame;
* mst      — continuous camera motion, essentially no redundant tiles;
* abi..tib — mixed phases, including panning over flat-colored regions
  (tiles whose *inputs* change but whose *colors* do not: RE's false
  negatives, where Transaction Elimination can still win) and movers
  fully occluded by opaque geometry (same effect via early-Z).

Scenes are deterministic pure functions of the frame index.  Geometry
sits in normalized screen coordinates, so the per-game redundant-tile
fraction is independent of the simulated resolution.

Two non-game workloads support Fig. 1: ``desktop`` (a static launcher
that leaves the GPU nearly idle) and ``antutu`` (a full-screen,
every-frame-changing stress scene).
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ReproError
from ..textures import (
    checker_texture,
    flat_texture,
    gradient_texture,
    noise_texture,
)
from .camera import (
    ContinuousCamera,
    EpisodicCamera,
    ShakeCamera,
    StaticCamera,
)
from .scene import QuadNode, Scene


@dataclasses.dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table II."""

    name: str
    alias: str
    genre: str
    type: str  # "2D" or "3D"


#: Table II, in the paper's order.
BENCHMARKS = (
    BenchmarkInfo("Angry Birds", "abi", "Arcade", "2D"),
    BenchmarkInfo("Candy Crush Saga", "ccs", "Puzzle", "2D"),
    BenchmarkInfo("Castle Defense", "cde", "Tower Defense", "2D"),
    BenchmarkInfo("Clash of Clans", "coc", "MMO Strategy", "3D"),
    BenchmarkInfo("Crazy Snowboard", "csn", "Arcade", "3D"),
    BenchmarkInfo("Cut the Rope", "ctr", "Puzzle", "2D"),
    BenchmarkInfo("Hopeless", "hop", "Survival Horror", "2D"),
    BenchmarkInfo("Modern Strike", "mst", "First Person Shooter", "3D"),
    BenchmarkInfo("Temple Run", "ter", "Platform", "3D"),
    BenchmarkInfo("Tigerball", "tib", "Physics Puzzle", "3D"),
)

#: Figure order used by the paper's result plots.
FIGURE_ORDER = ("ccs", "cde", "coc", "ctr", "hop", "mst", "abi", "csn", "ter", "tib")

#: Extra workloads for the Fig. 1 motivation experiment.
PSEUDO_WORKLOADS = ("desktop", "antutu")


def benchmark_info(alias: str) -> BenchmarkInfo:
    for info in BENCHMARKS:
        if info.alias == alias:
            return info
    raise ReproError(f"unknown benchmark alias {alias!r}")


class _TextureBank:
    """Per-scene texture allocator with unique address spaces."""

    def __init__(self, base_id: int) -> None:
        self._next = base_id

    def _take(self) -> int:
        self._next += 1
        return self._next

    def flat(self, color):
        return flat_texture(color, self._take())

    def checker(self, a, b, cells=8, size=64):
        return checker_texture(a, b, self._take(), size=size, cells=cells)

    def gradient(self, top, bottom, size=64):
        return gradient_texture(top, bottom, self._take(), size=size)

    def noise(self, seed, base=(0.5, 0.5, 0.5, 1.0), amplitude=0.5, size=64):
        return noise_texture(self._take(), size=size, seed=seed,
                             base_color=base, amplitude=amplitude)


def _pulse(period: int, base: tuple, delta: float):
    """Tint oscillation: a small animated highlight."""

    def tint_fn(frame: int) -> tuple:
        level = delta * math.sin(2.0 * math.pi * frame / period)
        return (base[0] + level, base[1] + level, base[2], base[3])

    return tint_fn


def _orbit(cx: float, cy: float, radius: float, period: int):
    """Circular sprite motion around (cx, cy), relative to the rect."""

    def position_fn(frame: int) -> tuple:
        angle = 2.0 * math.pi * frame / period
        return (cx + radius * math.cos(angle), cy + radius * math.sin(angle))

    return position_fn


def _sweep(speed: float, span: float, axis: str = "x"):
    """Back-and-forth linear motion over ``span`` at ``speed``/frame."""

    def position_fn(frame: int) -> tuple:
        t = (frame * speed) % (2.0 * span)
        offset = t if t <= span else 2.0 * span - t
        return (offset, 0.0) if axis == "x" else (0.0, offset)

    return position_fn


def _swing(amplitude: float, period: int):
    """Pendulum motion (Cut the Rope's candy)."""

    def position_fn(frame: int) -> tuple:
        angle = amplitude * math.sin(2.0 * math.pi * frame / period)
        return (angle, abs(angle) * 0.4)

    return position_fn


# ----------------------------------------------------------------------
# Scene builders, one per benchmark
# ----------------------------------------------------------------------

def _build_ccs(tex: _TextureBank) -> Scene:
    """Candy Crush: static board, one pulsing candy, tiny mover."""
    board = tex.checker((0.9, 0.5, 0.6, 1), (0.95, 0.8, 0.4, 1), cells=8, size=512)
    nodes = [
        QuadNode("background", (0.0, 0.0, 1.0, 1.0), z=0.9, shader="textured", subdivide=10,
                 texture=tex.gradient((0.4, 0.2, 0.5, 1), (0.2, 0.1, 0.3, 1), size=256),
                 camera_affected=False),
        QuadNode("board", (0.1, 0.15, 0.9, 0.95), z=0.7, shader="textured", subdivide=10,
                 texture=board, camera_affected=False),
        QuadNode("selected-candy", (0.45, 0.5, 0.55, 0.6), z=0.5,
                 shader="flat", tint=(1.0, 0.3, 0.3, 1.0),
                 tint_fn=_pulse(8, (0.9, 0.3, 0.3, 1.0), 0.1),
                 camera_affected=False),
        QuadNode("score-sparkle", (0.05, 0.02, 0.12, 0.09), z=0.4,
                 shader="flat", tint=(1, 1, 0.6, 1),
                 tint_fn=_pulse(5, (0.9, 0.9, 0.5, 1.0), 0.08),
                 camera_affected=False),
        QuadNode("falling-candy", (0.25, 0.2, 0.33, 0.3), z=0.45,
                 shader="flat", tint=(0.3, 0.7, 0.9, 1.0),
                 position_fn=_sweep(0.02, 0.3, axis="y"),
                 camera_affected=False),
        QuadNode("combo-flash", (0.6, 0.7, 0.75, 0.82), z=0.45,
                 shader="flat", tint=(0.9, 0.6, 0.9, 1.0),
                 tint_fn=_pulse(6, (0.85, 0.55, 0.85, 1.0), 0.12),
                 active_fn=lambda f: (f // 12) % 2 == 0,
                 camera_affected=False),
    ]
    return Scene(nodes, StaticCamera(), clear_color=(0.1, 0.05, 0.15, 1))


def _build_cde(tex: _TextureBank) -> Scene:
    """Castle Defense: very static scene, one tiny projectile."""
    nodes = [
        QuadNode("terrain", (0.0, 0.0, 1.0, 1.0), z=0.9, shader="textured", subdivide=10,
                 texture=tex.noise(3, base=(0.35, 0.5, 0.3, 1), amplitude=0.2, size=512),
                 camera_affected=False),
        QuadNode("castle", (0.02, 0.3, 0.22, 0.8), z=0.6, shader="textured",
                 texture=tex.checker((0.5, 0.5, 0.55, 1), (0.4, 0.4, 0.45, 1),
                                     cells=4),
                 camera_affected=False),
        QuadNode("tower", (0.75, 0.35, 0.9, 0.75), z=0.6, shader="textured",
                 texture=tex.checker((0.45, 0.4, 0.4, 1), (0.35, 0.3, 0.3, 1),
                                     cells=4),
                 camera_affected=False),
        QuadNode("flag", (0.1, 0.22, 0.16, 0.3), z=0.5, shader="flat",
                 tint=(0.8, 0.1, 0.1, 1.0),
                 tint_fn=_pulse(7, (0.75, 0.12, 0.1, 1.0), 0.06),
                 camera_affected=False),
        QuadNode("projectile", (0.3, 0.45, 0.34, 0.49), z=0.4, shader="flat",
                 tint=(0.9, 0.2, 0.1, 1.0),
                 position_fn=_sweep(0.02, 0.4), camera_affected=False),
    ]
    return Scene(nodes, StaticCamera(), clear_color=(0.2, 0.3, 0.2, 1))


def _build_coc(tex: _TextureBank) -> Scene:
    """Clash of Clans: static village, two animated units, occasional
    map drags (camera nudges)."""
    nodes = [
        QuadNode("map", (-0.3, -0.3, 1.3, 1.3), z=0.9, shader="textured", subdivide=10,
                 texture=tex.noise(5, base=(0.4, 0.55, 0.35, 1), amplitude=0.25, size=512),
                 uv_scale=2.0),
        QuadNode("townhall", (0.4, 0.4, 0.6, 0.62), z=0.6, shader="textured",
                 texture=tex.checker((0.6, 0.45, 0.3, 1), (0.5, 0.35, 0.2, 1),
                                     cells=4)),
        QuadNode("barracks", (0.15, 0.6, 0.3, 0.75), z=0.6, shader="textured",
                 texture=tex.checker((0.55, 0.5, 0.45, 1), (0.4, 0.38, 0.33, 1),
                                     cells=4)),
        QuadNode("worker-a", (0.3, 0.3, 0.34, 0.35), z=0.4, shader="flat",
                 tint=(0.9, 0.8, 0.2, 1),
                 position_fn=_orbit(0.0, 0.0, 0.04, 20)),
        QuadNode("worker-b", (0.65, 0.68, 0.69, 0.73), z=0.4, shader="flat",
                 tint=(0.2, 0.8, 0.9, 1),
                 position_fn=_orbit(0.0, 0.0, 0.05, 26)),
    ]
    return Scene(nodes, ShakeCamera(period=32, magnitude=0.02, burst=2),
                 clear_color=(0.25, 0.35, 0.25, 1))


def _build_ctr(tex: _TextureBank) -> Scene:
    """Cut the Rope: static background, a swinging candy, plus a mover
    hidden behind the opaque HUD (equal colors, different inputs)."""
    nodes = [
        QuadNode("cardboard", (0.0, 0.0, 1.0, 1.0), z=0.9, shader="textured", subdivide=10,
                 texture=tex.noise(7, base=(0.6, 0.45, 0.3, 1), amplitude=0.15, size=512),
                 camera_affected=False),
        QuadNode("hud", (0.0, 0.0, 1.0, 0.12), z=0.2, shader="flat", subdivide=4,
                 tint=(0.25, 0.18, 0.12, 1.0), camera_affected=False),
        # Drawn after the HUD but *behind* it: early-Z culls it, so its
        # per-frame attribute changes never alter the HUD tiles' colors.
        QuadNode("occluded-spider", (0.4, 0.02, 0.48, 0.1), z=0.5,
                 shader="flat", tint=(0.1, 0.1, 0.1, 1.0),
                 position_fn=_sweep(0.015, 0.3), camera_affected=False),
        QuadNode("candy", (0.4, 0.3, 0.56, 0.5), z=0.4, shader="flat",
                 tint=(0.9, 0.3, 0.4, 1.0),
                 position_fn=_swing(0.22, 30), camera_affected=False),
        QuadNode("om-nom", (0.42, 0.75, 0.58, 0.92), z=0.4, shader="flat",
                 tint=(0.2, 0.65, 0.25, 1.0),
                 tint_fn=_pulse(9, (0.2, 0.6, 0.25, 1.0), 0.08),
                 camera_affected=False),
    ]
    return Scene(nodes, StaticCamera(), clear_color=(0.4, 0.3, 0.2, 1))


def _build_hop(tex: _TextureBank) -> Scene:
    """Hopeless: dark cave, mostly black tiles, two small characters.

    The black expanse means few distinct fragment signatures — the one
    workload where Fragment Memoization's small LUT shines (Fig. 16)."""
    nodes = [
        QuadNode("darkness", (0.0, 0.0, 1.0, 1.0), z=0.9, shader="flat", subdivide=10,
                 tint=(0.0, 0.0, 0.0, 1.0), camera_affected=False),
        QuadNode("lantern-glow", (0.35, 0.55, 0.6, 0.8), z=0.7,
                 shader="textured",
                 texture=tex.gradient((0.25, 0.2, 0.05, 1), (0.05, 0.04, 0.01, 1), size=256),
                 camera_affected=False),
        QuadNode("blob-a", (0.42, 0.6, 0.47, 0.66), z=0.4, shader="flat",
                 tint=(0.7, 0.7, 0.6, 1),
                 position_fn=_orbit(0.0, 0.0, 0.02, 14),
                 camera_affected=False),
        QuadNode("blob-b", (0.52, 0.62, 0.56, 0.67), z=0.4, shader="flat",
                 tint=(0.6, 0.65, 0.55, 1),
                 position_fn=_sweep(0.01, 0.1), camera_affected=False),
        # A monster prowling the darkness, drawn in the exact darkness
        # color: its attributes churn ~35% of tiles every frame but the
        # rendered pixels stay black -- redundancy only Transaction
        # Elimination (or fragment memoization) can see.
        QuadNode("shadow-monster", (0.03, 0.05, 0.75, 0.55), z=0.6,
                 shader="flat", subdivide=6, tint=(0.0, 0.0, 0.0, 1.0),
                 position_fn=_orbit(0.0, 0.0, 0.1, 22),
                 camera_affected=False),
    ]
    return Scene(nodes, StaticCamera(), clear_color=(0, 0, 0, 1))


def _build_mst(tex: _TextureBank) -> Scene:
    """Modern Strike: first-person shooter, camera moving every frame.

    Every world drawcall folds the camera state into its constants, so
    every covered tile's inputs change every frame — the no-redundancy
    extreme the paper uses to bound RE's overhead."""
    walls = tex.checker((0.45, 0.42, 0.4, 1), (0.3, 0.28, 0.27, 1), cells=16,
                        size=512)
    floor = tex.noise(11, base=(0.3, 0.3, 0.32, 1), amplitude=0.3, size=512)
    nodes = [
        QuadNode("corridor", (0.0, 0.0, 1.0, 0.6), z=0.9, shader="scrolling", subdivide=10,
                 texture=walls, camera_uv=True, uv_scale=2.0),
        QuadNode("floor", (0.0, 0.55, 1.0, 1.0), z=0.8, shader="scrolling", subdivide=10,
                 texture=floor, camera_uv=True, uv_scale=3.0),
        QuadNode("enemy", (0.55, 0.35, 0.65, 0.55), z=0.5, shader="textured",
                 texture=tex.checker((0.5, 0.2, 0.2, 1), (0.3, 0.1, 0.1, 1),
                                     cells=2),
                 position_fn=_orbit(0.0, 0.0, 0.06, 18)),
        QuadNode("weapon", (0.6, 0.75, 0.95, 1.0), z=0.3, shader="textured",
                 texture=tex.gradient((0.2, 0.2, 0.22, 1), (0.05, 0.05, 0.06, 1)),
                 camera_affected=False,
                 position_fn=_orbit(0.0, 0.0, 0.004, 8)),  # weapon bob
    ]
    return Scene(nodes, ContinuousCamera(speed=0.015, yaw_amplitude=0.2),
                 clear_color=(0.1, 0.1, 0.12, 1))


def _build_abi(tex: _TextureBank) -> Scene:
    """Angry Birds: aim phases (static) alternating with flight phases
    where the camera pans across a flat-colored sky.

    During pans the sky tiles' inputs change (translated constants and
    attributes) while their colors do not — the equal-colors /
    different-inputs population where TE can beat RE (Section V)."""
    episodes = [(6, 22, 0.012, 0.0), (26, 46, -0.010, 0.0)]
    sky = tex.flat((0.45, 0.75, 0.95, 1.0))
    nodes = [
        # Oversized so pans never expose the clear color.
        QuadNode("sky", (-0.8, 0.0, 1.8, 0.75), z=0.9, shader="textured", subdivide=10,
                 texture=sky),
        QuadNode("ground", (-0.8, 0.7, 1.8, 1.0), z=0.8, shader="textured", subdivide=10,
                 texture=tex.noise(13, base=(0.35, 0.6, 0.25, 1),
                                   amplitude=0.25, size=512), uv_scale=2.0),
        QuadNode("slingshot", (0.12, 0.45, 0.2, 0.75), z=0.5,
                 shader="textured",
                 texture=tex.checker((0.4, 0.25, 0.15, 1),
                                     (0.3, 0.18, 0.1, 1), cells=2)),
        QuadNode("bird", (0.14, 0.42, 0.2, 0.49), z=0.4, shader="flat",
                 tint=(0.85, 0.15, 0.15, 1.0),
                 position_fn=_sweep(0.01, 0.05)),
        QuadNode("structure", (0.7, 0.4, 0.92, 0.75), z=0.5,
                 shader="textured",
                 texture=tex.checker((0.55, 0.45, 0.3, 1),
                                     (0.45, 0.35, 0.22, 1), cells=4)),
    ]
    return Scene(nodes, EpisodicCamera(episodes),
                 clear_color=(0.45, 0.75, 0.95, 1))


def _build_csn(tex: _TextureBank) -> Scene:
    """Crazy Snowboard: downhill runs over flat snow alternating with
    static trick-menu pauses."""
    snow = tex.flat((0.93, 0.95, 0.98, 1.0))
    nodes = [
        QuadNode("snowfield", (0.0, 0.25, 1.0, 1.0), z=0.9, subdivide=10,
                 shader="scrolling", texture=snow, camera_uv=True),
        QuadNode("sky", (0.0, 0.0, 1.0, 0.3), z=0.95, shader="textured", subdivide=6,
                 texture=tex.gradient((0.5, 0.7, 0.95, 1), (0.8, 0.9, 1.0, 1), size=256),
                 camera_affected=False),
        QuadNode("trees", (0.05, 0.3, 0.35, 0.55), z=0.6, shader="scrolling",
                 texture=tex.checker((0.1, 0.4, 0.2, 1), (0.9, 0.95, 1.0, 1),
                                     cells=8, size=256),
                 camera_uv=True, uv_scale=2.0),
        QuadNode("rider", (0.45, 0.55, 0.55, 0.7), z=0.4, shader="textured",
                 texture=tex.checker((0.8, 0.2, 0.2, 1), (0.2, 0.2, 0.7, 1),
                                     cells=2),
                 position_fn=_orbit(0.0, 0.0, 0.015, 12),
                 camera_affected=False),
    ]

    class RunPauseCamera(ContinuousCamera):
        """Moves for 12 frames, rests for 12."""

        def state(self, frame):
            cycle = frame % 24
            moving = cycle < 12
            # Advance accumulates only during run segments.
            full, part = divmod(frame, 24)
            advanced = full * 12 + min(part, 12)
            if moving:
                return dataclasses.replace(
                    super().state(frame), advance=self.speed * advanced,
                    moving=True,
                )
            return dataclasses.replace(
                super().state(0), advance=self.speed * advanced, yaw=0.0,
                moving=False,
            )

    return Scene(nodes, RunPauseCamera(speed=0.02, yaw_amplitude=0.1),
                 clear_color=(0.9, 0.93, 0.97, 1))


def _build_ter(tex: _TextureBank) -> Scene:
    """Temple Run: continuous forward motion with static HUD bars and a
    flat-colored sky band."""
    nodes = [
        QuadNode("sky", (0.0, 0.1, 1.0, 0.35), z=0.95, shader="textured", subdivide=6,
                 texture=tex.flat((0.55, 0.75, 0.9, 1.0)),
                 camera_affected=False),
        QuadNode("temple-path", (0.0, 0.3, 1.0, 0.9), z=0.9, subdivide=10,
                 shader="scrolling",
                 texture=tex.checker((0.5, 0.4, 0.25, 1), (0.4, 0.3, 0.2, 1),
                                     cells=8, size=512),
                 camera_uv=True, uv_scale=2.0),
        QuadNode("runner", (0.46, 0.55, 0.54, 0.72), z=0.4,
                 shader="textured",
                 texture=tex.checker((0.8, 0.6, 0.3, 1), (0.5, 0.3, 0.2, 1),
                                     cells=2),
                 position_fn=_orbit(0.0, 0.0, 0.01, 10),
                 camera_affected=False),
        QuadNode("hud-top", (0.0, 0.0, 1.0, 0.1), z=0.2, shader="flat", subdivide=4,
                 tint=(0.12, 0.1, 0.08, 1.0), camera_affected=False),
        QuadNode("hud-bottom", (0.0, 0.9, 1.0, 1.0), z=0.2, shader="flat", subdivide=4,
                 tint=(0.12, 0.1, 0.08, 1.0), camera_affected=False),
    ]
    return Scene(nodes, ContinuousCamera(speed=0.02, yaw_amplitude=0.05),
                 clear_color=(0.5, 0.7, 0.85, 1))


def _build_tib(tex: _TextureBank) -> Scene:
    """Tigerball: static camera physics puzzle with a rolling ball,
    short whole-scene shifts, and an occluded mover."""
    episodes = [(12, 16, 0.02, 0.01), (30, 35, -0.015, 0.0)]
    nodes = [
        QuadNode("room", (-0.2, -0.2, 1.2, 1.2), z=0.9, shader="textured", subdivide=10,
                 texture=tex.gradient((0.3, 0.4, 0.55, 1), (0.2, 0.25, 0.4, 1), size=512),
                 uv_scale=1.0),
        QuadNode("platform", (0.15, 0.65, 0.85, 0.72), z=0.6,
                 shader="textured",
                 texture=tex.checker((0.6, 0.6, 0.65, 1), (0.45, 0.45, 0.5, 1),
                                     cells=8)),
        QuadNode("panel", (0.75, 0.1, 1.0, 0.4), z=0.3, shader="flat",
                 tint=(0.15, 0.2, 0.3, 1.0)),
        QuadNode("occluded-gear", (0.8, 0.15, 0.88, 0.25), z=0.5,
                 shader="flat", tint=(0.4, 0.4, 0.1, 1.0),
                 position_fn=_orbit(0.0, 0.0, 0.03, 16)),
        QuadNode("ball", (0.28, 0.48, 0.44, 0.66), z=0.4, shader="textured",
                 texture=tex.checker((0.95, 0.6, 0.2, 1), (0.8, 0.4, 0.1, 1),
                                     cells=2),
                 position_fn=_sweep(0.02, 0.35)),
        QuadNode("counterweight", (0.1, 0.15, 0.22, 0.3), z=0.4,
                 shader="flat", tint=(0.7, 0.7, 0.75, 1.0),
                 position_fn=_sweep(0.012, 0.25, axis="y")),
    ]
    return Scene(nodes, EpisodicCamera(episodes),
                 clear_color=(0.2, 0.25, 0.4, 1))


def _build_desktop(tex: _TextureBank) -> Scene:
    """Android desktop without animations: completely static frames."""
    nodes = [
        QuadNode("wallpaper", (0.0, 0.0, 1.0, 1.0), z=0.9, shader="textured", subdivide=10,
                 texture=tex.gradient((0.2, 0.3, 0.5, 1), (0.1, 0.12, 0.25, 1), size=256),
                 camera_affected=False),
        QuadNode("dock", (0.0, 0.88, 1.0, 1.0), z=0.5, shader="flat",
                 tint=(0.1, 0.1, 0.12, 0.9), camera_affected=False),
        QuadNode("icon-grid", (0.1, 0.1, 0.9, 0.7), z=0.6, shader="textured", subdivide=6,
                 texture=tex.checker((0.8, 0.8, 0.85, 1), (0.2, 0.3, 0.5, 1),
                                     cells=8),
                 camera_affected=False),
    ]
    return Scene(nodes, StaticCamera(), clear_color=(0.1, 0.12, 0.25, 1))


def _build_antutu(tex: _TextureBank) -> Scene:
    """Antutu3D-like stress: dense, fully dynamic, heavy shading."""
    nodes = [
        QuadNode("arena", (0.0, 0.0, 1.0, 1.0), z=0.9, shader="scrolling", subdivide=10,
                 texture=tex.noise(17, base=(0.4, 0.35, 0.45, 1),
                                   amplitude=0.5, size=512),
                 camera_uv=True, uv_scale=4.0),
    ]
    for i in range(8):
        row, col = divmod(i, 4)
        x0 = 0.05 + col * 0.24
        y0 = 0.1 + row * 0.4
        nodes.append(
            QuadNode(
                f"spinner-{i}", (x0, y0, x0 + 0.18, y0 + 0.3), z=0.5,
                shader="textured",
                texture=tex.checker(
                    (0.9, 0.3 + 0.08 * i, 0.2, 1),
                    (0.2, 0.3, 0.8 - 0.08 * i, 1), cells=4,
                ),
                position_fn=_orbit(0.0, 0.0, 0.04, 9 + i),
            )
        )
    return Scene(nodes, ContinuousCamera(speed=0.03, yaw_amplitude=0.3),
                 clear_color=(0.1, 0.1, 0.1, 1))


_BUILDERS = {
    "ccs": _build_ccs,
    "cde": _build_cde,
    "coc": _build_coc,
    "ctr": _build_ctr,
    "hop": _build_hop,
    "mst": _build_mst,
    "abi": _build_abi,
    "csn": _build_csn,
    "ter": _build_ter,
    "tib": _build_tib,
    "desktop": _build_desktop,
    "antutu": _build_antutu,
}

#: Texture-id strides keep every workload's textures in disjoint
#: simulated address regions.
_TEXTURE_ID_STRIDE = 64


def build_scene(alias: str) -> Scene:
    """Instantiate the named workload scene (fresh node/texture state).

    Builtin benchmarks resolve first; any other alias falls through to
    the declarative workload registry (:mod:`repro.workloads.dsl`), so a
    scene file on the search path runs everywhere a builtin does — the
    direct runner, ``--jobs`` pool workers, supervised attempts and
    service-daemon workers alike.
    """
    if alias in _BUILDERS:
        index = sorted(_BUILDERS).index(alias)
        bank = _TextureBank(base_id=index * _TEXTURE_ID_STRIDE)
        return _BUILDERS[alias](bank)
    from .dsl import registry as dsl_registry

    if dsl_registry.is_dsl_alias(alias):
        return dsl_registry.build_dsl_scene(alias)
    raise ReproError(unknown_workload_message(alias))


def builtin_aliases() -> tuple:
    """Every hard-coded workload alias (games + pseudo-workloads)."""
    return tuple(sorted(_BUILDERS))


def all_workload_aliases() -> tuple:
    """Every renderable alias: builtins plus discovered DSL workloads."""
    from .dsl import registry as dsl_registry

    return builtin_aliases() + tuple(
        alias for alias in dsl_registry.dsl_aliases()
        if alias not in _BUILDERS
    )


def suggest_aliases(alias: str, limit: int = 3) -> tuple:
    """Closest known aliases to a misspelled one (did-you-mean)."""
    import difflib

    return tuple(difflib.get_close_matches(
        alias, all_workload_aliases(), n=limit, cutoff=0.5,
    ))


def unknown_workload_message(alias: str) -> str:
    """The canonical unknown-alias error text, with a did-you-mean and
    the full registered-workload list (builtin and DSL)."""
    suggestions = suggest_aliases(alias)
    hint = (f"; did you mean {' or '.join(repr(s) for s in suggestions)}?"
            if suggestions else "")
    return (
        f"unknown workload {alias!r}{hint} "
        f"(registered workloads: {', '.join(all_workload_aliases())})"
    )


def all_game_aliases() -> tuple:
    """The ten Table II aliases in the paper's figure order."""
    return FIGURE_ORDER
