"""GPU configuration: the simulation parameters of Table I.

:class:`GpuConfig` gathers every knob of the simulated ARM Mali-450-like
tile-based-rendering GPU — screen geometry, clock, memory-system shape,
queue depths, per-stage throughputs — plus the parameters of the Rendering
Elimination hardware added by the paper (Signature Buffer, CRC LUT block
size, Overlapped-Tiles queue depth).

The paper simulates a 1196x768 screen with 16x16-pixel tiles.  Rendering
that many pixels functionally in pure Python for hundreds of frames is
slow, so presets are provided at several scales; redundancy ratios are
resolution-independent because workloads place geometry in normalized
screen coordinates.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math

from .errors import ConfigError


@dataclasses.dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache (a row of Table I)."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    ways: int = 2
    banks: int = 1
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigError(
                f"cache {self.name!r}: size {self.size_bytes} is not a "
                f"multiple of line*ways ({self.line_bytes}*{self.ways})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclasses.dataclass(frozen=True)
class QueueConfig:
    """Depth and entry size of one inter-stage hardware queue."""

    name: str
    entries: int
    entry_bytes: int


@dataclasses.dataclass(frozen=True)
class GpuConfig:
    """Full configuration of the simulated TBR GPU (Table I).

    Instances are immutable; use :func:`dataclasses.replace` to derive
    variants (the ablation benchmarks do this for tile size, LUT block
    size and OT-queue depth sweeps).
    """

    # Tech specs
    clock_mhz: int = 400
    voltage_v: float = 1.0
    technology_nm: int = 32

    # Screen / tiles
    screen_width: int = 1196
    screen_height: int = 768
    tile_size: int = 16

    # Main memory (dual-channel LPDDR3-like)
    dram_latency_min_cycles: int = 50
    dram_latency_max_cycles: int = 100
    dram_bytes_per_cycle: int = 4
    dram_size_mb: int = 1024

    # Queues
    vertex_queues: QueueConfig = QueueConfig("vertex", 16, 136)
    triangle_queue: QueueConfig = QueueConfig("triangle", 16, 388)
    tile_queue: QueueConfig = QueueConfig("tile", 16, 388)
    fragment_queue: QueueConfig = QueueConfig("fragment", 64, 233)

    # Caches
    vertex_cache: CacheConfig = CacheConfig("vertex", 4 * 1024, ways=2)
    texture_cache: CacheConfig = CacheConfig("texture", 8 * 1024, ways=2)
    num_texture_caches: int = 4
    tile_cache: CacheConfig = CacheConfig("tile", 128 * 1024, ways=8, banks=8)
    l2_cache: CacheConfig = CacheConfig(
        "l2", 256 * 1024, ways=8, banks=8, latency_cycles=2
    )
    color_buffer: CacheConfig = CacheConfig("color", 1024, ways=1)
    depth_buffer: CacheConfig = CacheConfig("depth", 1024, ways=1)

    # Non-programmable stage throughputs
    triangles_per_cycle: int = 1          # primitive assembly
    raster_attributes_per_cycle: int = 16  # rasterizer
    early_z_quads_in_flight: int = 32

    # Programmable stages
    num_vertex_processors: int = 1
    num_fragment_processors: int = 4

    # Rendering Elimination hardware (Section III)
    signature_bits: int = 32
    crc_block_bytes: int = 8      # Compute CRC subblock size (8 x 1-KB LUTs)
    ot_queue_entries: int = 64    # Overlapped Tiles queue depth
    re_refresh_period_frames: int = 0  # 0 = never force a refresh frame
    # Signature-buffer compare distance: 2 under double buffering
    # (Section IV-C), 1 for the single-buffer ablation.  Also the number
    # of warm-up frames that cannot match (no reference bank yet).
    signature_compare_distance: int = 2

    # Opaque-tile occlusion culling: truncate each tile's polygon list
    # at the last full-cover opaque primitive during binning, so buried
    # geometry is never rasterized, depth-tested or shaded.  Output is
    # bit-identical either way (see DESIGN); off by default so the
    # committed bench-guard counters keep their exact values.
    occlusion_culling: bool = False

    # Transaction Elimination / Fragment Memoization models
    memo_lut_entries: int = 2048
    memo_lut_ways: int = 4
    memo_hash_bits: int = 32
    memo_frames_in_parallel: int = 2

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ConfigError("tile_size must be positive")
        if self.screen_width <= 0 or self.screen_height <= 0:
            raise ConfigError("screen dimensions must be positive")
        if self.crc_block_bytes <= 0 or self.crc_block_bytes % 4 != 0:
            raise ConfigError("crc_block_bytes must be a positive multiple of 4")
        if self.dram_latency_min_cycles > self.dram_latency_max_cycles:
            raise ConfigError("dram latency min exceeds max")
        if self.num_fragment_processors <= 0 or self.num_vertex_processors <= 0:
            raise ConfigError("processor counts must be positive")
        if self.signature_compare_distance < 1:
            raise ConfigError("signature_compare_distance must be >= 1")

    # ------------------------------------------------------------------
    # Serialization (checkpoint manifests; no pickle anywhere)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (nested cache/queue configs become dicts)."""
        return dataclasses.asdict(self)

    def digest(self) -> str:
        """Short stable fingerprint of every field, for run-cache keys,
        journal records and per-cell checkpoint file names.  Two configs
        share a digest iff their ``repr`` (every field) is identical."""
        return hashlib.sha256(repr(self).encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: dict) -> "GpuConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        for field in dataclasses.fields(cls):
            value = data.get(field.name)
            if not isinstance(value, dict):
                continue
            if field.type in (QueueConfig, "QueueConfig"):
                data[field.name] = QueueConfig(**value)
            elif field.type in (CacheConfig, "CacheConfig"):
                data[field.name] = CacheConfig(**value)
        return cls(**data)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def tiles_x(self) -> int:
        """Number of tile columns (partial right-edge tiles count)."""
        return math.ceil(self.screen_width / self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Number of tile rows (partial bottom-edge tiles count)."""
        return math.ceil(self.screen_height / self.tile_size)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def pixels_per_tile(self) -> int:
        return self.tile_size * self.tile_size

    @property
    def signature_buffer_bytes(self) -> int:
        """On-chip storage for two frames' worth of tile signatures."""
        return 2 * self.num_tiles * (self.signature_bits // 8)

    @property
    def crc_lut_bytes(self) -> int:
        """Total CRC LUT storage: one 1-KB LUT per byte of the block for
        the Sign subunit plus four for the Shift subunit."""
        return (self.crc_block_bytes + 4) * 256 * 4

    def tile_index(self, tx: int, ty: int) -> int:
        """Linear identifier of the tile at tile-grid position (tx, ty)."""
        if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
            raise ConfigError(f"tile ({tx}, {ty}) outside {self.tiles_x}x{self.tiles_y} grid")
        return ty * self.tiles_x + tx

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def mali450(cls) -> "GpuConfig":
        """The exact Table I configuration (1196x768, 16x16 tiles)."""
        return cls()

    @classmethod
    def benchmark(cls) -> "GpuConfig":
        """Scaled-down screen used by the benchmark harness (384x256)."""
        return cls(screen_width=384, screen_height=256)

    @classmethod
    def small(cls) -> "GpuConfig":
        """Tiny screen for unit tests (96x64 = 6x4 tiles)."""
        return cls(screen_width=96, screen_height=64)
