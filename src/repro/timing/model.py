"""Activity-based cycle model.

Substitutes for Teapot's cycle-accurate simulator: each pipeline stage's
busy cycles are derived from its event counts and the Table I throughput
parameters, and memory stall residues come from the cache/DRAM
simulation that ran alongside the functional render.  The output is the
Geometry/Raster split the paper's Fig. 14a reports.

The model is deliberately additive within a pipeline: TBR GPUs overlap
stages across *different* work items, but over a whole frame the busy
cycles of a stage are a lower bound that the dominant stage converts
into elapsed time.  We therefore take, per pipeline, the dominant-stage
time plus a fixed fraction of the remaining stages' busy time
(:data:`OVERLAP_RESIDUE`) — a standard bottleneck-plus-residue model
whose *ratios* (the quantities the paper reports) are robust to the
residue choice.
"""

from __future__ import annotations

import dataclasses

from ..config import GpuConfig
from ..pipeline.gpu import FrameStats

#: Fraction of non-bottleneck stage time that leaks into elapsed time.
OVERLAP_RESIDUE = 0.3

#: Cycles to parse one command / schedule one drawcall.
COMMAND_CYCLES = 4

#: Vertex fetch issue rate (vertices per cycle through the two queues).
VERTEX_FETCH_CYCLES = 2

#: On-chip bandwidth for draining the Color Buffer into the write path,
#: bytes per cycle (the DRAM transfer itself is in the stall residue).
FLUSH_DRAIN_BYTES_PER_CYCLE = 16

#: Early-Z throughput: one 2x2 quad per cycle.
EARLY_Z_FRAGMENTS_PER_CYCLE = 4

#: Blend throughput, fragments per cycle.
BLEND_FRAGMENTS_PER_CYCLE = 4

#: Tile Scheduler drain rate of Parameter Buffer data, bytes per cycle.
SCHEDULER_BYTES_PER_CYCLE = 16


@dataclasses.dataclass
class CycleBreakdown:
    """Per-frame elapsed-cycle estimate, split like Fig. 14a."""

    geometry_cycles: float = 0.0
    raster_cycles: float = 0.0
    geometry_parts: dict = dataclasses.field(default_factory=dict)
    raster_parts: dict = dataclasses.field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return self.geometry_cycles + self.raster_cycles


def _pipeline_time(parts: dict) -> float:
    """Bottleneck stage + residue of the overlapped remainder."""
    if not parts:
        return 0.0
    bottleneck = max(parts.values())
    remainder = sum(parts.values()) - bottleneck
    return bottleneck + OVERLAP_RESIDUE * remainder


class TimingModel:
    """Convert one frame's activity counts into cycles."""

    def __init__(self, config: GpuConfig) -> None:
        self.config = config

    def frame_cycles(self, stats: FrameStats) -> CycleBreakdown:
        """Convert one frame's activity into cycles.

        Counters are read through :meth:`FrameStats.metric` with the
        same dotted keys the stages registered in the GPU's
        :class:`~repro.engine.stats.StatsRegistry` — the timing model's
        inputs are exactly the registry vocabulary.
        """
        config = self.config
        metric = stats.metric

        geometry_parts = {
            "command_processor": metric("command.drawcalls") * COMMAND_CYCLES
            + metric("command.constant_uploads") * COMMAND_CYCLES,
            "vertex_fetch": metric("vertex.vertices_fetched")
            * VERTEX_FETCH_CYCLES,
            "vertex_shading": metric("vertex.shader_instructions")
            / config.num_vertex_processors,
            "primitive_assembly": metric("assembly.triangles_in")
            / config.triangles_per_cycle,
            "binning": metric("tiling.tile_entries")
            + 2 * metric("tiling.primitives_binned"),
            "pb_write": metric("tiling.parameter_bytes_written")
            / config.dram_bytes_per_cycle,
        }
        geometry_stalls = (
            metric("vertex.stall_cycles")
            + metric("tiling.stall_cycles")
        )
        technique_geometry = metric("technique.geometry_stall_cycles")
        geometry = (
            _pipeline_time(geometry_parts)
            + geometry_stalls
            + technique_geometry
        )
        geometry_parts["memory_stalls"] = geometry_stalls
        geometry_parts["technique_stalls"] = technique_geometry

        raster_parts = {
            "tile_scheduler": metric("raster.pb_bytes_fetched")
            / SCHEDULER_BYTES_PER_CYCLE,
            "rasterizer": metric("raster.interp_attr_fragments")
            / config.raster_attributes_per_cycle,
            "early_z": metric("depth.fragments_tested")
            / EARLY_Z_FRAGMENTS_PER_CYCLE,
            "fragment_shading": metric("fragment.shader_instructions")
            / config.num_fragment_processors,
            "blend": metric("blend.fragments_blended")
            / BLEND_FRAGMENTS_PER_CYCLE,
            "tile_flush": metric("raster.flush_bytes")
            / FLUSH_DRAIN_BYTES_PER_CYCLE,
        }
        raster_stalls = (
            metric("raster.stall_cycles") + metric("fragment.stall_cycles")
        )
        technique_raster = metric("technique.raster_overhead_cycles")
        raster = (
            _pipeline_time(raster_parts)
            + raster_stalls
            + technique_raster
        )
        raster_parts["memory_stalls"] = raster_stalls
        raster_parts["technique_overhead"] = technique_raster

        return CycleBreakdown(
            geometry_cycles=geometry,
            raster_cycles=raster,
            geometry_parts=geometry_parts,
            raster_parts=raster_parts,
        )

    def run_cycles(self, frames) -> CycleBreakdown:
        """Aggregate breakdown over a sequence of FrameStats."""
        total = CycleBreakdown()
        for stats in frames:
            frame = self.frame_cycles(stats)
            total.geometry_cycles += frame.geometry_cycles
            total.raster_cycles += frame.raster_cycles
            for key, value in frame.geometry_parts.items():
                total.geometry_parts[key] = (
                    total.geometry_parts.get(key, 0.0) + value
                )
            for key, value in frame.raster_parts.items():
                total.raster_parts[key] = (
                    total.raster_parts.get(key, 0.0) + value
                )
        return total
