"""Activity-based timing model (Teapot cycle-simulator substitute)."""

from .model import (
    OVERLAP_RESIDUE,
    CycleBreakdown,
    TimingModel,
)

__all__ = ["OVERLAP_RESIDUE", "CycleBreakdown", "TimingModel"]
