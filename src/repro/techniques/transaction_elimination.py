"""Transaction Elimination (Section IV-C model).

ARM's TE hashes a tile's rendered colors *after* the Raster Pipeline has
produced them and skips only the Color-Buffer flush to main memory when
the signature matches the same tile from the previous frame in the same
buffer (two frames back under double buffering).  Everything upstream —
rasterization, early-Z, fragment shading, texturing, blending — still
executes, which is exactly the gap Rendering Elimination exploits.

Following the paper's evaluation model:

* the signature computation adds *no* execution time (idealized), but
  its energy is charged via the bytes-hashed and buffer-access counters;
* tile colors are hashed in their stored RGBA8 form;
* a CRC32 is used (the commercial implementation's exact function is
  undisclosed).  The software model uses :func:`zlib.crc32` for bulk
  speed — any 32-bit CRC gives the same collision behaviour, and the
  model additionally verifies byte equality on signature matches so a
  collision would be *measured*, not silently rendered.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from ..config import GpuConfig
from ..core.signature_buffer import SignatureBuffer
from .base import Technique


@dataclasses.dataclass
class TeStats:
    tiles_hashed: int = 0
    bytes_hashed: int = 0
    flushes_avoided: int = 0
    flush_bytes_avoided: int = 0
    signature_matches: int = 0
    false_positives: int = 0   # CRC matched but bytes differed


class TransactionElimination(Technique):
    """Skip redundant Color-Buffer flushes via post-render signatures."""

    name = "te"

    def __init__(self, config: GpuConfig, compare_distance: int = 2) -> None:
        super().__init__()
        self.config = config
        self.signature_buffer = SignatureBuffer(
            config.num_tiles, compare_distance=compare_distance
        )
        # Byte-exact tile contents per live frame, used only to *detect*
        # CRC false positives (the hardware would render them; the model
        # reports them).
        self._content_banks = [
            [None] * config.num_tiles for _ in range(compare_distance + 1)
        ]
        self._bank = 0
        self.stats = TeStats()

    def begin_frame(self, frame_index: int, has_uploads: bool) -> None:
        self.signature_buffer.begin_frame()
        self._bank = (self._bank + 1) % len(self._content_banks)
        self._content_banks[self._bank] = [None] * self.config.num_tiles

    def end_frame(self) -> None:
        self.signature_buffer.commit_frame()

    def should_flush_tile(self, tile_id: int, tile_colors) -> bool:
        raw = quantize_tile(tile_colors)
        signature = zlib.crc32(raw)
        self.stats.tiles_hashed += 1
        self.stats.bytes_hashed += len(raw)

        self.signature_buffer.write(tile_id, signature)
        self._content_banks[self._bank][tile_id] = raw
        if not self.signature_buffer.matches_reference(tile_id):
            return True

        self.stats.signature_matches += 1
        ref_bank = (
            self._bank - self.signature_buffer.compare_distance
        ) % len(self._content_banks)
        reference = self._content_banks[ref_bank][tile_id]
        if reference is not None and reference != raw:
            self.stats.false_positives += 1
        self.stats.flushes_avoided += 1
        self.stats.flush_bytes_avoided += len(raw)
        return False

    def state_dict(self) -> dict:
        return {
            "signature_buffer": self.signature_buffer.state_dict(),
            "bank": self._bank,
            "content_banks": [list(bank) for bank in self._content_banks],
            "stats": dataclasses.asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        self.signature_buffer.load_state_dict(state["signature_buffer"])
        self._bank = int(state["bank"])
        self._content_banks = [
            [tile if tile is not None else None for tile in bank]
            for bank in state["content_banks"]
        ]
        for name, value in state["stats"].items():
            setattr(self.stats, name, int(value))

    @classmethod
    def stages_bypassed(cls) -> tuple:
        return ("tile_flush",)


def quantize_tile(tile_colors: np.ndarray) -> bytes:
    """RGBA8 byte image of a tile's float colors (the stored format)."""
    clipped = np.clip(np.asarray(tile_colors, dtype=np.float32), 0.0, 1.0)
    return (clipped * 255.0 + 0.5).astype(np.uint8).tobytes()
