"""RE + TE combined (an extension the paper's analysis invites).

Fig. 15a shows two redundant-tile populations: tiles with equal inputs
(Rendering Elimination skips their whole Raster Pipeline) and tiles
whose inputs changed but whose colors did not — occluded movers, pans
over flat color — which RE must render (its "false negatives") but
whose Color-Buffer flush Transaction Elimination can still suppress.

The two mechanisms are orthogonal: RE decides *before* rastering from
input signatures, TE decides *after* rastering from output signatures.
:class:`CombinedElimination` runs both, paying both (small) overheads:

* tiles RE skips never reach TE (no colors are produced, and the Frame
  Buffer already holds the right pixels);
* tiles RE renders still get TE's output-signature check, recovering
  the flush savings on the equal-colors-different-inputs population.

On workloads like ``abi`` (flat-sky panning) or ``hop`` (black-on-black
movers) this strictly dominates either technique alone.

One subtlety: because RE-skipped tiles produce no colors to hash, TE's
signature bank would go stale for them.  Skipping a tile, however,
means its pixels are *unchanged* from the reference frame, so the
combined technique carries the previous signature forward for skipped
tiles — exactly what the hardware would read back from its own bank.
"""

from __future__ import annotations

from ..config import GpuConfig
from .base import RASTER_STAGES, Technique
from .transaction_elimination import TransactionElimination


class CombinedElimination(Technique):
    """Rendering Elimination with Transaction Elimination backstop."""

    name = "re+te"

    def __init__(self, config: GpuConfig, compare_distance: int = 2,
                 exact: bool = False) -> None:
        super().__init__()
        # Imported here: repro.core depends on repro.techniques.base, so
        # a module-level import would be circular.
        from ..core.rendering_elimination import RenderingElimination

        self.config = config
        self.re = RenderingElimination(
            config, exact=exact, compare_distance=compare_distance
        )
        self.te = TransactionElimination(config, compare_distance=compare_distance)
        self._skipped_this_frame: set = set()

    # Lifecycle ----------------------------------------------------------
    def attach(self, gpu) -> None:
        super().attach(gpu)
        self.re.attach(gpu)
        self.te.attach(gpu)

    def begin_frame(self, frame_index: int, has_uploads: bool) -> None:
        self._skipped_this_frame = set()
        self.re.begin_frame(frame_index, has_uploads)
        self.te.begin_frame(frame_index, has_uploads)

    def on_geometry_complete(self) -> None:
        self.re.on_geometry_complete()
        self.te.on_geometry_complete()

    def end_frame(self) -> None:
        # Carry TE signatures forward for tiles RE skipped: their pixels
        # are untouched, so the reference-frame signature still holds.
        buffer = self.te.signature_buffer
        if buffer.reference_bank_valid():
            ref = (buffer._current - buffer.compare_distance) % len(
                buffer._banks
            )
            for tile_id in self._skipped_this_frame:
                buffer.write(tile_id, int(buffer._banks[ref][tile_id]))
        self.re.end_frame()
        self.te.end_frame()

    # Geometry taps -------------------------------------------------------
    def on_draw_state(self, state) -> None:
        self.re.on_draw_state(state)

    def on_primitive(self, prim, tile_ids) -> None:
        self.re.on_primitive(prim, tile_ids)

    # Raster decisions ------------------------------------------------------
    def should_skip_tile(self, tile_id: int) -> bool:
        if self.re.should_skip_tile(tile_id):
            self._skipped_this_frame.add(tile_id)
            return True
        return False

    def should_flush_tile(self, tile_id: int, tile_colors) -> bool:
        return self.te.should_flush_tile(tile_id, tile_colors)

    # Overheads -----------------------------------------------------------
    def geometry_stall_cycles(self) -> int:
        return self.re.geometry_stall_cycles()

    def raster_overhead_cycles(self) -> int:
        return self.re.raster_overhead_cycles()

    # Checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        return {"re": self.re.state_dict(), "te": self.te.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.re.load_state_dict(state["re"])
        self.te.load_state_dict(state["te"])

    # Introspection ----------------------------------------------------------
    def current_signatures(self):
        return self.re.current_signatures()

    @property
    def disabled_this_frame(self) -> bool:
        return self.re.disabled_this_frame

    @disabled_this_frame.setter
    def disabled_this_frame(self, value) -> None:
        # Base-class __init__ assigns this attribute; delegate silently.
        if hasattr(self, "re"):
            self.re.disabled_this_frame = value

    @classmethod
    def stages_bypassed(cls) -> tuple:
        return RASTER_STAGES
