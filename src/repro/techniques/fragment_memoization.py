"""PFR-aided Fragment Memoization (Arnau et al., modeled per Section V-A).

The scheme hashes every fragment's shader inputs (interpolated varyings,
drawcall constants, shader id — screen coordinates excluded) into a
32-bit signature and looks it up in a small set-associative LUT; a hit
skips the fragment shader and its texture fetches.

Because the inter-frame reuse distance is a whole frame, the scheme only
works on top of Parallel Frame Rendering (PFR): frames render in pairs
with *tiles synchronized*, so when the odd frame of a pair shades tile T
the LUT still holds what the even frame inserted for tile T and its
recent neighbours.  Even frames find their predecessor's values already
evicted — halving the detectable redundancy, the asymmetry the paper
highlights.  The model captures both effects:

* even frames: all fragments shade; their hashes are recorded per tile;
* odd frames: a fragment of tile T hits iff its hash survives a
  set-associative LRU LUT filled with the even frame's fragments from a
  window of tiles ending at T.  The window is sized so the window's
  fragment population matches the LUT capacity shared by two frames
  rendering in parallel; per-set conflicts then discard the realistic
  fraction of entries (the paper: a space-limited LUT captures ~60% of
  the potential).

The paper's configuration: 2048-entry, 4-way LUT, 32-bit hashes.

Colors are always computed functionally; memoization changes only the
activity counters (fragments shaded, texture traffic), which is what
Fig. 16 measures.  Hash collisions therefore cannot corrupt the image in
the model, but the 32-bit hash is faithful so hit rates are realistic.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..config import GpuConfig
from .base import Technique

_FNV_PRIME = np.uint32(0x01000193)
_FNV_BASIS = np.uint32(0x811C9DC5)


def fragment_input_hashes(prim, varyings: dict) -> np.ndarray:
    """32-bit signatures of each fragment's shader inputs.

    Vectorized FNV-1a over the fragment's interpolated varyings (bit
    patterns of their float32 components), seeded with a per-drawcall
    hash of the constants block and the shader id.  The ``_screen``
    pseudo-varying is excluded, as in the original proposal.
    """
    state = prim.state
    seed = np.uint32(
        zlib_crc(state.constants_bytes(), state.shader.program_id)
    )
    columns = []
    for name in sorted(varyings):
        if name == "_screen":
            continue
        columns.append(np.ascontiguousarray(
            varyings[name], dtype=np.float32
        ).view(np.uint32))
    count = len(varyings["_screen"])
    hashes = np.full(count, seed ^ _FNV_BASIS, dtype=np.uint32)
    with np.errstate(over="ignore"):
        for column in columns:
            for component in range(column.shape[1]):
                hashes = (hashes ^ column[:, component]) * _FNV_PRIME
    return _fmix32(hashes)


def _fmix32(hashes: np.ndarray) -> np.ndarray:
    """Murmur3 avalanche finalizer.

    Raw FNV leaves the low bits of smooth float inputs (adjacent uv
    values) poorly mixed, which would alias many fragments into the same
    LUT set; the finalizer gives every input bit influence over the set
    index, as a hardware hash-unit design would.
    """
    with np.errstate(over="ignore"):
        hashes = hashes ^ (hashes >> np.uint32(16))
        hashes = hashes * np.uint32(0x85EBCA6B)
        hashes = hashes ^ (hashes >> np.uint32(13))
        hashes = hashes * np.uint32(0xC2B2AE35)
        hashes = hashes ^ (hashes >> np.uint32(16))
    return hashes


def zlib_crc(data: bytes, extra: int = 0) -> int:
    import zlib

    return zlib.crc32(data, extra & 0xFFFFFFFF) & 0xFFFFFFFF


@dataclasses.dataclass
class MemoStats:
    fragments_seen: int = 0
    fragments_hit: int = 0
    lut_lookups: int = 0
    lut_insertions: int = 0


class FragmentMemoization(Technique):
    """Two-frame PFR memoization with a set-associative signature LUT."""

    name = "memo"

    def __init__(self, config: GpuConfig) -> None:
        super().__init__()
        self.config = config
        if config.memo_lut_entries % config.memo_lut_ways != 0:
            raise ValueError("LUT entries must divide evenly into ways")
        self.num_sets = config.memo_lut_entries // config.memo_lut_ways
        self.ways = config.memo_lut_ways
        # Tiles of the even frame whose entries can still be resident
        # when the odd frame reaches tile T: the LUT is shared by two
        # frames inserting in parallel, so half its capacity worth of
        # the even frame's most recent tiles.
        self.window_tiles = max(
            1, config.memo_lut_entries // (2 * config.pixels_per_tile)
        )
        self.stats = MemoStats()
        self._odd_frame = False
        self._even_tile_hashes: dict = {}   # tile_id -> list of arrays
        self._survivor_cache: dict = {}     # tile_id -> survivor array

    def begin_frame(self, frame_index: int, has_uploads: bool) -> None:
        self._odd_frame = frame_index % 2 == 1
        self._survivor_cache = {}
        if not self._odd_frame:
            self._even_tile_hashes = {}

    # Fragment-stage hook ---------------------------------------------------
    def memo_filter(self, prim, varyings: dict) -> int:
        hashes = fragment_input_hashes(prim, varyings)
        count = len(hashes)
        tile_id = self._tile_of(varyings)
        self.stats.fragments_seen += count
        self.stats.lut_lookups += count
        if not self._odd_frame:
            self._even_tile_hashes.setdefault(tile_id, []).append(hashes)
            self.stats.lut_insertions += count
            return 0
        survivors = self._survivors_for(tile_id)
        hits = int(np.isin(hashes, survivors).sum())
        self.stats.fragments_hit += hits
        return hits

    def _tile_of(self, varyings: dict) -> int:
        screen = varyings["_screen"]
        x = int(screen[0, 0])
        y = int(screen[0, 1])
        size = self.config.tile_size
        return (y // size) * self.config.tiles_x + (x // size)

    # LUT residency model ---------------------------------------------------
    def _survivors_for(self, tile_id: int) -> np.ndarray:
        """Even-frame hashes resident when the paired odd frame shades
        ``tile_id``: the last ``ways`` distinct tags per set among the
        even frame's fragments from the trailing tile window."""
        cached = self._survivor_cache.get(tile_id)
        if cached is not None:
            return cached
        window = []
        for t in range(tile_id - self.window_tiles + 1, tile_id + 1):
            window.extend(self._even_tile_hashes.get(t, ()))
        if not window:
            survivors = np.empty(0, dtype=np.uint32)
        else:
            survivors = self._lru_survivors(np.concatenate(window))
        self._survivor_cache[tile_id] = survivors
        return survivors

    def _lru_survivors(self, stream: np.ndarray) -> np.ndarray:
        """Per-set insertion-order LRU: the last ``ways`` distinct tags
        inserted into each set survive."""
        recency = stream[::-1]
        _, first_index = np.unique(recency, return_index=True)
        unique_by_recency = recency[np.sort(first_index)]
        sets = unique_by_recency % np.uint32(self.num_sets)
        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        group_starts = np.searchsorted(sorted_sets, sorted_sets)
        rank_in_set = np.arange(len(sorted_sets)) - group_starts
        keep = rank_in_set < self.ways
        return unique_by_recency[order[keep]]

    def state_dict(self) -> dict:
        """The even frame's recorded hashes must survive a restore that
        lands on the odd frame of a PFR pair.  Dict keys become strings
        in the checkpoint codec, so tile ids are stored as pairs."""
        return {
            "odd_frame": self._odd_frame,
            "even_tile_hashes": [
                [tile_id, list(arrays)]
                for tile_id, arrays in self._even_tile_hashes.items()
            ],
            "stats": dataclasses.asdict(self.stats),
        }

    def load_state_dict(self, state: dict) -> None:
        self._odd_frame = bool(state["odd_frame"])
        self._survivor_cache = {}
        self._even_tile_hashes = {
            int(tile_id): [np.asarray(a, dtype=np.uint32) for a in arrays]
            for tile_id, arrays in state["even_tile_hashes"]
        }
        for name, value in state["stats"].items():
            setattr(self.stats, name, int(value))

    @property
    def lut_occupancy(self) -> int:
        """Survivor count for the highest recorded tile (diagnostics)."""
        if not self._even_tile_hashes:
            return 0
        last_tile = max(self._even_tile_hashes)
        return len(self._survivors_for(last_tile))

    @classmethod
    def stages_bypassed(cls) -> tuple:
        return ("fragment_processing",)
