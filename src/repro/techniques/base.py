"""Technique interface: how redundancy-elimination schemes plug into the
pipeline.

A technique observes the Geometry Pipeline (draw-state changes and
primitive binning — the same taps the paper's Signature Unit uses) and
answers two questions on the raster side:

* :meth:`Technique.should_skip_tile` — skip the whole Raster Pipeline
  for this tile?  (Rendering Elimination)
* :meth:`Technique.should_flush_tile` — after rendering, write the tile
  to the Frame Buffer?  (Transaction Elimination answers False for
  redundant tiles.)

It may also install a fragment memo filter on the fragment stage
(Fragment Memoization).  The baseline implements every hook as a no-op,
so the unmodified pipeline is literally the baseline technique.

:meth:`stages_bypassed` encodes Fig. 3: which Raster Pipeline stages
each technique saves for a redundant tile/fragment.
"""

from __future__ import annotations

#: The Raster Pipeline stages of Fig. 3, in order.
RASTER_STAGES = (
    "tile_scheduler",
    "rasterizer",
    "early_depth",
    "fragment_processing",
    "blend",
    "tile_flush",
)


class Technique:
    """Base class and the explicit do-nothing baseline."""

    name = "baseline"

    def __init__(self) -> None:
        self.gpu = None

    # Lifecycle --------------------------------------------------------
    def attach(self, gpu) -> None:
        """Called once when the technique is installed on a GPU."""
        self.gpu = gpu

    def begin_frame(self, frame_index: int, has_uploads: bool) -> None:
        """Called before the frame's command stream is processed."""

    def end_frame(self) -> None:
        """Called after the frame's last tile, before buffer swap."""

    # Geometry-side taps (PolygonListBuilder listener protocol) ---------
    def on_draw_state(self, state) -> None:
        """A drawcall's snapshotted state is about to be binned."""

    def on_primitive(self, prim, tile_ids) -> None:
        """One primitive was just sorted into ``tile_ids``."""

    def on_geometry_complete(self) -> None:
        """The whole frame's geometry has been binned; tiles are about
        to be scheduled (signatures are final at this point)."""

    # Raster-side decisions ---------------------------------------------
    def should_skip_tile(self, tile_id: int) -> bool:
        """True to bypass the entire Raster Pipeline for this tile."""
        return False

    def should_flush_tile(self, tile_id: int, tile_colors) -> bool:
        """False to suppress the Color Buffer flush for this tile."""
        return True

    # Overheads ----------------------------------------------------------
    def geometry_stall_cycles(self) -> int:
        """Extra Geometry Pipeline cycles this frame (e.g. OT-queue
        overflow stalls); reset by the caller's frame accounting."""
        return 0

    def raster_overhead_cycles(self) -> int:
        """Extra Raster Pipeline cycles this frame (signature compares)."""
        return 0

    # Checkpointing ------------------------------------------------------
    def state_dict(self) -> dict:
        """Cross-frame technique state for RenderSession checkpoints.

        The baseline carries nothing across frames.  Subclasses return
        whatever their ``begin_frame`` does not rebuild from scratch
        (signature history, content banks, memo tables)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Inverse of :meth:`state_dict`; baseline has nothing to do."""

    @classmethod
    def stages_bypassed(cls) -> tuple:
        """Raster stages this technique saves for redundant work (Fig. 3)."""
        return ()
