"""Redundancy-elimination techniques: baseline, TE, Fragment Memoization.

Rendering Elimination itself lives in :mod:`repro.core` (it is the
paper's contribution); this package holds the technique interface and
the prior-art comparison points.
"""

from .base import RASTER_STAGES, Technique
from .combined import CombinedElimination
from .fragment_memoization import (
    FragmentMemoization,
    MemoStats,
    fragment_input_hashes,
)
from .transaction_elimination import TeStats, TransactionElimination, quantize_tile

__all__ = [
    "RASTER_STAGES",
    "Technique",
    "CombinedElimination",
    "FragmentMemoization",
    "MemoStats",
    "fragment_input_hashes",
    "TeStats",
    "TransactionElimination",
    "quantize_tile",
]
