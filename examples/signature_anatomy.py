#!/usr/bin/env python
"""Anatomy of a tile signature: watch the Signature Unit build a tile's
CRC incrementally and verify it against a one-shot reference CRC.

Demonstrates the three layers of the paper's Section III machinery:
Algorithm 1 (incremental combination), Algorithm 2 (subblock signing in
the Compute CRC unit), and Algorithm 3 (re-alignment in the Accumulate
CRC unit), plus the constants bitmap.

Run:  python examples/signature_anatomy.py
"""

from repro.config import GpuConfig
from repro.core import SignatureBuffer, SignatureUnit
from repro.geometry import DrawState, Primitive, mat4
from repro.hashing import (
    AccumulateCrcUnit,
    ComputeCrcUnit,
    combine,
    crc32_table,
)
from repro.shaders import FLAT_COLOR, pack_constants

import numpy as np


def make_primitive(state, seed):
    rng = np.random.default_rng(seed)
    return Primitive(
        screen=rng.random((3, 2)).astype(np.float32) * 64,
        depth=rng.random(3).astype(np.float32),
        clip=rng.random((3, 4)).astype(np.float32),
        varyings={"uv": rng.random((3, 2)).astype(np.float32)},
        state=state,
    )


def main() -> None:
    config = GpuConfig.small()
    state = DrawState(
        shader=FLAT_COLOR,
        constants=pack_constants(mat4.ortho2d(), tint=(1, 0, 0, 1)),
        constants_version=0,
    )
    prims = [make_primitive(state, seed) for seed in (1, 2)]
    tile = 7

    # --- The hardware way: Signature Unit with exact unit models -----
    unit = SignatureUnit(config, exact=True)
    buffer = SignatureBuffer(config.num_tiles)
    buffer.begin_frame()
    unit.begin_frame(buffer)
    unit.on_draw_state(state)
    print("constants signed:", f"{unit._constants_crc:#010x}",
          f"({unit._constants_shift} subblocks)")
    for index, prim in enumerate(prims):
        unit.on_primitive(prim, [tile])
        print(f"after primitive {index}: tile {tile} signature "
              f"{buffer.read(tile):#010x}")
    hardware = buffer.read(tile)
    print(f"Compute CRC unit busy cycles: {unit.stats.compute_cycles}")
    print(f"Accumulate CRC unit busy cycles: {unit.stats.accumulate_cycles}")
    print(f"CRC LUT reads: {unit.stats.lut_reads}")

    # --- The algebraic way: Algorithm 1 over padded blocks ------------
    compute = ComputeCrcUnit(config.crc_block_bytes)
    message = compute.pad(state.constants_bytes())
    for prim in prims:
        message += compute.pad(prim.attribute_bytes())
    reference = crc32_table(message)
    print(f"\none-shot CRC of the whole tile message: {reference:#010x}")
    assert hardware == reference, "hardware and reference CRCs must agree"

    # --- Algorithm 1 by hand over two halves ---------------------------
    half = len(message) // 2
    a, b = message[:half], message[half:]
    combined = combine(crc32_table(a), crc32_table(b), len(b) * 8)
    assert combined == reference
    print("Algorithm 1 over two split halves agrees as well.")
    print("\nAll three computations match: the Signature Unit is bit-exact.")


if __name__ == "__main__":
    main()
