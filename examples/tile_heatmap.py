#!/usr/bin/env python
"""Visualize per-tile redundancy as an ASCII heatmap.

For a chosen game, renders a run under Rendering Elimination and prints,
per tile, how often it was skipped — the spatial structure behind the
paper's Fig. 15a: static HUDs and backgrounds go dark (always skipped),
movers and panning regions stay hot.

Run:  python examples/tile_heatmap.py [--game ctr] [--frames 16]
"""

import argparse

import numpy as np

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.pipeline import Gpu
from repro.workloads import build_scene

#: Darkest = always skipped (fully redundant), brightest = never.
RAMP = " .:-=+*#%@"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--game", default="ctr")
    parser.add_argument("--frames", type=int, default=16)
    args = parser.parse_args()

    config = GpuConfig.small()
    scene = build_scene(args.game)
    gpu = Gpu(config, RenderingElimination(config))

    rendered = np.zeros(config.num_tiles, dtype=int)
    measured_frames = 0
    skipped_per_frame = []
    for index, stream in enumerate(scene.frames(args.frames)):
        stats = gpu.render_frame(stream, clear_color=scene.clear_color)
        skipped_per_frame.append(
            stats.raster.tiles_skipped / config.num_tiles
        )
        if index < 2:
            continue  # warm-up: no reference signatures yet
        measured_frames += 1
        skipped = np.zeros(config.num_tiles, dtype=bool)
        skipped[list(stats.skipped_tile_ids)] = True
        rendered += ~skipped

    heat = rendered / max(1, measured_frames)
    print(f"{args.game}: fraction of frames each tile was rendered "
          f"(' '=never, '@'=always), {config.tiles_x}x{config.tiles_y} tiles\n")
    for ty in range(config.tiles_y):
        row = ""
        for tx in range(config.tiles_x):
            value = heat[ty * config.tiles_x + tx]
            row += RAMP[min(len(RAMP) - 1, int(value * (len(RAMP) - 1) + 0.5))]
        print("  " + row)
    total = rendered.sum()
    possible = measured_frames * config.num_tiles
    print(f"\noverall: rendered {total}/{possible} tile-frames "
          f"({100.0 * total / possible:.1f}%), "
          f"skipped {100.0 * (1 - total / possible):.1f}%")

    # The same data over time: one glyph per frame, taller = more skipped.
    from repro.harness.timeline import sparkline
    timeline = np.array(skipped_per_frame)
    print(f"skip timeline (per frame): [{sparkline(timeline)}]")


if __name__ == "__main__":
    main()
