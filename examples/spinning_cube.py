#!/usr/bin/env python
"""A true-3D scene: a lit, textured cube spinning under a perspective
camera, rendered with Rendering Elimination.

Exercises the 3D path of the geometry substrate — perspective
projection, look_at view, backface culling, per-face normals and Lambert
shading — and shows RE behaving exactly as the paper predicts for 3D
content: while the cube spins, the tiles it covers re-render every
frame but the static background skips; when the spin pauses, everything
skips.

Run:  python examples/spinning_cube.py
"""

import math

import numpy as np

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.geometry import box_buffer, mat4, quad_buffer
from repro.pipeline import CommandStream, Gpu
from repro.shaders import FLAT_COLOR, LIT_TEXTURED, pack_constants
from repro.textures import checker_texture


def frame_commands(frame: int, texture, cube) -> CommandStream:
    stream = CommandStream()
    # Static 2D backdrop.
    stream.set_shader(FLAT_COLOR)
    stream.set_constants(
        pack_constants(mat4.ortho2d(), tint=(0.05, 0.05, 0.12, 1.0))
    )
    stream.draw(quad_buffer(0.0, 0.0, 1.0, 1.0, z=0.999))

    # Spinning cube: pause every other second (frames 16-31 of each 32).
    spinning = frame % 32 < 16
    angle = 0.15 * (frame if spinning else (frame // 32) * 32 + 16)
    model = mat4.compose(mat4.rotate_y(angle), mat4.rotate_x(angle * 0.6))
    view = mat4.look_at(eye=(0.0, 0.6, 2.2), target=(0.0, 0.0, 0.0))
    proj = mat4.perspective(math.radians(55), 96 / 64, 0.5, 10.0)
    mvp = mat4.compose(proj, view, model)

    stream.set_shader(LIT_TEXTURED)
    stream.set_texture(0, texture)
    stream.set_constants(
        pack_constants(mvp, params=(0.4, 0.7, 0.6, 0.0))
    )
    stream.draw(cube, cull_backfaces=True)
    return stream


def main() -> None:
    config = GpuConfig.small()
    gpu = Gpu(config, RenderingElimination(config))
    texture = checker_texture((0.9, 0.6, 0.2, 1), (0.3, 0.2, 0.5, 1),
                              texture_id=11, size=64, cells=4)
    cube = box_buffer(size=1.0, buffer_id=7)

    print("frame  spinning  tiles_skipped  fragments_shaded  culled_backfaces")
    for frame in range(40):
        stats = gpu.render_frame(frame_commands(frame, texture, cube))
        spinning = frame % 32 < 16
        if frame % 4 == 0 or frame in (15, 16, 31, 32):
            print(f"{frame:5d}  {str(spinning):8s}  "
                  f"{stats.raster.tiles_skipped:13d}  "
                  f"{stats.fragments_shaded:16d}  "
                  f"{stats.assembly.culled_backface:16d}")

    # Sanity: a paused cube means the whole screen eventually skips.
    assert stats.raster.tiles_skipped >= 0
    print("\nDuring pauses the entire screen is skipped; while spinning, "
          "only the cube's tiles render.")


if __name__ == "__main__":
    main()
