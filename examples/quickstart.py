#!/usr/bin/env python
"""Quickstart: render a tiny animated scene with and without Rendering
Elimination and compare the work the GPU actually did.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.geometry import mat4, quad_buffer
from repro.pipeline import CommandStream, Gpu
from repro.power import EnergyModel, technique_event_counts
from repro.shaders import FLAT_COLOR, TEXTURED, pack_constants
from repro.textures import checker_texture
from repro.timing import TimingModel


def frame_commands(frame: int) -> CommandStream:
    """A static background plus one small quad sliding to the right."""
    proj = mat4.ortho2d()
    texture = checker_texture((0.9, 0.4, 0.2, 1), (0.2, 0.4, 0.9, 1),
                              texture_id=1, size=128)
    stream = CommandStream()
    # Static, textured background: identical inputs every frame.
    stream.set_shader(TEXTURED)
    stream.set_texture(0, texture)
    stream.set_constants(pack_constants(proj))
    stream.draw(quad_buffer(0.0, 0.0, 1.0, 1.0, z=0.9))
    # A mover: its constants change every frame, so only the tiles it
    # touches lose their redundancy.
    x = 0.05 + 0.02 * frame
    stream.set_shader(FLAT_COLOR)
    stream.set_constants(pack_constants(proj, tint=(1.0, 1.0, 0.2, 1.0)))
    stream.draw(quad_buffer(x, 0.45, x + 0.1, 0.55, z=0.5))
    return stream


def run(technique_name: str) -> None:
    config = GpuConfig.small()
    technique = (
        RenderingElimination(config) if technique_name == "re" else None
    )
    gpu = Gpu(config, technique) if technique else Gpu(config)
    timing = TimingModel(config)
    energy_model = EnergyModel(config)

    print(f"\n=== {technique_name} ===")
    for frame in range(6):
        stats = gpu.render_frame(frame_commands(frame))
        cycles = timing.frame_cycles(stats)
        energy = energy_model.frame_energy(
            stats, cycles, technique_event_counts(gpu.technique)
        )
        print(
            f"frame {frame}: "
            f"tiles skipped {stats.raster.tiles_skipped:3d}/"
            f"{gpu.config.num_tiles}, "
            f"fragments shaded {stats.fragments_shaded:6d}, "
            f"cycles {cycles.total_cycles / 1e3:8.1f}k, "
            f"energy {energy.total_nj / 1e3:7.1f} uJ"
        )
    return stats.frame_colors


if __name__ == "__main__":
    baseline_colors = run("baseline")
    re_colors = run("re")
    identical = np.array_equal(baseline_colors, re_colors)
    print(f"\nFinal frames bit-identical across techniques: {identical}")
    assert identical, "Rendering Elimination must be lossless"
