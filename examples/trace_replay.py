#!/usr/bin/env python
"""Record a workload's command stream to a trace file, then replay it
through the simulator under different techniques — the Teapot workflow.

Run:  python examples/trace_replay.py [--game ccs] [--frames 6]
"""

import argparse
import os
import tempfile

import numpy as np

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.pipeline import Gpu
from repro.techniques import TransactionElimination
from repro.workloads import build_scene
from repro.workloads.trace import TraceReader, record_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--game", default="ccs")
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--out", default=None,
                        help="trace path (default: temp file)")
    args = parser.parse_args()

    scene = build_scene(args.game)
    path = args.out or os.path.join(
        tempfile.gettempdir(), f"{args.game}.trace"
    )
    count = record_trace(path, scene.frames(args.frames))
    size_kb = os.path.getsize(path) / 1024
    print(f"recorded {count} frames of {args.game!r} to {path} "
          f"({size_kb:.0f} KB)")

    config = GpuConfig.small()
    reader = TraceReader(path)
    results = {}
    for name, technique in (
        ("baseline", None),
        ("re", RenderingElimination(config)),
        ("te", TransactionElimination(config)),
    ):
        gpu = Gpu(config, technique) if technique else Gpu(config)
        last = None
        skipped = suppressed = 0
        for stream in reader.replay():
            last = gpu.render_frame(stream, clear_color=scene.clear_color)
            skipped += last.raster.tiles_skipped
            suppressed += last.raster.flushes_suppressed
        results[name] = last.frame_colors
        print(f"{name:8s}: tiles skipped {skipped:4d}, "
              f"flushes suppressed {suppressed:4d}")

    for name in ("re", "te"):
        assert np.array_equal(results["baseline"], results[name]), name
    print("replayed outputs bit-identical across techniques")


if __name__ == "__main__":
    main()
