#!/usr/bin/env python
"""Render a 3D arena walkthrough and dump frames as PPM images.

Combines the true-3D path (perspective camera, lit meshes), Rendering
Elimination, and the PPM writer: render N frames of an orbiting-camera
arena, write each displayed frame to disk, and report RE's per-frame
behaviour.  Open the PPMs in any image viewer to inspect the output.

Run:  python examples/arena_walkthrough.py [--frames 12] [--out /tmp/arena]
      python examples/arena_walkthrough.py --parked   # camera holds still
"""

import argparse
import os

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.harness.images import save_ppm
from repro.harness.timeline import sparkline
from repro.pipeline import Gpu
from repro.workloads import corridor_scene

import numpy as np


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--out", default=os.path.join("/tmp", "arena"))
    parser.add_argument("--parked", action="store_true",
                        help="park the camera (maximize redundancy)")
    args = parser.parse_args()

    config = GpuConfig.small()
    gpu = Gpu(config, RenderingElimination(config))
    scene = corridor_scene(
        moving=not args.parked,
        aspect=config.screen_width / config.screen_height,
    )
    os.makedirs(args.out, exist_ok=True)

    skipped = []
    for index, stream in enumerate(scene.frames(args.frames)):
        stats = gpu.render_frame(stream, clear_color=scene.clear_color)
        skipped.append(stats.raster.tiles_skipped / config.num_tiles)
        path = os.path.join(args.out, f"frame_{index:03d}.ppm")
        save_ppm(path, stats.frame_colors)

    mode = "parked camera" if args.parked else "orbiting camera"
    print(f"{args.frames} frames of the arena ({mode}) written to "
          f"{args.out}/frame_*.ppm")
    print(f"tiles skipped per frame: [{sparkline(np.array(skipped))}]")
    print(f"final frame: {skipped[-1] * 100:.0f}% of tiles skipped")
    if args.parked:
        assert skipped[-1] > 0.3, "a parked camera must leave most tiles static"


if __name__ == "__main__":
    main()
