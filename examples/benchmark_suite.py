#!/usr/bin/env python
"""Run the Table II benchmark suite under every technique and print the
paper's headline comparison (speedup and energy saving per game).

Run:  python examples/benchmark_suite.py [--frames N] [--scale small|benchmark]

This is the long-form version of what benchmarks/ automates; expect a
few minutes at benchmark scale.
"""

import argparse

from repro.config import GpuConfig
from repro.harness import reporting, run_workload
from repro.workloads import FIGURE_ORDER


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--scale", choices=("small", "benchmark"),
                        default="small")
    parser.add_argument("--games", nargs="*", default=list(FIGURE_ORDER))
    args = parser.parse_args()

    config = (
        GpuConfig.small() if args.scale == "small" else GpuConfig.benchmark()
    )
    rows = []
    for alias in args.games:
        base = run_workload(alias, "baseline", config, args.frames)
        re = run_workload(alias, "re", config, args.frames)
        te = run_workload(alias, "te", config, args.frames)
        assert re.final_frame_crc == base.final_frame_crc, (
            f"{alias}: RE output diverged from baseline"
        )
        rows.append([
            alias,
            base.total_cycles / re.total_cycles,
            1.0 - re.total_energy_nj / base.total_energy_nj,
            1.0 - te.total_energy_nj / base.total_energy_nj,
            re.skipped_fraction(),
        ])
    speedups = [r[1] for r in rows]
    rows.append([
        "AVG",
        sum(speedups) / len(speedups),
        sum(r[2] for r in rows) / len(rows),
        sum(r[3] for r in rows[:-1]) / max(1, len(rows) - 1),
        sum(r[4] for r in rows[:-1]) / max(1, len(rows) - 1),
    ])
    print(reporting.format_table(
        ["game", "re_speedup", "re_energy_saving", "te_energy_saving",
         "tiles_skipped"],
        rows,
    ))
    print(f"\ngeomean RE speedup: {reporting.geomean(speedups):.2f}x "
          "(paper: 1.74x average)")


if __name__ == "__main__":
    main()
