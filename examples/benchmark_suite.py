#!/usr/bin/env python
"""Run the Table II benchmark suite under every technique and print the
paper's headline comparison (speedup and energy saving per game).

Run:  python examples/benchmark_suite.py [--frames N] [--scale small|benchmark]
                                         [--jobs N] [--profile]
                                         [--occlusion-culling]
                                         [--raster-backend numpy|compiled]

``--jobs N`` fans the independent (game, technique) cells across N
worker processes (see repro.harness.parallel).  ``--profile`` records
per-stage simulator wall-clock plus event rates and writes them — with
the measured speedup over the pre-batching reference runtime — to
BENCH_pipeline.json; profiling implies a serial run so one recorder
observes every frame.

``--occlusion-culling`` and ``--raster-backend compiled`` exercise the
binning-time occlusion pass and the compiled raster kernels; either
variant suffixes the bench payload's command key (``suite+culling``,
``suite+compiled``) so the registry's trend view never mixes their
profiles with the plain suite's committed baseline.

This is the long-form version of what benchmarks/ automates; expect a
few minutes at benchmark scale.
"""

import argparse
import time

from repro.config import GpuConfig
from repro.harness import reporting, run_workload
from repro.harness.parallel import run_matrix
from repro.workloads import FIGURE_ORDER

#: Wall-clock of this script at ``--frames 6 --scale small`` (all games)
#: before the batched raster path landed, measured on the same host the
#: batching work was tuned on.  ``--profile`` reports the speedup
#: against this when invoked with the same arguments.
SEED_REFERENCE_SECONDS = 16.70
SEED_REFERENCE = {"frames": 6, "scale": "small"}

TECHNIQUES = ("baseline", "re", "te")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--scale", choices=("small", "benchmark"),
                        default="small")
    parser.add_argument("--games", nargs="*", default=list(FIGURE_ORDER))
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the run matrix "
                             "(0/1 = serial)")
    parser.add_argument("--profile", action="store_true",
                        help="record per-stage wall-clock and write "
                             "BENCH_pipeline.json (forces serial)")
    parser.add_argument("--bench-out", default="BENCH_pipeline.json")
    parser.add_argument("--occlusion-culling", action="store_true",
                        help="enable the binning-time opaque-tile "
                             "occlusion pass (bit-identical output)")
    parser.add_argument("--raster-backend", choices=("numpy", "compiled"),
                        default=None,
                        help="raster kernel backend (compiled needs "
                             "numba; degrades to numpy without it)")
    args = parser.parse_args()

    if args.raster_backend:
        from repro.pipeline.kernels import set_raster_backend

        set_raster_backend(args.raster_backend)
    config = (
        GpuConfig.small() if args.scale == "small" else GpuConfig.benchmark()
    )
    if args.occlusion_culling:
        import dataclasses

        config = dataclasses.replace(config, occlusion_culling=True)
    start = time.perf_counter()
    perf = None
    if args.profile:
        from repro.perf import PerfRecorder

        perf = PerfRecorder()

    if args.jobs > 1 and perf is None:
        matrix = run_matrix(
            args.games, TECHNIQUES, config, args.frames, processes=args.jobs
        )

        def get(alias, technique):
            return matrix[(alias, technique)]
    else:
        def get(alias, technique):
            return run_workload(alias, technique, config, args.frames,
                                perf=perf)

    rows = []
    for alias in args.games:
        base = get(alias, "baseline")
        re = get(alias, "re")
        te = get(alias, "te")
        assert re.final_frame_crc == base.final_frame_crc, (
            f"{alias}: RE output diverged from baseline"
        )
        rows.append([
            alias,
            base.total_cycles / re.total_cycles,
            1.0 - re.total_energy_nj / base.total_energy_nj,
            1.0 - te.total_energy_nj / base.total_energy_nj,
            re.skipped_fraction(),
        ])
    speedups = [r[1] for r in rows]
    rows.append([
        "AVG",
        sum(speedups) / len(speedups),
        sum(r[2] for r in rows) / len(rows),
        sum(r[3] for r in rows[:-1]) / max(1, len(rows) - 1),
        sum(r[4] for r in rows[:-1]) / max(1, len(rows) - 1),
    ])
    print(reporting.format_table(
        ["game", "re_speedup", "re_energy_saving", "te_energy_saving",
         "tiles_skipped"],
        rows,
    ))
    print(f"\ngeomean RE speedup: {reporting.geomean(speedups):.2f}x "
          "(paper: 1.74x average)")

    wall = time.perf_counter() - start
    print(f"suite wall-clock: {wall:.2f} s")
    if perf is not None:
        from repro.perf import write_bench

        from repro.pipeline.kernels import backend_record

        command = "suite"
        if args.occlusion_culling:
            command += "+culling"
        if args.raster_backend == "compiled":
            command += "+compiled"
        payload = {
            "suite": "benchmark_suite",
            "command": command,
            "frames": args.frames,
            "scale": args.scale,
            "games": list(args.games),
            "wall_seconds": round(wall, 3),
            "raster_backend": backend_record(),
            "profile": perf.snapshot(),
        }
        if (command == "suite"
                and args.frames == SEED_REFERENCE["frames"]
                and args.scale == SEED_REFERENCE["scale"]
                and list(args.games) == list(FIGURE_ORDER)):
            payload["reference"] = {
                "seed_wall_seconds": SEED_REFERENCE_SECONDS,
                "description": "same args, scalar per-tile path "
                               "(pre-batching seed)",
            }
            payload["speedup_vs_seed"] = round(
                SEED_REFERENCE_SECONDS / wall, 2
            )
            print(f"speedup vs pre-batching seed: "
                  f"{payload['speedup_vs_seed']:.2f}x "
                  f"({SEED_REFERENCE_SECONDS:.2f} s -> {wall:.2f} s)")
        write_bench(args.bench_out, payload)
        print(f"wrote {args.bench_out}")


if __name__ == "__main__":
    main()
