"""Docstring examples stay executable."""

import doctest

import pytest

import repro.hashing.crc32
import repro.hashing.incremental
import repro.obs.tracer
import repro.perf.timers

MODULES = [
    repro.hashing.crc32,
    repro.hashing.incremental,
    repro.obs.tracer,
    repro.perf.timers,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
