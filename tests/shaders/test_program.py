"""ShaderProgram contract and the constants-block layout."""

import numpy as np
import pytest

from repro.errors import ShaderError
from repro.geometry import mat4
from repro.shaders import (
    CONSTANTS_FLOATS,
    ShaderProgram,
    mvp_from_constants,
    pack_constants,
    params_from_constants,
    tint_from_constants,
    validate_constants,
)


class TestConstantsLayout:
    def test_pack_and_unpack_round_trip(self):
        mvp = mat4.translate(1, 2, 3)
        block = pack_constants(mvp, tint=(0.1, 0.2, 0.3, 0.4),
                               params=(5, 6, 7, 8))
        assert block.shape == (CONSTANTS_FLOATS,)
        assert np.allclose(mvp_from_constants(block), mvp)
        assert np.allclose(tint_from_constants(block), [0.1, 0.2, 0.3, 0.4])
        assert np.allclose(params_from_constants(block), [5, 6, 7, 8])

    def test_block_is_96_bytes(self):
        # 12 eight-byte CRC subblocks: the Signature Unit's average
        # constants-signing latency derives from this.
        block = pack_constants(mat4.identity())
        assert block.nbytes == 96

    def test_validate_rejects_wrong_size(self):
        with pytest.raises(ShaderError):
            validate_constants(np.zeros(10))

    def test_validate_flattens_and_casts(self):
        block = validate_constants(np.zeros((6, 4), dtype=np.float64))
        assert block.dtype == np.float32
        assert block.shape == (CONSTANTS_FLOATS,)


class TestShaderProgramContract:
    def make_program(self, vertex_fn=None, fragment_fn=None):
        def default_vs(positions, attributes, constants):
            return positions.copy(), {}

        def default_fs(varyings, constants, fetch):
            count = varyings["_screen"].shape[0]
            return np.zeros((count, 4), dtype=np.float32)

        return ShaderProgram(
            name="test", program_id=42,
            vertex_fn=vertex_fn or default_vs,
            fragment_fn=fragment_fn or default_fs,
            vertex_instructions=1, fragment_instructions=1,
        )

    def test_vertex_shape_enforced(self):
        def bad_vs(positions, attributes, constants):
            return positions[:, :2], {}

        program = self.make_program(vertex_fn=bad_vs)
        with pytest.raises(ShaderError):
            program.run_vertex(
                np.zeros((3, 4), np.float32), {}, pack_constants(mat4.identity())
            )

    def test_fragment_shape_enforced(self):
        def bad_fs(varyings, constants, fetch):
            return np.zeros((4, 3), dtype=np.float32)  # not RGBA

        program = self.make_program(fragment_fn=bad_fs)
        with pytest.raises(ShaderError):
            program.run_fragment(
                {"_screen": np.zeros((4, 2), np.float32)},
                pack_constants(mat4.identity()),
                fetch=None,
            )

    def test_valid_program_passes_through(self):
        program = self.make_program()
        clip, varyings = program.run_vertex(
            np.ones((2, 4), np.float32), {}, pack_constants(mat4.identity())
        )
        assert clip.shape == (2, 4)
        colors = program.run_fragment(
            {"_screen": np.zeros((5, 2), np.float32)},
            pack_constants(mat4.identity()), fetch=None,
        )
        assert colors.shape == (5, 4)
