"""Built-in shader library behaviour."""

import numpy as np
import pytest

from repro.geometry import mat4
from repro.geometry.vec import homogenize
from repro.shaders import (
    ALPHA_TEXTURED,
    FLAT_COLOR,
    LIT_TEXTURED,
    PROGRAMS,
    SCROLLING,
    TEXTURED,
    pack_constants,
)
from repro.textures import flat_texture, gradient_texture, sample_nearest


def make_fetch(texture):
    def fetch(unit, uv):
        assert unit == 0
        return sample_nearest(texture, uv).colors
    return fetch


class TestLibrary:
    def test_registry_complete(self):
        assert set(PROGRAMS) == {
            "flat_color", "textured", "scrolling", "lit_textured",
            "alpha_textured",
        }

    def test_program_ids_unique(self):
        ids = [p.program_id for p in PROGRAMS.values()]
        assert len(set(ids)) == len(ids)

    def test_costs_ordered_by_complexity(self):
        assert (FLAT_COLOR.fragment_instructions
                < TEXTURED.fragment_instructions
                <= SCROLLING.fragment_instructions
                < LIT_TEXTURED.fragment_instructions)

    def test_only_alpha_program_blends(self):
        assert ALPHA_TEXTURED.uses_alpha_blend
        assert not TEXTURED.uses_alpha_blend


class TestFlatColor:
    def test_outputs_tint_everywhere(self):
        constants = pack_constants(mat4.ortho2d(), tint=(0.3, 0.6, 0.9, 1.0))
        colors = FLAT_COLOR.run_fragment(
            {"_screen": np.zeros((7, 2), np.float32)}, constants, fetch=None
        )
        assert colors.shape == (7, 4)
        assert np.allclose(colors, [0.3, 0.6, 0.9, 1.0])

    def test_vertex_transform_applies_mvp(self):
        constants = pack_constants(mat4.ortho2d())
        positions = homogenize([[0.5, 0.5, 0.25]])
        clip, varyings = FLAT_COLOR.run_vertex(positions, {}, constants)
        assert np.allclose(clip[0, :2], [0.0, 0.0], atol=1e-6)  # center
        assert varyings == {}


class TestTextured:
    def test_samples_and_tints(self):
        texture = flat_texture((0.5, 1.0, 0.25, 1.0), texture_id=1)
        constants = pack_constants(mat4.ortho2d(), tint=(2.0, 1.0, 0.0, 1.0))
        varyings = {
            "uv": np.array([[0.5, 0.5]], np.float32),
            "_screen": np.zeros((1, 2), np.float32),
        }
        colors = TEXTURED.run_fragment(varyings, constants, make_fetch(texture))
        assert np.allclose(colors[0], [1.0, 1.0, 0.0, 1.0])

    def test_vertex_passes_uv(self):
        constants = pack_constants(mat4.ortho2d())
        uv = np.array([[0.1, 0.9]], np.float32)
        _, varyings = TEXTURED.run_vertex(
            homogenize([[0, 0, 0]]), {"uv": uv}, constants
        )
        assert np.allclose(varyings["uv"], uv)


class TestScrolling:
    def test_uv_offset_from_params(self):
        texture = gradient_texture((0, 0, 0, 1), (1, 1, 1, 1),
                                   texture_id=2, size=64)
        varyings = {
            "uv": np.array([[0.0, 0.1]], np.float32),
            "_screen": np.zeros((1, 2), np.float32),
        }
        still = SCROLLING.run_fragment(
            varyings, pack_constants(mat4.ortho2d()), make_fetch(texture)
        )
        shifted = SCROLLING.run_fragment(
            varyings,
            pack_constants(mat4.ortho2d(), params=(0.0, 0.7, 0, 0)),
            make_fetch(texture),
        )
        # The vertical gradient brightens with v: shifting uv changes output.
        assert shifted[0, 0] > still[0, 0]


class TestLitTextured:
    def run_with_normal(self, normal, light=(0, 0, 1, 0)):
        texture = flat_texture((1, 1, 1, 1), texture_id=3)
        constants = pack_constants(mat4.ortho2d(), params=light)
        varyings = {
            "uv": np.array([[0.5, 0.5]], np.float32),
            "normal": np.array([normal], np.float32),
            "_screen": np.zeros((1, 2), np.float32),
        }
        return LIT_TEXTURED.run_fragment(
            varyings, constants, make_fetch(texture)
        )

    def test_facing_light_is_bright(self):
        colors = self.run_with_normal([0, 0, 1])
        assert colors[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_away_from_light_clamps_to_ambient(self):
        colors = self.run_with_normal([0, 0, -1])
        assert colors[0, 0] == pytest.approx(0.2, abs=1e-6)

    def test_alpha_untouched_by_lighting(self):
        colors = self.run_with_normal([0, 0, -1])
        assert colors[0, 3] == pytest.approx(1.0)

    def test_vertex_passes_normals(self):
        constants = pack_constants(mat4.ortho2d())
        _, varyings = LIT_TEXTURED.run_vertex(
            homogenize([[0, 0, 0]]),
            {
                "uv": np.zeros((1, 2), np.float32),
                "normal": np.array([[0, 0, 1]], np.float32),
            },
            constants,
        )
        assert "normal" in varyings
