"""DRAM latency hiding scales with fragment-queue depth."""

import dataclasses

import pytest

from repro.config import GpuConfig, QueueConfig
from repro.memory.dram import Dram, latency_overlap


def config_with_queue(entries):
    return dataclasses.replace(
        GpuConfig.small(),
        fragment_queue=QueueConfig("fragment", entries, 233),
    )


class TestLatencyOverlap:
    @pytest.mark.parametrize("entries,expected", [
        (64, 0.9),    # Table I baseline: 90% hidden
        (16, 0.75),
        (4, 0.6),
    ])
    def test_documented_queue_depth_points(self, entries, expected):
        assert latency_overlap(config_with_queue(entries)) == pytest.approx(
            expected
        )

    def test_monotonic_in_queue_depth(self):
        overlaps = [
            latency_overlap(config_with_queue(n)) for n in (1, 4, 16, 64, 256)
        ]
        assert overlaps == sorted(overlaps)
        assert all(0.0 < o < 1.0 for o in overlaps)

    def test_dram_instance_uses_config_overlap(self):
        dram = Dram(config_with_queue(16))
        assert dram.latency_overlap == pytest.approx(0.75)

    def test_shallow_queue_stalls_more(self):
        deep = Dram(config_with_queue(64))
        shallow = Dram(config_with_queue(4))
        deep_stall = deep.read_run(50, 64, "texels")
        shallow_stall = shallow.read_run(50, 64, "texels")
        assert shallow_stall > deep_stall
