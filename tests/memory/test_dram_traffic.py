"""DRAM model and traffic counters."""

import pytest

from repro.config import GpuConfig
from repro.memory import Dram, TrafficCounters, RASTER_STREAMS


class TestTrafficCounters:
    def test_streams_accumulate_independently(self):
        t = TrafficCounters()
        t.add("texels", 100)
        t.add("colors", 50)
        t.add("texels", 10)
        assert t.bytes("texels") == 110
        assert t.bytes("colors") == 50
        assert t.total_bytes == 160

    def test_raster_bytes_sums_fig15b_streams(self):
        t = TrafficCounters()
        for stream in RASTER_STREAMS:
            t.add(stream, 10)
        t.add("vertices", 99)
        assert t.raster_bytes == 30

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TrafficCounters().add("texels", -1)

    def test_merge(self):
        a, b = TrafficCounters(), TrafficCounters()
        a.add("colors", 5)
        b.add("colors", 7)
        a.merge(b)
        assert a.bytes("colors") == 12


class TestDram:
    def test_read_accumulates_traffic_and_stats(self):
        dram = Dram(GpuConfig.small())
        stall = dram.read(256, "texels")
        assert stall > 0
        assert dram.traffic.bytes("texels") == 256
        assert dram.stats.read_bytes == 256
        assert dram.stats.transactions == 1

    def test_transfer_cycles_respect_bandwidth(self):
        config = GpuConfig.small()
        dram = Dram(config)
        dram.read(400, "colors")
        assert dram.stats.transfer_cycles == 100  # 400 B / 4 B-per-cycle

    def test_zero_byte_transaction_is_free(self):
        dram = Dram(GpuConfig.small())
        assert dram.write(0, "colors") == 0
        assert dram.stats.transactions == 0

    def test_negative_size_rejected(self):
        dram = Dram(GpuConfig.small())
        with pytest.raises(ValueError):
            dram.read(-5, "texels")

    def test_latency_rises_under_pressure(self):
        dram = Dram(GpuConfig.small())
        first = dram.read(64, "texels")
        for _ in range(100):
            dram.read(64, "texels")
        later = dram.read(64, "texels")
        assert later >= first

    def test_shared_traffic_counter(self):
        traffic = TrafficCounters()
        dram = Dram(GpuConfig.small(), traffic)
        dram.write(64, "colors")
        assert traffic.bytes("colors") == 64


class TestLatencyHiding:
    def test_baseline_queue_hides_ninety_percent(self):
        from repro.memory.dram import latency_overlap
        assert latency_overlap(GpuConfig.mali450()) == pytest.approx(0.9)

    def test_shallower_queues_hide_less(self):
        import dataclasses
        from repro.config import QueueConfig
        from repro.memory.dram import latency_overlap
        shallow = dataclasses.replace(
            GpuConfig.small(), fragment_queue=QueueConfig("fragment", 4, 233)
        )
        deep = dataclasses.replace(
            GpuConfig.small(), fragment_queue=QueueConfig("fragment", 256, 233)
        )
        assert latency_overlap(shallow) < latency_overlap(GpuConfig.small())
        assert latency_overlap(deep) > latency_overlap(GpuConfig.small())

    def test_shallow_queue_increases_stalls(self):
        import dataclasses
        from repro.config import QueueConfig
        shallow_cfg = dataclasses.replace(
            GpuConfig.small(), fragment_queue=QueueConfig("fragment", 4, 233)
        )
        deep = Dram(GpuConfig.small())
        shallow = Dram(shallow_cfg)
        assert shallow.read(64, "texels") > deep.read(64, "texels")
