"""Set-associative cache model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.memory import Cache, line_addresses


def small_cache(ways=2, size=1024, line=64):
    return Cache(CacheConfig("test", size, line_bytes=line, ways=ways))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_distinct_sets_do_not_conflict(self):
        cache = small_cache()
        sets = cache.num_sets
        cache.access(0)
        cache.access(1)  # different set
        assert cache.access(0) is True
        assert cache.access(1) is True

    def test_lru_eviction_within_set(self):
        cache = small_cache(ways=2)
        sets = cache.num_sets
        # Three lines mapping to set 0.
        a, b, c = 0, sets, 2 * sets
        cache.access(a)
        cache.access(b)
        cache.access(a)      # refresh a; b becomes LRU
        cache.access(c)      # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(ways=1)
        sets = cache.num_sets
        cache.access(0, write=True)
        cache.access(sets)  # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_flush_counts_dirty_lines(self):
        cache = small_cache()
        cache.access(0, write=True)
        cache.access(1, write=False)
        assert cache.flush() == 1
        assert cache.contents_size() == 0

    def test_access_many_returns_miss_count(self):
        cache = small_cache()
        misses = cache.access_many([0, 1, 0, 2, 1])
        assert misses == 3

    @given(st.lists(st.integers(0, 500), max_size=200))
    def test_capacity_bound_holds(self, addrs):
        cache = small_cache(ways=2, size=512)
        cache.access_many(addrs)
        assert cache.contents_size() <= cache.config.ways * cache.num_sets

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    def test_second_pass_over_small_set_hits(self, addrs):
        # Any working set smaller than capacity fully hits on re-access
        # when it fits in every set it maps to.
        unique = sorted(set(addrs))[:4]
        cache = Cache(CacheConfig("big", 64 * 1024, ways=8))
        cache.access_many(unique)
        hits_before = cache.stats.hits
        cache.access_many(unique)
        assert cache.stats.hits == hits_before + len(unique)


class TestCacheConfigValidation:
    def test_rejects_non_multiple_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, line_bytes=64, ways=3)


class TestLineAddresses:
    def test_collapses_runs_and_duplicates(self):
        addrs = np.array([0, 4, 8, 64, 65, 0, 128])
        lines = line_addresses(addrs, 64)
        assert lines.tolist() == [0, 1, 2]

    def test_preserves_first_occurrence_order(self):
        addrs = np.array([640, 0, 320, 640])
        lines = line_addresses(addrs, 64)
        assert lines.tolist() == [10, 0, 5]

    def test_empty_stream(self):
        assert line_addresses(np.array([]), 64).size == 0
