"""Rendering Elimination end-to-end on the simulated GPU."""

import dataclasses

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.geometry import mat4, quad_buffer
from repro.pipeline import CommandStream, Gpu
from repro.pipeline.commands import UploadTexture
from repro.shaders import FLAT_COLOR, TEXTURED, pack_constants
from repro.techniques.base import RASTER_STAGES
from repro.textures import checker_texture, flat_texture

PROJ = mat4.ortho2d()
TEX = checker_texture((1, 0, 0, 1), (0, 0, 1, 1), texture_id=1)


def static_stream():
    """A frame whose inputs never change."""
    stream = CommandStream()
    stream.set_shader(FLAT_COLOR)
    stream.set_constants(pack_constants(PROJ, tint=(0.1, 0.2, 0.3, 1)))
    stream.draw(quad_buffer(0.0, 0.0, 1.0, 1.0, z=0.9))
    stream.set_shader(TEXTURED)
    stream.set_texture(0, TEX)
    stream.set_constants(pack_constants(PROJ))
    stream.draw(quad_buffer(0.25, 0.25, 0.75, 0.75, z=0.5))
    return stream


def animated_stream(frame):
    """A frame with a small moving quad over a static background."""
    x = 0.1 + 0.02 * frame
    stream = CommandStream()
    stream.set_shader(FLAT_COLOR)
    stream.set_constants(pack_constants(PROJ, tint=(0.1, 0.2, 0.3, 1)))
    stream.draw(quad_buffer(0.0, 0.0, 1.0, 1.0, z=0.9))
    stream.set_shader(FLAT_COLOR)
    stream.set_constants(pack_constants(PROJ, tint=(1, 1, 0, 1)))
    stream.draw(quad_buffer(x, 0.4, x + 0.15, 0.6, z=0.5))
    return stream


def re_gpu(config=None, **kwargs):
    config = config or GpuConfig.small()
    return Gpu(config, RenderingElimination(config, **kwargs))


class TestSkipping:
    def test_static_scene_skips_everything_after_warmup(self):
        gpu = re_gpu()
        frames = [gpu.render_frame(static_stream()) for _ in range(4)]
        assert frames[0].raster.tiles_skipped == 0
        assert frames[1].raster.tiles_skipped == 0  # warm-up (distance 2)
        assert frames[2].raster.tiles_skipped == gpu.config.num_tiles
        assert frames[3].raster.tiles_skipped == gpu.config.num_tiles

    def test_skipped_tiles_consume_no_raster_activity(self):
        gpu = re_gpu()
        for _ in range(2):
            gpu.render_frame(static_stream())
        stats = gpu.render_frame(static_stream())
        assert stats.fragments_shaded == 0
        assert stats.traffic["texels"] == 0
        assert stats.traffic["colors"] == 0
        assert stats.traffic["primitives"] == 0
        # Geometry still ran in full.
        assert stats.vertex.vertices_shaded == 8

    def test_animated_scene_skips_only_static_tiles(self):
        gpu = re_gpu()
        for frame in range(4):
            stats = gpu.render_frame(animated_stream(frame))
        skipped = stats.raster.tiles_skipped
        assert 0 < skipped < gpu.config.num_tiles

    def test_output_identical_to_baseline(self):
        config = GpuConfig.small()
        baseline = Gpu(config)
        re = re_gpu(config)
        for frame in range(6):
            expected = baseline.render_frame(animated_stream(frame))
            actual = re.render_frame(animated_stream(frame))
            assert np.array_equal(expected.frame_colors, actual.frame_colors), (
                f"frame {frame} diverged"
            )

    def test_static_output_identical_to_baseline(self):
        config = GpuConfig.small()
        baseline = Gpu(config)
        re = re_gpu(config)
        for _ in range(5):
            expected = baseline.render_frame(static_stream())
            actual = re.render_frame(static_stream())
            assert np.array_equal(expected.frame_colors, actual.frame_colors)


class TestDisableConditions:
    def test_upload_disables_for_the_frame(self):
        gpu = re_gpu()
        for _ in range(3):
            gpu.render_frame(static_stream())
        stream = static_stream()
        stream.append(UploadTexture(0, flat_texture((1, 1, 1, 1), 9)))
        stats = gpu.render_frame(stream)
        assert stats.re_disabled is True
        assert stats.raster.tiles_skipped == 0

    def test_history_invalidated_after_upload(self):
        gpu = re_gpu()
        for _ in range(3):
            gpu.render_frame(static_stream())
        stream = static_stream()
        stream.append(UploadTexture(0, flat_texture((1, 1, 1, 1), 9)))
        gpu.render_frame(stream)
        # Frames right after the upload cannot trust pre-upload banks.
        after1 = gpu.render_frame(static_stream())
        after2 = gpu.render_frame(static_stream())
        assert after1.raster.tiles_skipped == 0
        assert after2.raster.tiles_skipped == 0
        after3 = gpu.render_frame(static_stream())
        assert after3.raster.tiles_skipped == gpu.config.num_tiles

    def test_periodic_refresh_forces_render(self):
        config = dataclasses.replace(
            GpuConfig.small(), re_refresh_period_frames=4
        )
        gpu = re_gpu(config)
        skipped = []
        for _ in range(9):
            skipped.append(
                gpu.render_frame(static_stream()).raster.tiles_skipped
            )
        assert skipped[3] == gpu.config.num_tiles
        assert skipped[4] == 0          # frame 4: refresh
        assert skipped[8] == 0          # frame 8: refresh

    def test_multiple_render_targets_disables_wholesale(self):
        config = GpuConfig.small()
        gpu = Gpu(config, RenderingElimination(config, multiple_render_targets=True))
        for _ in range(4):
            stats = gpu.render_frame(static_stream())
        assert stats.raster.tiles_skipped == 0


class TestOverheadsAndMetadata:
    def test_compare_overhead_scales_with_tiles(self):
        gpu = re_gpu()
        gpu.render_frame(static_stream())
        stats = gpu.render_frame(static_stream())
        assert stats.technique_raster_overhead_cycles == (
            gpu.config.num_tiles * 2
        )

    def test_storage_under_one_percent_of_paper_area(self):
        # The paper reports <1% area; sanity-check the added SRAM/ROM is
        # tens of KB, not MB, at full Table I scale.
        config = GpuConfig.mali450()
        technique = RenderingElimination(config)
        assert technique.storage_bytes < 64 * 1024

    def test_stages_bypassed_is_whole_raster_pipeline(self):
        assert RenderingElimination.stages_bypassed() == RASTER_STAGES

    def test_frame_records_track_skips(self):
        gpu = re_gpu()
        technique = gpu.technique
        for _ in range(3):
            gpu.render_frame(static_stream())
        assert len(technique.frame_records) == 3
        assert technique.frame_records[2].tiles_skipped == gpu.config.num_tiles
        assert technique.frame_records[0].signatures.shape == (
            gpu.config.num_tiles,
        )

    @pytest.mark.slow
    def test_exact_and_fast_gpu_runs_agree(self):
        config = GpuConfig.small()
        fast = Gpu(config, RenderingElimination(config, exact=False))
        exact = Gpu(config, RenderingElimination(config, exact=True))
        for frame in range(3):
            a = fast.render_frame(animated_stream(frame))
            b = exact.render_frame(animated_stream(frame))
            assert a.raster.tiles_skipped == b.raster.tiles_skipped
            assert np.array_equal(
                fast.technique.current_signatures(),
                exact.technique.current_signatures(),
            )
