"""Signature Buffer: ring banks, comparison distance, invalidation."""

import numpy as np
import pytest

from repro.core import SignatureBuffer
from repro.errors import ReproError


class TestRingLifecycle:
    def test_needs_begin_frame_rotation(self):
        buf = SignatureBuffer(num_tiles=4, compare_distance=2)
        buf.begin_frame()
        buf.write(0, 0xAAAA)
        assert buf.read(0) == 0xAAAA

    def test_no_match_during_warmup(self):
        buf = SignatureBuffer(num_tiles=4, compare_distance=2)
        for _ in range(2):
            buf.begin_frame()
            buf.write(0, 0x1234)
            buf.commit_frame()
            # Reference bank (2 frames back) does not exist yet.
            assert buf.matches_reference(0) is False

    def test_matches_two_frames_back(self):
        buf = SignatureBuffer(num_tiles=4, compare_distance=2)
        values = [0x11, 0x22, 0x11]  # frame 2 equals frame 0
        for value in values:
            buf.begin_frame()
            buf.write(0, value)
        # Commit the first two; compare during frame 2.
        # Re-run properly: signatures commit per frame.
        buf = SignatureBuffer(num_tiles=4, compare_distance=2)
        for i, value in enumerate(values):
            buf.begin_frame()
            buf.write(0, value)
            if i == 2:
                assert buf.matches_reference(0) is True
            buf.commit_frame()

    def test_mismatch_two_frames_back(self):
        buf = SignatureBuffer(num_tiles=4, compare_distance=2)
        for i, value in enumerate([0x11, 0x22, 0x33]):
            buf.begin_frame()
            buf.write(0, value)
            if i == 2:
                assert buf.matches_reference(0) is False
            buf.commit_frame()

    def test_distance_one_compares_previous_frame(self):
        buf = SignatureBuffer(num_tiles=2, compare_distance=1)
        buf.begin_frame()
        buf.write(1, 0x77)
        buf.commit_frame()
        buf.begin_frame()
        buf.write(1, 0x77)
        assert buf.matches_reference(1) is True

    def test_invalidate_all_blocks_matching(self):
        buf = SignatureBuffer(num_tiles=2, compare_distance=1)
        buf.begin_frame()
        buf.write(0, 0x5)
        buf.commit_frame()
        buf.invalidate_all()
        buf.begin_frame()
        buf.write(0, 0x5)
        assert buf.matches_reference(0) is False

    def test_uncommitted_reference_never_matches(self):
        buf = SignatureBuffer(num_tiles=2, compare_distance=1)
        buf.begin_frame()
        buf.write(0, 0x5)  # never committed (e.g. RE-disabled frame)
        buf.begin_frame()
        buf.write(0, 0x5)
        assert buf.matches_reference(0) is False

    def test_invalid_distance_rejected(self):
        with pytest.raises(ReproError):
            SignatureBuffer(num_tiles=4, compare_distance=0)


class TestBulkAccess:
    def test_read_write_many(self):
        buf = SignatureBuffer(num_tiles=8, compare_distance=2)
        buf.begin_frame()
        ids = np.array([1, 3, 5])
        buf.write_many(ids, np.array([10, 30, 50], dtype=np.uint32))
        assert buf.read_many(ids).tolist() == [10, 30, 50]
        assert buf.read(0) == 0

    def test_stats_count_operations(self):
        buf = SignatureBuffer(num_tiles=8)
        buf.begin_frame()
        buf.write(0, 1)
        buf.read(0)
        buf.matches_reference(0)
        assert buf.stats.writes == 1
        assert buf.stats.reads == 1
        assert buf.stats.compares == 1

    def test_storage_cost_is_two_frames(self):
        buf = SignatureBuffer(num_tiles=3600)  # the paper's tile count
        assert buf.storage_bytes == 2 * 3600 * 4  # 28.8 KB

    def test_current_view_is_read_only(self):
        buf = SignatureBuffer(num_tiles=4)
        buf.begin_frame()
        with pytest.raises(ValueError):
            buf.current[0] = 1
