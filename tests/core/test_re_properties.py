"""Property-based end-to-end tests: random scenes through the full
Rendering Elimination stack.

The invariants under test are the paper's correctness arguments:

1. **Losslessness** — for any animated scene, frames rendered with RE
   are bit-identical to the baseline (signature matches imply equal
   outputs; no false positive may slip through).
2. **Determinism** — equal tile inputs always produce equal signatures
   (no false *noise*: a static scene converges to full skipping).
3. **Locality** — animating one region never prevents skipping of
   tiles the animation cannot touch.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.geometry import mat4, quad_buffer
from repro.pipeline import CommandStream, Gpu
from repro.shaders import FLAT_COLOR, TEXTURED, pack_constants
from repro.textures import checker_texture

PROJ = mat4.ortho2d()
TEXTURE = checker_texture((0.8, 0.2, 0.2, 1), (0.2, 0.2, 0.8, 1),
                          texture_id=99, size=64)

# A compact scene description hypothesis can shrink: a list of quads
# with optional per-frame motion.
quad_strategy = st.fixed_dictionaries({
    "x0": st.floats(0.0, 0.7, allow_nan=False),
    "y0": st.floats(0.0, 0.7, allow_nan=False),
    "w": st.floats(0.05, 0.3, allow_nan=False),
    "h": st.floats(0.05, 0.3, allow_nan=False),
    "z": st.floats(0.1, 0.8, allow_nan=False),
    "textured": st.booleans(),
    "animated": st.booleans(),
    "speed": st.floats(0.0, 0.05, allow_nan=False),
})

scene_strategy = st.lists(quad_strategy, min_size=1, max_size=5)


def build_stream(quads, frame: int) -> CommandStream:
    stream = CommandStream()
    stream.set_shader(FLAT_COLOR)
    stream.set_constants(pack_constants(PROJ, tint=(0.1, 0.1, 0.15, 1)))
    stream.draw(quad_buffer(0.0, 0.0, 1.0, 1.0, z=0.95))
    for index, quad in enumerate(quads):
        dx = quad["speed"] * frame if quad["animated"] else 0.0
        mvp = mat4.compose(PROJ, mat4.translate(dx, 0.0))
        if quad["textured"]:
            stream.set_shader(TEXTURED)
            stream.set_texture(0, TEXTURE)
        else:
            stream.set_shader(FLAT_COLOR)
        tint = (0.2 + 0.1 * index, 0.9 - 0.1 * index, 0.5, 1.0)
        stream.set_constants(pack_constants(mvp, tint=tint))
        stream.draw(quad_buffer(
            quad["x0"], quad["y0"],
            quad["x0"] + quad["w"], quad["y0"] + quad["h"], z=quad["z"],
        ))
    return stream


@settings(max_examples=15, deadline=None)
@given(scene_strategy)
def test_re_is_lossless_on_random_scenes(quads):
    config = GpuConfig.small()
    baseline = Gpu(config)
    re = Gpu(config, RenderingElimination(config))
    for frame in range(5):
        stream_a = build_stream(quads, frame)
        stream_b = build_stream(quads, frame)
        expected = baseline.render_frame(stream_a)
        actual = re.render_frame(stream_b)
        assert np.array_equal(expected.frame_colors, actual.frame_colors)


@settings(max_examples=15, deadline=None)
@given(scene_strategy)
def test_static_random_scene_converges_to_full_skip(quads):
    static = [dict(quad, animated=False) for quad in quads]
    config = GpuConfig.small()
    gpu = Gpu(config, RenderingElimination(config))
    for frame in range(4):
        stats = gpu.render_frame(build_stream(static, frame))
    assert stats.raster.tiles_skipped == config.num_tiles


@settings(max_examples=10, deadline=None)
@given(scene_strategy, st.integers(0, 3))
def test_animation_only_poisons_reachable_tiles(quads, mover_index):
    """Tiles that no animated quad's bounding motion can reach are
    always skipped once warm."""
    config = GpuConfig.small()
    gpu = Gpu(config, RenderingElimination(config))
    frames = 5
    # Reachable x-extent of each animated quad over the run.
    poisoned = np.zeros(config.num_tiles, dtype=bool)
    size = config.tile_size
    for quad in quads:
        if not quad["animated"] or quad["speed"] == 0.0:
            continue
        # One-pixel margin on every side: binning uses the primitive's
        # conservative integer bounding box (floor/ceil+1), which can
        # touch one tile beyond the exact float extent.
        x0 = quad["x0"] * config.screen_width - 2
        x1 = (quad["x0"] + quad["w"] + quad["speed"] * frames) * config.screen_width + 2
        y0 = quad["y0"] * config.screen_height - 2
        y1 = (quad["y0"] + quad["h"]) * config.screen_height + 2
        x0, y0 = max(0.0, x0), max(0.0, y0)
        tx0, tx1 = int(x0 // size), int(min(x1, config.screen_width - 1) // size)
        ty0, ty1 = int(y0 // size), int(min(y1, config.screen_height - 1) // size)
        for ty in range(ty0, ty1 + 1):
            for tx in range(tx0, tx1 + 1):
                poisoned[ty * config.tiles_x + tx] = True

    last = None
    for frame in range(frames):
        last = gpu.render_frame(build_stream(quads, frame))
    skipped = np.zeros(config.num_tiles, dtype=bool)
    skipped[list(last.skipped_tile_ids)] = True
    clean = ~poisoned
    assert np.all(skipped[clean]), (
        "a tile untouched by any animation was rendered"
    )
