"""Tile-input bitstream framing helpers (Section III-E)."""

import numpy as np

from repro.core import constants_block, padded_length, primitive_block
from repro.geometry import DrawState, Primitive, mat4
from repro.shaders import FLAT_COLOR, pack_constants


def make_prim(varyings=None):
    return Primitive(
        screen=np.zeros((3, 2), np.float32),
        depth=np.zeros(3, np.float32),
        clip=np.arange(12, dtype=np.float32).reshape(3, 4),
        varyings=varyings or {},
        state=DrawState(FLAT_COLOR, pack_constants(mat4.ortho2d())),
    )


class TestFraming:
    def test_constants_block_is_the_uniform_bytes(self):
        state = DrawState(
            FLAT_COLOR, pack_constants(mat4.ortho2d(), tint=(1, 2, 3, 4))
        )
        block = constants_block(state)
        assert block == state.constants_bytes()
        assert len(block) == 96

    def test_primitive_block_is_attribute_bytes(self):
        prim = make_prim({"uv": np.ones((3, 2), np.float32)})
        assert primitive_block(prim) == prim.attribute_bytes()
        assert len(primitive_block(prim)) == 96  # clip + padded uv

    def test_padded_length(self):
        assert padded_length(0, 8) == 0
        assert padded_length(1, 8) == 8
        assert padded_length(8, 8) == 8
        assert padded_length(9, 8) == 16
        assert padded_length(96, 8) == 96

    def test_blocks_of_different_content_differ(self):
        a = make_prim({"uv": np.zeros((3, 2), np.float32)})
        b = make_prim({"uv": np.ones((3, 2), np.float32)})
        assert primitive_block(a) != primitive_block(b)
