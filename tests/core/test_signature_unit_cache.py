"""Signature Unit bugfix regressions: bounded LRU block cache, empty
overlap-set accounting, and round-half-up OT-queue stalls."""

import dataclasses

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.core import SignatureBuffer, SignatureUnit
from repro.core import signature_unit as signature_unit_module
from repro.geometry import DrawState, Primitive, mat4
from repro.shaders import FLAT_COLOR, pack_constants


def make_state(version=0):
    return DrawState(
        shader=FLAT_COLOR,
        constants=pack_constants(mat4.ortho2d()),
        constants_version=version,
    )


def make_prim(seed=0, state=None):
    rng = np.random.default_rng(seed)
    return Primitive(
        screen=rng.random((3, 2)).astype(np.float32) * 16,
        depth=rng.random(3).astype(np.float32),
        clip=rng.random((3, 4)).astype(np.float32),
        varyings={"uv": rng.random((3, 2)).astype(np.float32)},
        state=state or make_state(),
    )


def fresh_unit(exact=False, **config_overrides):
    config = GpuConfig.small()
    if config_overrides:
        config = dataclasses.replace(config, **config_overrides)
    unit = SignatureUnit(config, exact=exact)
    buffer = SignatureBuffer(config.num_tiles)
    buffer.begin_frame()
    unit.begin_frame(buffer)
    return unit, buffer


class TestBlockCacheLru:
    """The block-CRC memo evicts one LRU entry at the limit instead of
    clearing wholesale (which re-signed every live block)."""

    def test_cache_never_exceeds_limit(self, monkeypatch):
        monkeypatch.setattr(signature_unit_module, "_BLOCK_CACHE_LIMIT", 4)
        unit, _ = fresh_unit()
        for i in range(32):
            unit._sign_block(b"block-%03d" % i)
            assert len(unit._block_cache) <= 4

    def test_eviction_is_lru_and_keeps_warm_entries(self, monkeypatch):
        monkeypatch.setattr(signature_unit_module, "_BLOCK_CACHE_LIMIT", 4)
        unit, _ = fresh_unit()
        blocks = [b"block-%d" % i for i in range(4)]
        for block in blocks:
            unit._sign_block(block)
        # Touch block 0 so block 1 is now the LRU entry ...
        unit._sign_block(blocks[0])
        unit._sign_block(b"block-new")
        cached = set(unit._block_cache)
        # ... and only block 1 was evicted; the warm entries survive.
        assert blocks[0] in cached
        assert blocks[1] not in cached
        assert {blocks[2], blocks[3], b"block-new"} <= cached

    def test_values_survive_eviction_cycles(self, monkeypatch):
        monkeypatch.setattr(signature_unit_module, "_BLOCK_CACHE_LIMIT", 2)
        unit, _ = fresh_unit()
        reference, _ = fresh_unit()
        blocks = [b"A" * 24, b"B" * 40, b"C" * 8, b"A" * 24, b"B" * 40]
        for block in blocks:
            assert unit._sign_block(block) == reference._sign_block(block)


class TestEmptyOverlapSet:
    """A primitive overlapping zero tiles never reaches the Signature
    Unit in the paper's model: no signing, no bitmap read, no counters."""

    @pytest.mark.parametrize("exact", [False, True])
    def test_no_counter_or_buffer_activity(self, exact):
        unit, buffer = fresh_unit(exact=exact)
        state = make_state()
        unit.on_draw_state(state)
        before_stats = dataclasses.asdict(unit.stats)
        before_sigs = buffer.current.copy()
        unit.on_primitive(make_prim(state=state), [])
        unit.on_primitive(make_prim(state=state), np.empty(0, dtype=np.int64))
        assert dataclasses.asdict(unit.stats) == before_stats
        assert np.array_equal(buffer.current, before_sigs)

    def test_counters_match_paper_model_after_mixed_stream(self):
        """Interleaved empty overlap sets leave the signed/update counts
        exactly what the non-empty events alone produce."""
        state = make_state()
        with_empties, buffer_a = fresh_unit()
        with_empties.on_draw_state(state)
        without, buffer_b = fresh_unit()
        without.on_draw_state(state)
        for seed, tiles in [(0, [1, 2]), (1, []), (2, [2, 3, 5]), (3, [])]:
            with_empties.on_primitive(make_prim(seed, state), tiles)
            if tiles:
                without.on_primitive(make_prim(seed, state), tiles)
        assert (dataclasses.asdict(with_empties.stats)
                == dataclasses.asdict(without.stats))
        assert with_empties.stats.primitives_signed == 2
        assert with_empties.stats.tile_updates == 5
        assert with_empties.stats.bitmap_reads == 5
        assert np.array_equal(buffer_a.current, buffer_b.current)


class TestOtQueueRounding:
    """OT-queue overflow stalls round half-up instead of truncating."""

    @pytest.mark.parametrize("num_tiles", [10, 12, 17, 20])
    def test_stall_is_round_half_up_of_drain_time(self, num_tiles):
        unit, _ = fresh_unit(ot_queue_entries=8)
        state = make_state()
        unit.on_draw_state(state)
        unit.on_primitive(make_prim(state=state), list(range(num_tiles)))
        overflow = num_tiles - 8
        avg_cycles = unit.stats.accumulate_cycles / num_tiles
        assert unit.stats.stall_cycles == int(overflow * avg_cycles + 0.5)

    def test_half_fraction_rounds_up_not_down(self):
        """The regression: a .5 drain fraction must round up.  With the
        constants folded into every tile, per-tile cost is uniform, so
        engineer avg_cycles * overflow to land on .5 exactly."""
        unit, _ = fresh_unit(ot_queue_entries=1)
        state = make_state()
        unit.on_draw_state(state)
        unit.on_primitive(make_prim(state=state), [0, 1])
        per_tile = unit.stats.accumulate_cycles / 2
        expected = int(1 * per_tile + 0.5)
        assert unit.stats.stall_cycles == expected
        if (1 * per_tile) % 1.0 == 0.5:
            assert unit.stats.stall_cycles == int(per_tile) + 1
