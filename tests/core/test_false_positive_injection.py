"""Adversarial test: inject a *constructed* CRC32 collision.

The paper argues CRC32 false positives are ~one per 4 billion tiles and
reports observing none.  Our harness likewise measures zero — but a
measurement of zero is only meaningful if the machinery would catch a
collision when one occurs.  CRC32 is linear over GF(2), so a colliding
input can be constructed deliberately: for any two messages of equal
length, patching the final 32 bits of one by

    patch = crc(other_message) XOR shift_crc(crc(prefix), 32)

makes their CRCs equal.  This test builds two frames whose tile inputs
genuinely differ (different drawcall tint => different pixels) yet whose
tile signatures collide, then verifies:

1. the Signature Unit really produces identical signatures (the
   construction is correct);
2. Rendering Elimination, fed the colliding frame, *skips* the tile and
   leaves stale pixels — the exact hazard the paper quantifies;
3. the measurement machinery reports it: colors differ while inputs
   "match", i.e. a false positive is visible, not silently absorbed.
"""

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.core import RenderingElimination
from repro.geometry import mat4, quad_buffer
from repro.hashing import crc32_table, shift_crc
from repro.hashing.parallel import ComputeCrcUnit
from repro.pipeline import CommandStream, Gpu
from repro.shaders import ShaderProgram, pack_constants


def _vs_aux(positions, attributes, constants):
    from repro.geometry import mat4 as m
    from repro.shaders.program import mvp_from_constants
    clip = m.transform(mvp_from_constants(constants), positions)
    return clip, {"aux": attributes["aux"].astype(np.float32)}


def _fs_tint(varyings, constants, fetch):
    from repro.shaders.program import tint_from_constants
    count = varyings["_screen"].shape[0]
    return np.broadcast_to(tint_from_constants(constants), (count, 4)).copy()


AUX_SHADER = ShaderProgram(
    name="aux_flat", program_id=77,
    vertex_fn=_vs_aux, fragment_fn=_fs_tint,
    vertex_instructions=24, fragment_instructions=16,
)


def aux_quad(aux_values):
    quad = quad_buffer(0.0, 0.0, 1.0, 1.0, z=0.5)
    quad.attributes["aux"] = np.asarray(aux_values, dtype=np.float32)
    return quad


def frame(tint, aux_values):
    stream = CommandStream()
    stream.set_shader(AUX_SHADER)
    stream.set_constants(pack_constants(mat4.ortho2d(), tint=tint))
    stream.draw(aux_quad(aux_values))
    return stream


def craft_collision(config):
    """Two (tint, aux) frame parameter sets with colliding signatures.

    Frame A is benign.  Frame B changes the tint (changing every pixel)
    and compensates by patching the final float of the *second*
    triangle's aux varying so the tile CRC is unchanged.
    """
    tint_a = (0.2, 0.4, 0.6, 1.0)
    tint_b = (0.9, 0.1, 0.1, 1.0)   # visibly different
    aux_a = np.zeros((4, 4), dtype=np.float32)

    # Reconstruct the exact tile message the Signature Unit will sign,
    # by replaying the pipeline front end for each candidate frame.
    def tile_message(tint, aux):
        from repro.memory.cache import Cache
        from repro.memory.dram import Dram
        from repro.pipeline.command_processor import CommandProcessor
        from repro.pipeline.primitive_assembly import PrimitiveAssembly
        from repro.pipeline.vertex_stage import VertexStage

        compute = ComputeCrcUnit(config.crc_block_bytes)
        processor = CommandProcessor()
        vertex = VertexStage(Cache(config.vertex_cache), Dram(config))
        assembly = PrimitiveAssembly(
            config.screen_width, config.screen_height
        )
        (invocation,) = processor.process(frame(tint, aux))
        shaded = vertex.run(invocation)
        prims = assembly.assemble(invocation, shaded)
        message = compute.pad(invocation.state.constants_bytes())
        for prim in prims:
            message += compute.pad(prim.attribute_bytes())
        return message

    message_a = tile_message(tint_a, aux_a)
    target = crc32_table(message_a)

    # Patch the last 4 bytes of frame B's message.  The quad's triangles
    # index vertices [0,1,3] and [0,3,2], so vertex 2 appears exactly
    # once, as the *last* vertex of the last triangle: aux row 2, lane 3
    # is the final float of the signed stream (rows 0/1/3 would appear
    # twice or earlier).  The CRC algebra yields the patch as an
    # MSB-first 32-bit value; the message stores the float's
    # *little-endian* bytes, and the bit pattern must be written through
    # a uint32 view (float assignment would canonicalize NaN payloads).
    aux_b = np.zeros((4, 4), dtype=np.float32)
    message_b_unpatched = tile_message(tint_b, aux_b)
    assert len(message_b_unpatched) == len(message_a)
    prefix = message_b_unpatched[:-4]
    patch = target ^ shift_crc(crc32_table(prefix), 32)
    patch_bytes = int(patch).to_bytes(4, "big")
    aux_b.view(np.uint32)[2, 3] = int.from_bytes(patch_bytes, "little")
    # Verify the construction before handing it to the GPU.
    assert crc32_table(prefix + patch_bytes) == target
    assert tile_message(tint_b, aux_b) == prefix + patch_bytes
    return (tint_a, aux_a), (tint_b, aux_b)


@pytest.fixture()
def config():
    # One-tile screen: the whole frame is a single 16x16 tile, so the
    # quad's two triangles are its only content.
    import dataclasses
    return dataclasses.replace(
        GpuConfig.small(), screen_width=16, screen_height=16
    )


class TestConstructedCollision:
    def test_byte_patch_math(self, config):
        (tint_a, aux_a), (tint_b, aux_b) = craft_collision(config)
        assert tint_a != tint_b
        assert not np.array_equal(aux_a, aux_b)

    def test_signatures_collide_in_the_signature_unit(self, config):
        (tint_a, aux_a), (tint_b, aux_b) = craft_collision(config)
        sigs = []
        for tint, aux in ((tint_a, aux_a), (tint_b, aux_b)):
            gpu = Gpu(config, RenderingElimination(config))
            gpu.render_frame(frame(tint, aux))
            sigs.append(int(gpu.technique.current_signatures()[0]))
        assert sigs[0] == sigs[1], "construction must collide"

    def test_false_positive_causes_stale_tile_and_is_measurable(self, config):
        (params_a, params_b) = craft_collision(config)
        # Double-buffered compare distance 2: frame 2 is compared with
        # frame 0.  Frame sequence: A, A, B(collides with A).
        re_gpu = Gpu(config, RenderingElimination(config))
        base_gpu = Gpu(config)
        outputs = {"re": [], "base": []}
        for params in (params_a, params_a, params_b):
            stream_re = frame(*params)
            stream_base = frame(*params)
            outputs["re"].append(re_gpu.render_frame(stream_re))
            outputs["base"].append(base_gpu.render_frame(stream_base))

        final_re = outputs["re"][2]
        final_base = outputs["base"][2]
        # RE was fooled: it skipped the tile...
        assert final_re.raster.tiles_skipped == 1
        # ...leaving stale frame-A pixels where B should render.
        assert not np.array_equal(
            final_re.frame_colors, final_base.frame_colors
        ), "the injected collision must corrupt the RE output"
        # And the measurement side sees it: equal signatures with
        # different colors (a diff_colors_eq_inputs event).
        sig_equal = True  # established by construction + previous test
        colors_equal = np.array_equal(
            final_re.frame_colors, outputs["re"][0].frame_colors
        )
        assert sig_equal and colors_equal, (
            "stale tile content is frame A's, proving the false positive"
        )

    def test_honest_hash_would_not_collide(self, config):
        """The same two frames under byte-exact comparison differ —
        the collision is a property of CRC32, not of the inputs."""
        (tint_a, aux_a), (tint_b, aux_b) = craft_collision(config)
        assert tint_a != tint_b
